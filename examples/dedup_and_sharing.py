#!/usr/bin/env python3
"""§6.3 research directions, implemented: dedup + host-wide cache sharing.

A golden image full of duplicate blocks is de-duplicated into a compact
object stream; clones boot from it while sharing one host cache keyed by
immutable object identity.

    python examples/dedup_and_sharing.py
"""

import random

from repro.core import LSVDConfig, LSVDVolume
from repro.core.dedup import dedupe_volume
from repro.core.shared_cache import SharedObjectCache, attach_shared_cache
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20
BLOCK = 4096


def main() -> None:
    store = InMemoryObjectStore()
    cfg = LSVDConfig(batch_size=128 * 1024, checkpoint_interval=16)

    # --- a "raw" OS image: lots of repeated blocks ----------------------
    raw = LSVDVolume.create(store, "raw", 8 * MiB, DiskImage(2 * MiB), cfg)
    rng = random.Random(0)
    distinct = [bytes([b]) * BLOCK for b in range(1, 33)]  # 32 real blocks
    for i in range(1024):  # 4 MiB of data, heavily duplicated
        raw.write(i * BLOCK, distinct[rng.randrange(len(distinct))])
    raw.drain()
    raw_bytes = store.total_bytes("raw.")

    # --- dedupe it into the golden image ---------------------------------
    golden = LSVDVolume.create(store, "golden", 8 * MiB, DiskImage(2 * MiB), cfg)
    report = dedupe_volume(raw, golden)
    golden.close()
    print(f"dedup: {report.blocks_scanned} blocks scanned, "
          f"{report.blocks_stored} stored, "
          f"{report.blocks_duplicate} aliased, "
          f"{report.savings_ratio:.0%} saved")
    print(f"backend: raw image {raw_bytes / MiB:.2f} MiB -> "
          f"golden {store.total_bytes('golden.') / MiB:.2f} MiB\n")

    # --- clones share one host cache -------------------------------------
    shared = SharedObjectCache(capacity=4 * MiB)
    clones = []
    for n in range(4):
        clone = LSVDVolume.clone(store, "golden", f"vm{n}", DiskImage(2 * MiB), cfg)
        attach_shared_cache(clone, shared)
        clones.append(clone)

    gets0 = store.stats.range_gets + store.stats.gets
    for lba in range(0, 1024 * BLOCK, 8 * BLOCK):
        clones[0].read(lba, BLOCK)  # vm0 warms the shared cache
    warm = store.stats.range_gets + store.stats.gets - gets0
    for clone in clones[1:]:
        for lba in range(0, 1024 * BLOCK, 8 * BLOCK):
            clone.read(lba, BLOCK)  # vm1-3 mostly hit it
    cold = store.stats.range_gets + store.stats.gets - gets0 - warm
    print(f"vm0 warming reads hit the backend {warm} times;")
    print(f"vm1-3 together added only {cold} backend reads "
          f"(shared-cache hit rate {shared.stats.hit_rate:.0%})")
    # correctness: every clone sees identical golden content
    probe = 123 * BLOCK
    assert len({bytes(c.read(probe, BLOCK)) for c in clones}) == 1
    print("all clones read identical golden content ✔")


if __name__ == "__main__":
    main()
