#!/usr/bin/env python3
"""Clone farm: boot many VMs from one golden image (§3.6, Figure 5).

A common cloud pattern: one base image, dozens of copy-on-write clones.
With LSVD a clone is just a new object-name prefix sharing the base's
object stream — creation is O(1) in data moved, the garbage collector
never touches shared objects, and deleting every clone leaves the base
intact with no reference counting.

    python examples/clone_farm.py
"""

import random

from repro.core import LSVDConfig, LSVDVolume
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


def main() -> None:
    store = InMemoryObjectStore()
    cfg = LSVDConfig(batch_size=128 * 1024, checkpoint_interval=16)

    # --- build the golden image ------------------------------------------
    base = LSVDVolume.create(store, "golden", 64 * MiB, DiskImage(4 * MiB), cfg)
    rng = random.Random(0)
    print("installing the golden image...")
    for i in range(1024):  # 4 MiB "root filesystem"
        base.write(i * 4096, bytes([i % 251 + 1]) * 4096)
    base.snapshot("v1.0")
    # the image keeps evolving after the release snapshot
    for i in range(0, 1024, 2):
        base.write(i * 4096, b"v2" * 2048)
    base.close()
    base_bytes = store.total_bytes("golden.")
    print(f"golden image: {base_bytes // MiB} MiB in "
          f"{len(store.list('golden.'))} objects\n")

    # --- spin up clones from the v1.0 snapshot -----------------------------
    clones = []
    for n in range(4):
        clone = LSVDVolume.clone(
            store, "golden", f"vm{n}", DiskImage(4 * MiB), cfg, at_snapshot="v1.0"
        )
        clones.append(clone)
    creation_cost = store.total_bytes() - base_bytes
    print(f"created {len(clones)} clones; extra backend data: "
          f"{creation_cost / MiB:.2f} MiB (checkpoint metadata only)")

    # --- each clone diverges ---------------------------------------------
    for n, clone in enumerate(clones):
        for i in range(64):
            clone.write(i * 4096, f"vm{n}:".encode() * 1024)
        clone.drain()

    for n, clone in enumerate(clones):
        data = clone.read(0, 4096)
        assert data == f"vm{n}:".encode() * 1024
        # un-diverged blocks still come from the shared base (v1.0 content)
        assert clone.read(1023 * 4096, 4096) == bytes([1023 % 251 + 1]) * 4096
    print("each clone sees its own writes; shared blocks come from the base")

    # --- churn a clone hard: its GC must never touch base objects ----------
    golden_objects = set(store.list("golden."))
    hot = clones[0]
    for i in range(4000):
        hot.write(rng.randrange(0, 1024) * 4096, bytes([i % 250 + 1]) * 4096)
    hot.drain()
    assert set(store.list("golden.")) == golden_objects
    print(f"after heavy churn + GC on vm0 "
          f"(WAF {hot.write_amplification:.2f}), "
          "the golden image's objects are untouched ✔")


if __name__ == "__main__":
    main()
