#!/usr/bin/env python3
"""A five-minute tour of the simulated performance stack.

Runs miniature versions of three headline experiments — the in-cache
random-write microbenchmark (Figure 6), the backend-load test (Figures
12-13), and the write-back drain comparison (Figure 11) — and prints the
same comparisons the paper makes.

    python examples/benchmark_tour.py
"""

from repro.cluster import StorageCluster
from repro.core import LSVDConfig
from repro.devices.hdd import HDD, HDDSpec
from repro.devices.ssd import SSD, SSDSpec
from repro.runtime import (
    BcacheRBDRuntime,
    ClientMachine,
    LSVDRuntime,
    RBDRuntime,
    SimulatedObjectStore,
    run_fio,
)
from repro.sim import Simulator
from repro.workloads import FioJob

GiB = 1 << 30
MiB = 1 << 20


def ssd_pool(sim):
    return StorageCluster(sim, 4, 8, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n))


def hdd_pool(sim):
    return StorageCluster(sim, 9, 7, lambda s, n: HDD(s, HDDSpec.sas_10k(), name=n))


def lsvd_stack(cluster_fn, cache=8 * GiB):
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = cluster_fn(sim)
    backend = SimulatedObjectStore(sim, cluster, machine.network)
    dev = LSVDRuntime(sim, machine, backend, 4 * GiB, cache, LSVDConfig(), name="vd")
    return sim, machine, cluster, dev


def bcache_stack(cluster_fn, cache=8 * GiB):
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = cluster_fn(sim)
    rbd = RBDRuntime(sim, machine, cluster)
    dev = BcacheRBDRuntime(sim, machine, rbd, cache_size=cache)
    return sim, machine, cluster, dev


def tour_fig6() -> None:
    print("== in-cache 4K random writes (Figure 6) ==")
    job = FioJob(rw="randwrite", bs=4096, iodepth=32, size=4 * GiB, seed=1)
    sim, _m, _c, dev = lsvd_stack(ssd_pool)
    lsvd = run_fio(sim, dev, job, duration=1.0, warmup=0.2)
    sim, _m, _c, dev = bcache_stack(ssd_pool)
    bc = run_fio(sim, dev, job, duration=1.0, warmup=0.2)
    print(f"  LSVD   {lsvd.iops / 1e3:5.1f}K IOPS")
    print(f"  bcache {bc.iops / 1e3:5.1f}K IOPS   (LSVD {lsvd.iops / bc.iops:.2f}x)\n")


def tour_backend_load() -> None:
    print("== 16K random-write backend load, 62-HDD pool (Figures 12-13) ==")
    job = FioJob(rw="randwrite", bs=16384, iodepth=32, size=4 * GiB, seed=1)
    sim, _m, cluster, dev = lsvd_stack(hdd_pool)
    lsvd = run_fio(sim, dev, job, duration=2.0, warmup=0.5)
    l_amp = cluster.totals().writes / max(dev.client_writes, 1)
    l_util = cluster.mean_utilization()

    sim2 = Simulator()
    machine2 = ClientMachine(sim2)
    cluster2 = hdd_pool(sim2)
    rbd = RBDRuntime(sim2, machine2, cluster2)
    r = run_fio(sim2, rbd, job, duration=2.0, warmup=0.5)
    r_amp = cluster2.totals().writes / max(rbd.client_writes, 1)
    r_util = cluster2.mean_utilization()

    print(f"  LSVD  {lsvd.iops / 1e3:5.1f}K IOPS, backend {l_util:5.1%} busy, "
          f"{l_amp:.2f} backend IOs per write")
    print(f"  RBD   {r.iops / 1e3:5.1f}K IOPS, backend {r_util:5.1%} busy, "
          f"{r_amp:.2f} backend IOs per write")
    eff = (lsvd.iops / max(l_util, 1e-9)) / (r.iops / max(r_util, 1e-9))
    print(f"  I/O-efficiency advantage: {eff:.0f}x (paper: ~25x)\n")


def tour_writeback() -> None:
    print("== write-back drain after a 128 MiB burst (Figure 11) ==")
    from repro.runtime.blockdev import drive_ops

    n = 128 * MiB // 4096
    for name, stack in (("LSVD", lsvd_stack), ("bcache", bcache_stack)):
        sim, _m, _c, dev = stack(hdd_pool, cache=4 * GiB)
        job = FioJob(rw="randwrite", bs=4096, iodepth=32, size=2 * GiB, seed=5)
        stream = job.ops()
        drive_ops(sim, dev, (next(stream) for _ in range(n)), iodepth=32)
        burst_end = sim.now
        while dev.dirty_bytes > 0 and sim.now < burst_end + 600:
            sim.run(until=sim.now + 1.0)
        print(f"  {name:<7} burst {burst_end:6.1f}s, fully drained at "
              f"{sim.now:7.1f}s")
    print()


if __name__ == "__main__":
    tour_fig6()
    tour_backend_load()
    tour_writeback()
