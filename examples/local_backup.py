#!/usr/bin/env python3
"""Persist an LSVD volume to real files and inspect it with lsvdtool.

Uses the filesystem-backed object store, so the volume survives across
process runs and the object stream can be examined with ordinary tools:

    python examples/local_backup.py /tmp/lsvd-demo
    python -m repro.tools.lsvdtool /tmp/lsvd-demo/bucket vol --objects
"""

import random
import sys
import tempfile
from pathlib import Path

from repro.core import LSVDConfig, LSVDVolume
from repro.core.errors import VolumeNotFoundError
from repro.core.scrub import Scrubber
from repro.devices.image import DiskImage
from repro.objstore.directory import DirectoryObjectStore
from repro.tools import fsck_volume

MiB = 1 << 20


def main() -> None:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp())
    bucket = root / "bucket"
    store = DirectoryObjectStore(bucket)
    cfg = LSVDConfig(batch_size=128 * 1024, checkpoint_interval=8)

    try:
        DirectoryObjectStore(bucket)
        from repro.core.block_store import BlockStore

        BlockStore.read_super(store, "vol")
        print(f"re-opening existing volume in {bucket}")
        vol = LSVDVolume.open(store, "vol", DiskImage(4 * MiB), cfg, cache_lost=True)
    except VolumeNotFoundError:
        print(f"creating new volume in {bucket}")
        vol = LSVDVolume.create(store, "vol", 64 * MiB, DiskImage(4 * MiB), cfg)

    rng = random.Random()
    stamp = rng.randrange(1, 255)
    for i in range(500):
        vol.write(rng.randrange(0, 4096) * 4096, bytes([stamp]) * 4096)
    vol.close()
    print(f"wrote 500 blocks stamped {stamp}; "
          f"{len(store.list('vol.'))} objects on disk "
          f"({store.total_bytes('vol.') / MiB:.1f} MiB)")

    # verify the stream end to end
    report = fsck_volume(store, "vol")
    print(report.summary())

    # deep-scrub all object payloads
    reopened = LSVDVolume.open(store, "vol", DiskImage(4 * MiB), cfg, cache_lost=True)
    scrubber = Scrubber(reopened.bs)
    findings = scrubber.full_pass()
    print(f"scrub: {scrubber.stats.objects_checked} objects, "
          f"{scrubber.stats.bytes_verified / MiB:.1f} MiB verified, "
          f"{len(findings)} problems")
    print(f"\nrun again to keep appending, or inspect with:\n"
          f"  python -m repro.tools.lsvdtool {bucket} vol --objects")


if __name__ == "__main__":
    main()
