#!/usr/bin/env python3
"""Quickstart: create an LSVD virtual disk, use it, crash it, recover it.

This exercises the whole public API on an in-memory S3 store:

    python examples/quickstart.py
"""

import random

from repro.core import LSVDConfig, LSVDVolume
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


def main() -> None:
    # --- a backend "S3 bucket" and a local "cache SSD" ------------------
    store = InMemoryObjectStore()
    cache_ssd = DiskImage(8 * MiB, name="cache-ssd")

    config = LSVDConfig(batch_size=256 * 1024, checkpoint_interval=16)
    volume = LSVDVolume.create(store, "demo", size=64 * MiB,
                               cache_image=cache_ssd, config=config)
    print(f"created volume 'demo': {volume.size // MiB} MiB")

    # --- ordinary block I/O ---------------------------------------------
    volume.write(0, b"hello, log-structured world!".ljust(512, b"\0"))
    volume.write(1 * MiB, bytes(range(256)) * 16)  # 4 KiB
    volume.flush()  # commit barrier: one SSD flush, no metadata writes

    print("read back:", volume.read(0, 512).rstrip(b"\0").decode())
    assert volume.read(1 * MiB, 4096) == bytes(range(256)) * 16
    assert volume.read(2 * MiB, 4096) == b"\0" * 4096  # unwritten => zeros

    # --- fill enough to destage objects to the backend -------------------
    rng = random.Random(0)
    for i in range(2000):
        lba = rng.randrange(0, volume.size // 4096) * 4096
        volume.write(lba, bytes([i % 251 + 1]) * 4096)
    volume.drain()
    names = store.list("demo.")
    print(f"backend now holds {len(names)} objects "
          f"({store.total_bytes('demo.') // MiB} MiB); "
          f"write amplification {volume.write_amplification:.3f}")

    # --- snapshot, then keep writing -------------------------------------
    volume.snapshot("before-upgrade")
    volume.write(0, b"overwritten after the snapshot".ljust(512, b"\0"))
    volume.drain()

    snap = LSVDVolume.open_snapshot(store, "demo", "before-upgrade",
                                    DiskImage(8 * MiB), config)
    print("snapshot still reads:",
          snap.read(0, 512).rstrip(b"\0").decode())

    # --- crash! -----------------------------------------------------------
    volume.write(3 * MiB, b"S" * 4096)   # acknowledged, cached...
    volume.flush()                        # ...and committed
    cache_ssd.crash(rng=random.Random(1))  # power loss: lose unflushed data

    recovered = LSVDVolume.open(store, "demo", cache_ssd, config)
    assert recovered.read(3 * MiB, 4096) == b"S" * 4096
    print("after crash+recovery the committed write survived ✔")

    # --- clone the volume --------------------------------------------------
    recovered.close()
    clone = LSVDVolume.clone(store, "demo", "dev-copy", DiskImage(8 * MiB), config)
    clone.write(0, b"the clone diverges".ljust(512, b"\0"))
    print("clone reads its own data:",
          clone.read(0, 512).rstrip(b"\0").decode())
    base = LSVDVolume.open(store, "demo", DiskImage(8 * MiB), config,
                           cache_lost=True)
    print("base is untouched:",
          base.read(0, 512).rstrip(b"\0").decode())


if __name__ == "__main__":
    main()
