#!/usr/bin/env python3
"""Crash-consistency demo: LSVD vs a bcache-style write-back cache.

Reproduces the essence of the paper's Table 4 interactively: both systems
take the same write history, both lose their cache device, and we check
whether what survives on the backend is a *consistent prefix* of the
acknowledged writes (the property a filesystem journal needs to mount).

    python examples/crash_recovery.py
"""

import random

from repro.baselines import make_bcache_rbd
from repro.core import LSVDConfig, LSVDVolume
from repro.crash import HistoryRecorder, PrefixChecker
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


def lsvd_run(seed: int) -> bool:
    store = InMemoryObjectStore()
    image = DiskImage(2 * MiB)
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=16)
    vol = LSVDVolume.create(store, "vd", 16 * MiB, image, cfg)
    rec = HistoryRecorder(vol.write, vol.flush)
    rng = random.Random(seed)
    for _ in range(300):
        rec.write(rng.randrange(0, 2048) * 4096, 4096)
        if rng.random() < 0.1:
            rec.barrier()
    # catastrophic failure: the cache SSD is gone entirely
    recovered = LSVDVolume.open(
        store, "vd", DiskImage(2 * MiB), cfg, cache_lost=True
    )
    verdict = PrefixChecker(rec).check(recovered.read)
    return verdict.ok_prefix


def bcache_run(seed: int) -> bool:
    cache, backing, _img = make_bcache_rbd("b", 16 * MiB, 2 * MiB)
    rec = HistoryRecorder(cache.write, cache.flush)
    rng = random.Random(seed)
    for _ in range(300):
        rec.write(rng.randrange(0, 2048) * 4096, 4096)
        if rng.random() < 0.15:
            # background write-back destages in LBA order, not write order
            cache.writeback_step(max_blocks=4)
    cache.lose_cache()
    verdict = PrefixChecker(rec).check(lambda off, n: backing.read(off, n)[0])
    return verdict.ok_prefix


def main() -> None:
    print("crash + cache loss: is the surviving image a consistent prefix?")
    print(f"{'seed':>6}  {'LSVD':>8}  {'bcache+RBD':>12}")
    lsvd_score = bcache_score = 0
    trials = 6
    for seed in range(trials):
        ok_l = lsvd_run(seed)
        ok_b = bcache_run(seed)
        lsvd_score += ok_l
        bcache_score += ok_b
        print(f"{seed:>6}  {'mounts' if ok_l else 'CORRUPT':>8}  "
              f"{'mounts' if ok_b else 'CORRUPT':>12}")
    print(f"\nLSVD: {lsvd_score}/{trials} consistent; "
          f"bcache+RBD: {bcache_score}/{trials} consistent")
    print("(the paper's Table 4: LSVD 3/3, bcache lost one image of three)")


if __name__ == "__main__":
    main()
