#!/usr/bin/env python3
"""Geographic replication by lazy object copy (§4.8).

Because the LSVD backend is an ordered stream of immutable objects, a
second site can be kept (slightly stale but always consistent) by copying
objects with plain S3 COPY commands — no block-level replication protocol.

    python examples/geo_replication.py
"""

import random

from repro.core import LSVDConfig, LSVDVolume
from repro.core.replication import Replicator
from repro.crash import HistoryRecorder, PrefixChecker
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20


def main() -> None:
    primary_s3 = InMemoryObjectStore()  # e.g. us-east-1
    replica_s3 = InMemoryObjectStore()  # e.g. eu-west-1
    cfg = LSVDConfig(batch_size=128 * 1024, checkpoint_interval=16)
    vol = LSVDVolume.create(primary_s3, "vd", 64 * MiB, DiskImage(4 * MiB), cfg)
    rep = Replicator(primary_s3, replica_s3, "vd", min_age=2.0)
    rec = HistoryRecorder(vol.write, vol.flush)
    rng = random.Random(7)

    print("epoch  primary objects  replica objects  replica MiB")
    for epoch in range(12):
        for _ in range(400):
            rec.write(rng.randrange(0, 4096) * 4096, 4096)
        vol.poll()
        rep.step(now=float(epoch))
        print(f"{epoch:>5}  {len(primary_s3.list('vd.')):>15}  "
              f"{len(replica_s3.list('vd.')):>15}  "
              f"{rep.stats.bytes_copied / MiB:>10.1f}")
    vol.drain()

    skipped = rep.stats.objects_skipped_deleted
    print(f"\nobjects deleted by GC before they could ship: {skipped}")
    print("(the paper wrote 103 GB but only 85 GB crossed the wire)")

    # mount the replica: recovery handles the missing tail + any holes
    replica = LSVDVolume.open(
        replica_s3, "vd", DiskImage(4 * MiB), cfg, cache_lost=True
    )
    verdict = PrefixChecker(rec).check(replica.read)
    state = "a consistent prefix" if verdict.ok_prefix else "CORRUPT"
    print(f"replica mounts as {state}: reflects {verdict.cut} of "
          f"{rec.writes_issued} writes")
    assert verdict.ok_prefix


if __name__ == "__main__":
    main()
