"""Timed multi-tenant fleet: many LSVD runtimes over shared hardware.

The timed counterpart of :class:`~repro.fleet.manager.FleetManager`: one
simulated host (CPU + cache SSD + network) and one sharded backend serve
many :class:`~repro.runtime.lsvd.LSVDRuntime` virtual disks, each tagged
with its tenant and admission-controlled by that tenant's
:class:`~repro.fleet.qos.TenantThrottle`.  Throttle delays are *served*
here — the runtime sleeps the token-bucket debt on the simulated clock
before an I/O touches the shared CPU/SSD/backend — so noisy-neighbour
experiments measure real isolation, not bookkeeping.

Each vdisk gets a private metrics registry (the ``lsvd.*`` name space is
per-stack), while tenant throttle metrics (``fleet.<tenant>.*``) land in
the fleet-wide registry passed to the constructor.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import LSVDConfig
from repro.fleet.qos import QoSLimits, TenantThrottle, ThrottleSet
from repro.obs import Registry
from repro.runtime.lsvd import LSVDRuntime
from repro.runtime.machine import ClientMachine
from repro.runtime.params import LSVDParams
from repro.sim.engine import Simulator


class FleetRuntime:
    """A host's worth of tenanted virtual disks under the simulator."""

    def __init__(
        self,
        sim: Simulator,
        machine: ClientMachine,
        backend,
        obs: Optional[Registry] = None,
        config: Optional[LSVDConfig] = None,
        params: Optional[LSVDParams] = None,
    ):
        self.sim = sim
        self.machine = machine
        self.backend = backend
        self.obs = obs if obs is not None else Registry()
        self.config = config
        self.params = params
        self.throttles = ThrottleSet(self.obs)
        self._vdisks: Dict[str, LSVDRuntime] = {}
        self._tenant_of: Dict[str, str] = {}
        self._g_vdisks = self.obs.gauge("fleet.vdisks")

    # ------------------------------------------------------------------
    def add_tenant(
        self, tenant: str, limits: QoSLimits = QoSLimits()
    ) -> TenantThrottle:
        """Declare a tenant and its limits (get-or-create)."""
        return self.throttles.get(tenant, limits)

    def add_vdisk(
        self,
        name: str,
        tenant: str,
        volume_size: int,
        cache_size: int,
        limits: Optional[QoSLimits] = None,
        read_hit_rate: float = 1.0,
        gc_enabled: bool = True,
        params: Optional[LSVDParams] = None,
    ) -> LSVDRuntime:
        """Create a tenanted virtual disk on the shared hardware."""
        if name in self._vdisks:
            raise ValueError(f"vdisk {name!r} already exists")
        throttle = self.throttles.get(
            tenant, limits if limits is not None else QoSLimits()
        )
        runtime = LSVDRuntime(
            self.sim,
            self.machine,
            self.backend,
            volume_size=volume_size,
            cache_size=cache_size,
            config=self.config,
            params=params if params is not None else self.params,
            name=name,
            read_hit_rate=read_hit_rate,
            gc_enabled=gc_enabled,
            obs=Registry(),  # lsvd.* names are per-stack
            tenant=tenant,
            qos=throttle if not throttle.limits.unlimited else None,
        )
        self._vdisks[name] = runtime
        self._tenant_of[name] = tenant
        self._g_vdisks.set(len(self._vdisks))
        return runtime

    # ------------------------------------------------------------------
    def vdisk(self, name: str) -> LSVDRuntime:
        return self._vdisks[name]

    def vdisks(self) -> List[LSVDRuntime]:
        return [self._vdisks[name] for name in sorted(self._vdisks)]

    def tenant_of(self, name: str) -> str:
        return self._tenant_of[name]

    def tenants(self) -> List[str]:
        return self.throttles.tenants()

    def __len__(self) -> int:
        return len(self._vdisks)
