"""repro.fleet — the multi-tenant volume fleet control plane.

The paper's economics only work at fleet scale (§4.5): one host serves
many virtual disks over one object-store account, sharing the local SSD
cache and the network between tenants.  :class:`FleetManager` is that
control plane for the pure stack:

* a **registry** of virtual disks (create / attach / detach / delete)
  persisted in a single fleet manifest object, so a restarted host knows
  every disk it is responsible for;
* **shared-resource partitioning** — one host-wide
  :class:`~repro.core.shared_cache.SharedObjectCache` with per-tenant
  byte budgets, attached to every volume through the first-class
  attachment API;
* **per-tenant QoS** — each attach wires a
  :class:`~repro.fleet.qos.CoreAdmission` onto the volume so every
  write/read charges the tenant's token buckets;
* a **recovery sweep** — after a crash, :meth:`recover` replays crash
  recovery for every registered disk, restoring the whole fleet to its
  backend-consistent prefix.

The manifest is a *mutable* key (like the per-volume superblock) and is
rewritten atomically on every registry change; it carries no data-plane
state, so losing an in-flight manifest PUT at a crash only forgets
not-yet-acknowledged create/delete operations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.config import LSVDConfig
from repro.core.naming import stream_prefix
from repro.core.shared_cache import SharedCacheAttachment, SharedObjectCache
from repro.core.volume import LSVDVolume
from repro.devices.image import DiskImage
from repro.fleet.qos import CoreAdmission, QoSLimits, ThrottleSet
from repro.obs import Registry

#: the fleet registry key ("manifest" is not a digit suffix, so it can
#: never collide with any volume's stream-object grammar)
MANIFEST_KEY = "fleet.manifest"

#: default per-volume local cache size used by attach/recover
DEFAULT_CACHE_BYTES = 8 * 1024 * 1024


class FleetError(Exception):
    """Registry misuse: unknown vdisk, duplicate name, attach conflicts."""


@dataclass
class VDiskRecord:
    """One registered virtual disk (the manifest row)."""

    name: str
    tenant: str
    size: int
    limits: QoSLimits = field(default_factory=QoSLimits)
    cache_budget: int = 0  # shared-cache byte budget for the tenant (0 = none)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "tenant": self.tenant,
            "size": self.size,
            "limits": {
                "iops": self.limits.iops,
                "bytes_per_s": self.limits.bytes_per_s,
                "burst_ops": self.limits.burst_ops,
                "burst_bytes": self.limits.burst_bytes,
            },
            "cache_budget": self.cache_budget,
        }

    @classmethod
    def from_json(cls, row: dict) -> "VDiskRecord":
        lim = row.get("limits", {})
        return cls(
            name=row["name"],
            tenant=row["tenant"],
            size=int(row["size"]),
            limits=QoSLimits(
                iops=float(lim.get("iops", 0.0)),
                bytes_per_s=float(lim.get("bytes_per_s", 0.0)),
                burst_ops=float(lim.get("burst_ops", 0.0)),
                burst_bytes=float(lim.get("burst_bytes", 0.0)),
            ),
            cache_budget=int(row.get("cache_budget", 0)),
        )


class AttachedVDisk:
    """A live attachment: the volume plus its fleet wiring.

    Detaching closes the volume (drain + checkpoint), releases the
    shared-cache attachment, and returns the slot to the registry; the
    tenant's throttle stays (throttles are per tenant, not per disk).
    """

    def __init__(
        self,
        manager: "FleetManager",
        record: VDiskRecord,
        volume: LSVDVolume,
        cache_attachment: Optional[SharedCacheAttachment],
    ):
        self.manager = manager
        self.record = record
        self.volume = volume
        self.cache_attachment = cache_attachment

    @property
    def name(self) -> str:
        return self.record.name

    @property
    def tenant(self) -> str:
        return self.record.tenant

    def detach(self) -> None:
        self.manager._detach(self)


class FleetManager:
    """Registry + shared-resource control plane for one host's fleet."""

    def __init__(
        self,
        store,
        config: Optional[LSVDConfig] = None,
        obs: Optional[Registry] = None,
        shared_cache: Optional[SharedObjectCache] = None,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.store = store
        self.config = config or LSVDConfig()
        self.obs = obs if obs is not None else Registry()
        self.shared = shared_cache
        if self.shared is not None:
            self.shared.bind_obs(self.obs)
        self.cache_bytes = cache_bytes
        self.throttles = ThrottleSet(self.obs)
        self._clock = clock
        self._vdisks: Dict[str, VDiskRecord] = {}
        self._attached: Dict[str, AttachedVDisk] = {}
        self._g_vdisks = self.obs.gauge("fleet.vdisks")
        self._g_attached = self.obs.gauge("fleet.attached")
        self._m_sweeps = self.obs.counter("fleet.recovery_sweeps")
        self._m_recovered = self.obs.counter("fleet.recovered_vdisks")
        self._load_manifest()

    # ------------------------------------------------------------------
    # manifest persistence
    # ------------------------------------------------------------------
    def _load_manifest(self) -> None:
        if not self.store.exists(MANIFEST_KEY):
            return
        doc = json.loads(self.store.get(MANIFEST_KEY).decode("utf-8"))
        for row in doc.get("vdisks", []):
            record = VDiskRecord.from_json(row)
            self._vdisks[record.name] = record
        self._g_vdisks.set(len(self._vdisks))

    def _persist_manifest(self) -> None:
        doc = {
            "version": 1,
            "vdisks": [
                self._vdisks[name].to_json() for name in sorted(self._vdisks)
            ],
        }
        blob = json.dumps(doc, sort_keys=True).encode("utf-8")
        # mutable registry key, rewritten whole — same discipline as the
        # per-volume superblock (reviewed immutability-allow entry)
        self.store.put(MANIFEST_KEY, blob)
        self._g_vdisks.set(len(self._vdisks))

    # ------------------------------------------------------------------
    # registry operations
    # ------------------------------------------------------------------
    def vdisks(self) -> List[VDiskRecord]:
        return [self._vdisks[name] for name in sorted(self._vdisks)]

    def record(self, name: str) -> VDiskRecord:
        try:
            return self._vdisks[name]
        except KeyError:
            raise FleetError(f"unknown vdisk {name!r}") from None

    def attached(self, name: str) -> Optional[AttachedVDisk]:
        return self._attached.get(name)

    def create(
        self,
        name: str,
        size: int,
        tenant: str,
        limits: Optional[QoSLimits] = None,
        cache_budget: int = 0,
    ) -> VDiskRecord:
        """Create + register a new virtual disk (left detached)."""
        if name in self._vdisks:
            raise FleetError(f"vdisk {name!r} already registered")
        volume = LSVDVolume.create(
            self.store,
            name,
            size,
            DiskImage(self.cache_bytes, name=f"cache-{name}"),
            self.config,
            obs=self.obs,
        )
        volume.close()
        record = VDiskRecord(
            name=name,
            tenant=tenant,
            size=size,
            limits=limits if limits is not None else QoSLimits(),
            cache_budget=cache_budget,
        )
        self._vdisks[name] = record
        self._persist_manifest()
        self.obs.trace.emit("fleet_create", vdisk=name, tenant=tenant, size=size)
        return record

    def adopt(self, record: VDiskRecord) -> VDiskRecord:
        """Register an existing backend volume without creating it."""
        if record.name in self._vdisks:
            raise FleetError(f"vdisk {record.name!r} already registered")
        self._vdisks[record.name] = record
        self._persist_manifest()
        return record

    def attach(
        self, name: str, cache_image: Optional[DiskImage] = None
    ) -> AttachedVDisk:
        """Mount a registered disk with full fleet wiring.

        A fresh (or absent) cache image means crash recovery runs in
        cache-lost mode and the volume comes back as the backend's
        consistent prefix — the fleet does not persist local cache
        devices across attachments.
        """
        record = self.record(name)
        if name in self._attached:
            raise FleetError(f"vdisk {name!r} is already attached")
        if cache_image is None:
            cache_image = DiskImage(self.cache_bytes, name=f"cache-{name}")
            cache_lost = True
        else:
            cache_lost = False
        volume = LSVDVolume.open(
            self.store,
            name,
            cache_image,
            self.config,
            cache_lost=cache_lost,
            obs=self.obs,
        )
        throttle = self.throttles.get(record.tenant, record.limits)
        volume.qos = CoreAdmission(throttle, clock=self._clock)
        attachment = None
        if self.shared is not None:
            if record.cache_budget > 0:
                self.shared.set_budget(record.tenant, record.cache_budget)
            attachment = self.shared.attach(volume, tenant=record.tenant)
        handle = AttachedVDisk(self, record, volume, attachment)
        self._attached[name] = handle
        self._g_attached.set(len(self._attached))
        self.obs.trace.emit("fleet_attach", vdisk=name, tenant=record.tenant)
        return handle

    def _detach(self, handle: AttachedVDisk) -> None:
        if self._attached.get(handle.name) is not handle:
            raise FleetError(f"vdisk {handle.name!r} is not attached")
        handle.volume.close()
        if handle.cache_attachment is not None:
            handle.cache_attachment.detach()
        del self._attached[handle.name]
        self._g_attached.set(len(self._attached))
        self.obs.trace.emit("fleet_detach", vdisk=handle.name)

    def detach(self, name: str) -> None:
        handle = self._attached.get(name)
        if handle is None:
            raise FleetError(f"vdisk {name!r} is not attached")
        handle.detach()

    def delete(self, name: str) -> int:
        """Unregister ``name`` and delete its backend objects."""
        record = self.record(name)
        if name in self._attached:
            raise FleetError(f"vdisk {name!r} is attached; detach first")
        deleted = 0
        for key in list(self.store.list(stream_prefix(name))):
            self.store.delete(key)
            deleted += 1
        del self._vdisks[name]
        self._persist_manifest()
        self.obs.trace.emit(
            "fleet_delete", vdisk=name, tenant=record.tenant, objects=deleted
        )
        return deleted

    def set_cache_budget(self, tenant: str, nbytes: int) -> None:
        """Re-partition the shared cache: cap ``tenant`` at ``nbytes``."""
        if self.shared is None:
            raise FleetError("fleet has no shared cache")
        self.shared.set_budget(tenant, nbytes)
        for record in self._vdisks.values():
            if record.tenant == tenant:
                record.cache_budget = max(0, nbytes)
        self._persist_manifest()

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Drain + flush every attached volume, then persist the manifest."""
        for name in sorted(self._attached):
            vol = self._attached[name].volume
            vol.drain()
            vol.flush()
        self._persist_manifest()

    def close(self) -> None:
        for name in sorted(self._attached):
            self._attached[name].detach()
        self._persist_manifest()

    def recover(self) -> Dict[str, dict]:
        """Post-crash sweep: replay recovery for every registered disk.

        Mounts each disk in cache-lost mode (local caches do not survive
        the host), forcing full §3.3 backend-prefix recovery, and leaves
        it attached with its QoS and shared-cache wiring restored.
        Returns a per-disk report for the caller to verify against.
        """
        self._m_sweeps.inc()
        report: Dict[str, dict] = {}
        span = self.obs.spans.root("fleet_recover", vdisks=len(self._vdisks))
        for name in sorted(self._vdisks):
            if name in self._attached:
                continue
            stage = span.begin("recover_vdisk", vdisk=name)
            handle = self.attach(name)
            objects = len(self.store.list(stream_prefix(name)))
            report[name] = {
                "tenant": handle.tenant,
                "size": handle.volume.size,
                "objects": objects,
            }
            self._m_recovered.inc()
            stage.end()
        span.end(recovered=len(report))
        return report
