"""Per-tenant QoS: token-bucket throttling and admission control.

One host serving thousands of virtual disks (the fleet premise, §4.5)
cannot let one tenant's burst starve another's paid-for rate.  Admission
control happens at the volume entry points — :meth:`LSVDVolume.write`/
``read`` in the pure stack and :meth:`LSVDRuntime._write`/``_read`` in
the timed pipeline — but the *policy* machinery lives here: constructing
a :class:`QoSTokenBucket` or :class:`TenantThrottle` anywhere outside
``repro/fleet/`` is an LSVD016 violation, so per-tenant rate state can
never leak into (or be bypassed by) the data plane.

Determinism: buckets advance on a caller-supplied clock (the simulated
clock in the timed runtime, the TimedStore clock in the observed pure
stack) and never read wall time, so identical runs produce identical
admission decisions and identical ``fleet.<tenant>.*`` metrics.

Limits are declared with :class:`QoSLimits` — a plain frozen dataclass
that *is* constructible anywhere (benchmarks, CLI, tests declare policy;
only the fleet enforces it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs import Registry

#: default burst window when none is declared: 50 ms at the steady rate.
_DEFAULT_BURST_S = 0.05


@dataclass(frozen=True)
class QoSLimits:
    """Declared per-tenant limits (0 = unlimited on that axis).

    ``burst_ops`` / ``burst_bytes`` size the bucket above the steady
    rate; left at 0 they default to 50 ms worth of the rate, enough to
    absorb a queue-depth's worth of simultaneous arrivals without
    penalising steady traffic.
    """

    iops: float = 0.0
    bytes_per_s: float = 0.0
    burst_ops: float = 0.0
    burst_bytes: float = 0.0

    def __post_init__(self) -> None:
        for name in ("iops", "bytes_per_s", "burst_ops", "burst_bytes"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def unlimited(self) -> bool:
        return self.iops <= 0 and self.bytes_per_s <= 0


#: the no-limits singleton (attach paths use it as a default)
UNLIMITED = QoSLimits()


class QoSTokenBucket:
    """A deterministic continuous token bucket with debt.

    Tokens refill at ``rate`` per second up to ``burst``; each admission
    deducts its cost immediately (the bucket may go negative) and the
    returned delay is how long the caller must wait for the balance to
    reach zero again.  Charging debt up front serialises concurrent
    arrivals correctly without any queue of its own: the Nth
    simultaneous arrival sees the debt of the previous N-1 and is told
    to wait N cost-units at the steady rate.
    """

    __slots__ = ("rate", "burst", "tokens", "last")

    def __init__(self, rate: float, burst: float = 0.0):
        if rate <= 0:
            raise ValueError("bucket rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst > 0 else self.rate * _DEFAULT_BURST_S
        self.tokens = self.burst
        self.last = 0.0

    def delay_for(self, now: float, cost: float) -> float:
        """Charge ``cost`` tokens at time ``now``; seconds to wait."""
        if now > self.last:
            self.tokens = min(self.burst, self.tokens + (now - self.last) * self.rate)
            self.last = now
        self.tokens -= cost
        if self.tokens >= 0:
            return 0.0
        return -self.tokens / self.rate

    @property
    def level(self) -> float:
        """Current balance (negative = admitted debt still draining)."""
        return self.tokens


class TenantThrottle:
    """Admission control for one tenant, with ``fleet.<tenant>.*`` metrics.

    ``admit(now, nbytes)`` charges both buckets (ops and bytes) and
    returns the delay the I/O must absorb before entering the data
    plane — 0.0 when the tenant is within its limits.  The timed runtime
    sleeps the delay on the simulated clock; the synchronous pure stack
    records it (counter + histogram + span annotation) since it has no
    clock to sleep on.
    """

    def __init__(
        self,
        tenant: str,
        limits: QoSLimits = UNLIMITED,
        obs: Optional[Registry] = None,
    ):
        self.tenant = tenant
        self.limits = limits
        self._op_bucket = (
            QoSTokenBucket(limits.iops, limits.burst_ops)
            if limits.iops > 0
            else None
        )
        self._byte_bucket = (
            QoSTokenBucket(limits.bytes_per_s, limits.burst_bytes)
            if limits.bytes_per_s > 0
            else None
        )
        self.obs = obs if obs is not None else Registry()
        prefix = f"fleet.{tenant}"
        self._m_admitted = self.obs.counter(f"{prefix}.admitted")
        self._m_throttled = self.obs.counter(f"{prefix}.throttled")
        self._m_bytes = self.obs.counter(f"{prefix}.bytes_admitted")
        self._m_delay = self.obs.histogram(f"{prefix}.throttle_delay_s")
        self._m_queue = self.obs.gauge(f"{prefix}.queue_depth")

    # ------------------------------------------------------------------
    def admit(self, now: float, nbytes: int = 0) -> float:
        """Admit one I/O of ``nbytes`` at time ``now``; returns the delay
        (seconds) the caller must serve before issuing it."""
        delay = 0.0
        if self._op_bucket is not None:
            delay = max(delay, self._op_bucket.delay_for(now, 1.0))
        if self._byte_bucket is not None and nbytes > 0:
            delay = max(delay, self._byte_bucket.delay_for(now, float(nbytes)))
        if delay > 0:
            self._m_throttled.inc()
            self._m_delay.observe(delay)
        else:
            self._m_admitted.inc()
        self._m_bytes.inc(nbytes)
        return delay

    def wait_started(self) -> None:
        """A throttled I/O entered the admission queue (gauge up)."""
        self._m_queue.inc()

    def wait_finished(self) -> None:
        self._m_queue.dec()

    # ------------------------------------------------------------------
    @property
    def admitted(self) -> int:
        return int(self._m_admitted.value)

    @property
    def throttled(self) -> int:
        return int(self._m_throttled.value)

    @property
    def queue_depth(self) -> int:
        return int(self._m_queue.value)


class CoreAdmission:
    """The pure stack's ``volume.qos`` attachment.

    :class:`~repro.core.volume.LSVDVolume` is synchronous and clockless,
    so throttling there is *accounting*, not sleeping: the charge still
    flows through the tenant's buckets (advanced by ``clock``, typically
    the TimedStore virtual clock) and the would-be delay lands in the
    ``fleet.<tenant>.throttle_delay_s`` histogram and on the I/O's span.
    The timed runtime is where delays are actually served.
    """

    def __init__(self, throttle: TenantThrottle, clock=None):
        self.throttle = throttle
        self._clock = clock
        self._ticks = 0

    def _now(self) -> float:
        if self._clock is not None:
            return float(self._clock())
        # clockless fallback: a monotonic op counter — rates degenerate
        # to "ops per tick" but stay deterministic
        self._ticks += 1
        return float(self._ticks)

    def admit(self, kind: str, nbytes: int, span=None) -> float:
        delay = self.throttle.admit(self._now(), nbytes)
        if span is not None:
            span.annotate(tenant=self.throttle.tenant)
            if delay > 0:
                span.annotate(throttle_delay_s=delay)
        return delay


class ThrottleSet:
    """One throttle per tenant over a shared registry (get-or-create)."""

    def __init__(self, obs: Optional[Registry] = None):
        self.obs = obs if obs is not None else Registry()
        self._throttles: Dict[str, TenantThrottle] = {}

    def get(self, tenant: str, limits: QoSLimits = UNLIMITED) -> TenantThrottle:
        throttle = self._throttles.get(tenant)
        if throttle is None:
            throttle = TenantThrottle(tenant, limits, obs=self.obs)
            self._throttles[tenant] = throttle
        return throttle

    def tenants(self):
        return sorted(self._throttles)

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._throttles

    def __len__(self) -> int:
        return len(self._throttles)
