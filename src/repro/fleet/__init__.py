"""repro.fleet — multi-tenant volume fleet with QoS admission control.

The paper's case for log-structured virtual disks is an economic one at
fleet scale (§4.5): one host, one object-store account, thousands of
virtual disks.  This package is the control plane that makes sharing
safe — a persistent vdisk registry with a crash-recovery sweep
(:class:`FleetManager`), per-tenant token-bucket admission control
(:mod:`repro.fleet.qos`), and per-tenant partitioning of the host-wide
shared object cache.

LSVD016 (tenant-isolation) confines the enforcement machinery here:
token buckets and cross-tenant state may not be constructed outside
``repro/fleet/``, and the volume entry points must pass admission before
forwarding I/O to shared resources.
"""

from repro.fleet.manager import (
    MANIFEST_KEY,
    AttachedVDisk,
    FleetError,
    FleetManager,
    VDiskRecord,
)
from repro.fleet.qos import (
    UNLIMITED,
    CoreAdmission,
    QoSLimits,
    QoSTokenBucket,
    TenantThrottle,
    ThrottleSet,
)
from repro.fleet.runtime import FleetRuntime

__all__ = [
    "MANIFEST_KEY",
    "AttachedVDisk",
    "CoreAdmission",
    "FleetError",
    "FleetManager",
    "FleetRuntime",
    "QoSLimits",
    "QoSTokenBucket",
    "TenantThrottle",
    "ThrottleSet",
    "UNLIMITED",
    "VDiskRecord",
]
