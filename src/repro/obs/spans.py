"""Causal span trees with critical-path latency attribution.

The pipelined data plane (group commit, per-shard destage queues,
overlapped GC/recovery) means a single virtual-disk write's latency is
spread across several queues and service stations.  Aggregate counters
and histograms (repro.obs.metrics) say *how much* time the system spent
flushing; they cannot say *which request* waited on that flush.  This
module adds the request-scoped view: a root :class:`Span` per I/O with
child spans for every stage it passes through — write-cache append,
batch seal (with seal reason), destage queue wait vs shard PUT service,
barrier queue wait vs device FLUSH, read-cache lookup / backend fetch,
GC select/materialize/relocate.

Propagation is by **explicit handles**: a stage that wants children
takes a ``span`` parameter (defaulting to :data:`NULL_SPAN`, a no-op
singleton, so uninstrumented callers pay nothing).  There is no
thread-local or ambient context — the simulator interleaves dozens of
generator processes on one thread, and an ambient context would
attribute one request's time to another.

Clock rules are the Trace's (LSVD003): timestamps come from whatever
virtual clock the embedding stack runs on (``sim.now`` in the timed
runtime, the TimedStore cost-model clock in the CLI) or from a logical
step counter when no clock is wired.  Never the wall clock; identical
runs serialise to byte-identical JSON.

Attribution is **exact-additive** by construction: a boundary sweep
over the tree's elementary intervals charges every instant of the
root's lifetime to exactly one stage (the deepest span active at that
instant, or ``"unattributed"`` when no child covers it), so the
per-stage components sum to the measured completion latency — the
invariant ``benchmarks/span_smoke.py`` gates.

Completed trees feed two bounded consumers:

* :class:`CriticalPathAnalyzer` — per-tree (total, breakdown) records,
  p50/p99 tail decomposition, stage tables for ``repro spans`` and the
  stage-attribution section of ``repro stats``;
* :class:`FlightRecorder` — ring buffer of the last N complete trees,
  dumped as a JSON debug bundle on SLO breach, crash-test failure, or
  ``repro flightrec dump``.

The LSVD015 lint rule (span-hygiene) enforces the handle discipline:
every span begun must be ended or adopted on all normal-exit paths.
"""

from __future__ import annotations

import heapq
import json
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import Registry

#: attribution key for root time no child span covers
SELF_STAGE = "unattributed"

#: span kinds: time spent waiting in a queue vs being serviced
KIND_QUEUE = "queue"
KIND_SERVICE = "service"
_KINDS = (KIND_QUEUE, KIND_SERVICE)

AttrValue = object

#: shared empty-collection sentinels: a fresh span owns no attrs dict
#: and no children list until it actually needs one, keeping tracked
#: allocations per span to the instance itself (the cyclic collector's
#: traversal cost scales with tracked containers — span_smoke gates it)
_NO_ATTRS: Dict[str, AttrValue] = {}
_NO_CHILDREN: Tuple["Span", ...] = ()


class Span:
    """One node of a causal span tree.

    ``start``/``stop`` are virtual-clock timestamps; ``stop`` is None
    while the span is open.  ``begin`` opens a child, ``end`` closes
    this span (idempotent — a second ``end`` is a no-op so ``finally``
    blocks stay simple).  Ending a *root* span hands the completed tree
    to its :class:`SpanRecorder`.
    """

    __slots__ = ("name", "kind", "start", "stop", "attrs", "children",
                 "_recorder", "_root")

    def __init__(
        self,
        name: str,
        kind: str,
        start: float,
        recorder: Optional["SpanRecorder"],
        root: bool = False,
    ):
        if kind is not KIND_SERVICE and kind not in _KINDS:
            raise ValueError(f"unknown span kind {kind!r}")
        self.name = name
        self.kind = kind
        self.start = start
        self.stop: Optional[float] = None
        # lazily materialized: the shared sentinels are never mutated
        self.attrs: Dict[str, AttrValue] = _NO_ATTRS
        self.children: List["Span"] = _NO_CHILDREN  # type: ignore[assignment]
        self._recorder = recorder
        self._root = root

    # -- lifecycle -------------------------------------------------------
    def begin(self, name: str, kind: str = KIND_SERVICE, **attrs: AttrValue) -> "Span":
        """Open a child span; the caller must ``end`` (or adopt) it."""
        # clock read and allocation inlined (vs recorder._now() and the
        # Span() constructor frame): begin/end bracket every stage on
        # the data plane, so each saved call is visible in the
        # span_smoke overhead gate
        if kind is not KIND_SERVICE and kind not in _KINDS:
            raise ValueError(f"unknown span kind {kind!r}")
        recorder = self._recorder
        if recorder is None:
            start = self.start
        elif recorder.clock is not None:
            start = float(recorder.clock())
        else:
            start = recorder._step
            recorder._step = start + 1.0
        child: "Span" = Span.__new__(Span)
        child.name = name
        child.kind = kind
        child.start = start
        child.stop = None
        child.attrs = attrs if attrs else _NO_ATTRS  # fresh dict: take it
        child.children = _NO_CHILDREN  # type: ignore[assignment]
        child._recorder = recorder
        child._root = False
        children = self.children
        if children is _NO_CHILDREN:
            children = self.children = []
        children.append(child)
        return child

    def end(self, **attrs: AttrValue) -> None:
        """Close the span (idempotent); roots complete into the recorder."""
        if attrs:
            self._merge_attrs(attrs)
        if self.stop is not None:
            return
        recorder = self._recorder
        if recorder is None:
            self.stop = self.start
            return
        if recorder.clock is not None:
            self.stop = float(recorder.clock())
        else:
            step = recorder._step
            recorder._step = step + 1.0
            self.stop = step
        if self._root:
            recorder._complete(self)

    def annotate(self, **attrs: AttrValue) -> None:
        if attrs:
            self._merge_attrs(attrs)

    def _merge_attrs(self, attrs: Dict[str, AttrValue]) -> None:
        if self.attrs is _NO_ATTRS:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)

    # -- inspection ------------------------------------------------------
    @property
    def ended(self) -> bool:
        return self.stop is not None

    @property
    def duration(self) -> float:
        """Seconds (virtual) from start to stop; 0 while still open."""
        return (self.stop - self.start) if self.stop is not None else 0.0

    @property
    def enabled(self) -> bool:
        return True

    def walk(self) -> Iterator["Span"]:
        """Depth-first pre-order over the tree rooted here."""
        stack: List["Span"] = [self]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.stop,
        }
        if self.attrs:
            out["attrs"] = dict(sorted(self.attrs.items()))
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        """Rebuild a (completed, recorder-less) tree from :meth:`to_dict`."""
        span = cls(
            str(data["name"]),
            str(data.get("kind", KIND_SERVICE)),
            float(data["start"]),  # type: ignore[arg-type]
            recorder=None,
        )
        end = data.get("end")
        span.stop = float(end) if end is not None else None  # type: ignore[arg-type]
        attrs = data.get("attrs")
        if isinstance(attrs, dict) and attrs:
            span.attrs = dict(attrs)
        children = data.get("children")
        if isinstance(children, list):
            span.children = [
                cls.from_dict(child)
                for child in children
                if isinstance(child, dict)
            ]
        return span

    def __repr__(self) -> str:
        state = f"{self.duration:.6g}s" if self.ended else "open"
        return f"Span({self.name!r}, {self.kind}, {state}, children={len(self.children)})"


class _NullSpan:
    """No-op span: ``begin`` returns itself, everything else is free.

    Handed out by a disabled recorder and used as the default for every
    ``span=`` parameter, so uninstrumented call paths allocate nothing.
    """

    __slots__ = ()

    name = "null"
    kind = KIND_SERVICE
    start = 0.0
    stop: Optional[float] = 0.0
    attrs: Dict[str, AttrValue] = {}
    children: List[Span] = []

    def begin(self, name: str, kind: str = KIND_SERVICE, **attrs: AttrValue) -> "_NullSpan":
        return self

    def end(self, **attrs: AttrValue) -> None:
        return None

    def annotate(self, **attrs: AttrValue) -> None:
        return None

    @property
    def ended(self) -> bool:
        return True

    @property
    def duration(self) -> float:
        return 0.0

    @property
    def enabled(self) -> bool:
        return False

    def walk(self) -> Iterator[Span]:
        return iter(())

    def to_dict(self) -> Dict[str, object]:
        return {"name": "null", "kind": KIND_SERVICE, "start": 0.0, "end": 0.0}

    def __repr__(self) -> str:
        return "NULL_SPAN"


#: the shared no-op span; identity-comparable (``span is NULL_SPAN``)
NULL_SPAN = _NullSpan()


# ---------------------------------------------------------------------------
# critical-path attribution
# ---------------------------------------------------------------------------
def attribute(root: Span) -> Dict[str, float]:
    """Exact-additive decomposition of a completed tree's latency.

    Boundary sweep: collect every completed descendant interval (clamped
    to the root's bounds), cut the root's lifetime at every start/stop
    boundary, and charge each elementary interval to the **deepest**
    span covering it (ties broken by latest start — the most recently
    entered stage).  Intervals no child covers are charged to
    :data:`SELF_STAGE`.  The values sum to ``root.duration`` up to
    floating-point summation error.
    """
    if root.stop is None:
        raise ValueError(f"cannot attribute open span {root.name!r}")
    lo0, hi0 = root.start, root.stop
    intervals: List[Tuple[float, float, int, float, str]] = []

    def collect(span: Span, depth: int) -> None:
        for child in span.children:
            if child.stop is not None:
                a = max(child.start, lo0)
                b = min(child.stop, hi0)
                if b > a:
                    intervals.append((a, b, depth, child.start, child.name))
            collect(child, depth + 1)

    collect(root, 1)
    breakdown: Dict[str, float] = {}
    if not intervals:
        if hi0 > lo0:
            breakdown[SELF_STAGE] = hi0 - lo0
        return breakdown
    bounds = sorted({lo0, hi0, *(i[0] for i in intervals), *(i[1] for i in intervals)})
    for lo, hi in zip(bounds, bounds[1:]):
        if hi <= lo:
            continue
        best: Optional[Tuple[int, float, str]] = None
        for a, b, depth, started, name in intervals:
            if a <= lo and hi <= b:
                key = (depth, started, name)
                if best is None or key > best:
                    best = key
        stage = best[2] if best is not None else SELF_STAGE
        breakdown[stage] = breakdown.get(stage, 0.0) + (hi - lo)
    return breakdown


def stage_kinds(root: Span) -> Dict[str, str]:
    """Stage name -> queue/service kind, over one tree."""
    kinds: Dict[str, str] = {}
    for span in root.walk():
        kinds.setdefault(span.name, span.kind)
    return kinds


class TreeRecord:
    """Bounded summary of one completed tree (the Span itself may be
    long gone from the flight-recorder ring)."""

    __slots__ = ("name", "total", "breakdown", "kinds")

    def __init__(self, name: str, total: float, breakdown: Dict[str, float],
                 kinds: Dict[str, str]):
        self.name = name
        self.total = total
        self.breakdown = breakdown
        self.kinds = kinds


class CriticalPathAnalyzer:
    """Additive queue/service decomposition of completion latency.

    Holds a bounded window (newest ``capacity`` trees); attribution is
    computed lazily at query time so completion stays cheap on the hot
    path (the span_smoke overhead gate).  :meth:`decompose` averages the
    breakdowns of the trees at/above a latency percentile, so the
    reported stage components sum exactly to the reported mean tail
    latency.
    """

    def __init__(self, capacity: int = 16384):
        if capacity <= 0:
            raise ValueError("analyzer capacity must be positive")
        self.capacity = capacity
        self._roots: Deque[Span] = deque(maxlen=capacity)
        self.dropped = 0

    def add(self, root: Span) -> None:
        if len(self._roots) == self.capacity:
            self.dropped += 1
        self._roots.append(root)

    def __len__(self) -> int:
        return len(self._roots)

    def kinds(self) -> Dict[str, str]:
        """Stage name -> queue/service kind over the retained window."""
        out: Dict[str, str] = {}
        for root in self._roots:
            for span in root.walk():
                out.setdefault(span.name, span.kind)
        return out

    def records(self, name: Optional[str] = None) -> List[TreeRecord]:
        return [
            TreeRecord(root.name, root.duration, attribute(root),
                       stage_kinds(root))
            for root in self._roots
            if name is None or root.name == name
        ]

    def root_names(self) -> List[str]:
        return sorted({root.name for root in self._roots})

    def decompose(self, p: float, name: Optional[str] = None) -> Dict[str, object]:
        """Mean additive breakdown of the latency tail at percentile ``p``.

        Takes the ``ceil(count * (100 - p) / 100)`` slowest trees (at
        least one), and returns their mean total plus the mean per-stage
        contribution — stage values sum to ``latency_s`` exactly (mean
        of sums == sum of means).
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p!r} out of range")
        records = self.records(name)
        if not records:
            return {"count": 0, "tail_count": 0, "latency_s": 0.0, "stages": {}}
        records.sort(key=lambda r: r.total)
        tail = max(1, -(-len(records) * (100 - int(p)) // 100))
        slowest = records[-tail:]
        stages: Dict[str, float] = {}
        for record in slowest:
            for stage, seconds in record.breakdown.items():
                stages[stage] = stages.get(stage, 0.0) + seconds
        n = float(len(slowest))
        return {
            "count": len(records),
            "tail_count": len(slowest),
            "latency_s": sum(r.total for r in slowest) / n,
            "stages": {s: t / n for s, t in sorted(stages.items())},
        }

    def stage_totals(
        self, name: Optional[str] = None
    ) -> Dict[str, Tuple[str, int, float]]:
        """Stage -> (kind, trees containing it, total attributed seconds)."""
        out: Dict[str, Tuple[str, int, float]] = {}
        for record in self.records(name):
            for stage, seconds in record.breakdown.items():
                kind, count, total = out.get(
                    stage, (record.kinds.get(stage, KIND_SERVICE), 0, 0.0)
                )
                out[stage] = (kind, count + 1, total + seconds)
        return dict(sorted(out.items()))

    def clear(self) -> None:
        self._roots.clear()
        self.dropped = 0


class FlightRecorder:
    """Ring buffer of the last ``capacity`` complete span trees."""

    def __init__(self, capacity: int = 64):
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.capacity = capacity
        self._trees: Deque[Span] = deque(maxlen=capacity)
        self.dropped = 0

    def add(self, root: Span) -> None:
        if len(self._trees) == self.capacity:
            self.dropped += 1
        self._trees.append(root)

    def trees(self) -> List[Span]:
        return list(self._trees)

    def __len__(self) -> int:
        return len(self._trees)

    def clear(self) -> None:
        self._trees.clear()
        self.dropped = 0


class SpanRecorder:
    """Factory + sink for span trees of one stack instance.

    Mirrors the Trace clock contract: ``clock`` is any zero-arg virtual
    clock (``sim.now``, ``TimedStore.now``); when None, a logical step
    counter stamps each begin/end so pure-logic code still yields
    well-ordered (if unit-free) trees.  ``enabled=False`` (or
    ``disable()``) makes :meth:`root` return :data:`NULL_SPAN`, so the
    whole instrumented path degenerates to attribute lookups on a
    singleton.
    """

    SLOWEST_KEEP = 32

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
        flight_capacity: int = 64,
        analyzer_capacity: int = 16384,
        slo_s: Optional[float] = None,
        sample_every: int = 1,
    ):
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self.clock = clock
        self.enabled = enabled
        #: head sampling: trace 1 of every N roots (1 = every request);
        #: counter-based, so identical runs sample identical requests
        self.sample_every = sample_every
        self._sample_tick = 0
        self.flight = FlightRecorder(flight_capacity)
        self.analyzer = CriticalPathAnalyzer(analyzer_capacity)
        #: completion-latency SLO; breaching trees bump the counter and
        #: invoke ``on_breach(root)`` (e.g. a debug-bundle dump hook)
        self.slo_s = slo_s
        self.on_breach: Optional[Callable[[Span], None]] = None
        self.completed = 0
        self.open_roots = 0
        self.slo_breaches = 0
        self._step = 0.0
        self._arrival = 0
        # K slowest completed trees, min-heap on (total, -seq) so the
        # fastest of the kept set is evicted first; deterministic ties.
        self._slowest: List[Tuple[float, int, Span]] = []
        global _LAST_RECORDER
        _LAST_RECORDER = self

    # -- clock -----------------------------------------------------------
    def _now(self) -> float:
        if self.clock is not None:
            return float(self.clock())
        step = self._step
        self._step = step + 1.0
        return step

    # -- tree lifecycle --------------------------------------------------
    def root(self, name: str, **attrs: AttrValue):
        """Open a root span (one per I/O / GC round / recovery sweep)."""
        if not self.enabled:
            return NULL_SPAN
        if self.sample_every > 1:
            self._sample_tick += 1
            if self._sample_tick % self.sample_every:
                return NULL_SPAN
        if self.clock is not None:
            start = float(self.clock())
        else:
            start = self._step
            self._step = start + 1.0
        span: Span = Span.__new__(Span)
        span.name = name
        span.kind = KIND_SERVICE
        span.start = start
        span.stop = None
        span.attrs = attrs if attrs else _NO_ATTRS  # fresh dict: take it
        span.children = _NO_CHILDREN  # type: ignore[assignment]
        span._recorder = self
        span._root = True
        self.open_roots += 1
        return span

    def _complete(self, root: Span) -> None:
        # one call per finished I/O: bounded-window bookkeeping is
        # inlined (no analyzer.add/flight.add calls) — this function is
        # most of what the span_smoke overhead gate measures
        self.completed += 1
        if self.open_roots > 0:
            self.open_roots -= 1
        analyzer = self.analyzer
        roots = analyzer._roots
        if len(roots) == analyzer.capacity:
            analyzer.dropped += 1
        roots.append(root)
        flight = self.flight
        trees = flight._trees
        if len(trees) == flight.capacity:
            flight.dropped += 1
        trees.append(root)
        duration = root.stop - root.start  # type: ignore[operator]
        slowest = self._slowest
        if len(slowest) < self.SLOWEST_KEEP or duration > slowest[0][0]:
            arrival = self._arrival
            self._arrival += 1
            heapq.heappush(slowest, (duration, -arrival, root))
            if len(slowest) > self.SLOWEST_KEEP:
                heapq.heappop(slowest)
        # Retained trees must not point back at the recorder: recorder
        # -> bounded deque -> span -> recorder is a reference cycle, so
        # every evicted tree would be cyclic garbage and the cyclic
        # collector a hot-path cost.  Ended spans never touch the
        # recorder again (end() bails on stop-is-set before reading
        # it); rare still-open children keep theirs so a late end()
        # still stamps the virtual clock.  Trees are root -> stages;
        # grandchildren are rare enough to take a slow path.
        root._recorder = None
        for child in root.children:
            if child.stop is not None:
                child._recorder = None
            if child.children:
                stack = list(child.children)
                while stack:
                    span = stack.pop()
                    if span.stop is not None:
                        span._recorder = None
                    if span.children:
                        stack.extend(span.children)
        if self.slo_s is not None and duration > self.slo_s:
            self.slo_breaches += 1
            if self.on_breach is not None:
                self.on_breach(root)

    def slowest(self, k: int = 10) -> List[Span]:
        """The K slowest completed trees, slowest first."""
        ranked = sorted(self._slowest, key=lambda item: (-item[0], item[1]))
        return [root for _, _, root in ranked[:k]]

    def disable(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def clear(self) -> None:
        self.flight.clear()
        self.analyzer.clear()
        self.completed = 0
        self.open_roots = 0
        self.slo_breaches = 0
        self._step = 0.0
        self._arrival = 0
        self._sample_tick = 0
        self._slowest = []

    # -- export ----------------------------------------------------------
    def debug_bundle(self, reason: str = "manual") -> Dict[str, object]:
        """JSON-ready flight-recorder bundle (ring + slowest + stages)."""
        return {
            "bundle": "flightrec",
            "reason": reason,
            "completed": self.completed,
            "open_roots": self.open_roots,
            "slo_breaches": self.slo_breaches,
            "flight_dropped": self.flight.dropped,
            "stage_totals": {
                stage: {"trees": count, "seconds": total, "kind": kind}
                for stage, (kind, count, total)
                in self.analyzer.stage_totals().items()
            },
            "slowest": [root.to_dict() for root in self.slowest(self.SLOWEST_KEEP)],
            "trees": [root.to_dict() for root in self.flight.trees()],
        }

    def dump_debug_bundle(self, path: str, reason: str = "manual") -> str:
        """Write the bundle as JSON; returns the serialized text."""
        text = json.dumps(self.debug_bundle(reason), sort_keys=True, indent=2)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        return text

    def publish(self, registry: "Registry") -> None:
        """Mirror span aggregates into the metrics registry (idempotent:
        absolute sets, so repeated publishes don't double-count)."""
        registry.counter("span.trees", "completed span trees").set(self.completed)
        registry.counter("span.slo_breaches", "trees over slo_s").set(self.slo_breaches)
        registry.gauge("span.open_roots", "roots begun, not ended").set(self.open_roots)
        registry.counter(
            "span.dropped", "trees evicted from bounded windows"
        ).set(self.flight.dropped + self.analyzer.dropped)
        for stage, (_kind, _count, total) in self.analyzer.stage_totals().items():
            registry.gauge(
                f"span.stage.{stage}_s", "attributed seconds (all trees)"
            ).set(total)


# module-level pointer to the most recently constructed recorder, so
# post-mortem hooks (pytest failure reports, crash harness) can dump a
# flight-recorder bundle without plumbing a registry through the stack.
_LAST_RECORDER: Optional[SpanRecorder] = None


def last_recorder() -> Optional[SpanRecorder]:
    return _LAST_RECORDER


def dump_last_flight(path: str, reason: str) -> bool:
    """Dump the most recent recorder's bundle; False when there is none
    or it never completed a tree (nothing worth writing)."""
    recorder = _LAST_RECORDER
    if recorder is None or recorder.completed == 0:
        return False
    recorder.dump_debug_bundle(path, reason)
    return True


# ---------------------------------------------------------------------------
# text rendering (repro spans / repro stats)
# ---------------------------------------------------------------------------
def format_tree(root: Span, unit: str = "s") -> str:
    """One tree as an indented text outline with durations and attrs."""
    lines: List[str] = []

    def emit(span: Span, depth: int) -> None:
        attrs = "".join(
            f" {k}={v}" for k, v in sorted(span.attrs.items())
        )
        marker = "~" if span.kind == KIND_QUEUE else " "
        lines.append(
            f"{'  ' * depth}{span.name:<{max(2, 24 - 2 * depth)}}"
            f"{marker}{span.duration:>12.6f}{unit}{attrs}"
        )
        for child in span.children:
            emit(child, depth + 1)

    emit(root, 0)
    return "\n".join(lines)


def format_stage_table(analyzer: CriticalPathAnalyzer,
                       name: Optional[str] = None) -> str:
    """Stage breakdown table (stage, kind, trees, total, share)."""
    totals = analyzer.stage_totals(name)
    grand = sum(total for _kind, _count, total in totals.values()) or 1.0
    rows = [f"{'stage':<20} {'kind':<8} {'trees':>8} {'seconds':>14} {'share':>7}"]
    for stage, (kind, count, total) in totals.items():
        rows.append(
            f"{stage:<20} {kind:<8} {count:>8} {total:>14.6f} "
            f"{100.0 * total / grand:>6.1f}%"
        )
    return "\n".join(rows)


def format_decomposition(analyzer: CriticalPathAnalyzer,
                         name: Optional[str] = None) -> str:
    """p50/p99 tail decomposition lines for the stats headline."""
    lines: List[str] = []
    for p in (50, 99):
        decomp = analyzer.decompose(p, name)
        if not decomp["count"]:
            continue
        stages = decomp["stages"]
        assert isinstance(stages, dict)
        parts = " + ".join(
            f"{stage}:{seconds:.6f}" for stage, seconds in stages.items()
        ) or "(no timed stages)"
        lines.append(
            f"p{p} tail ({decomp['tail_count']}/{decomp['count']} trees) "
            f"{decomp['latency_s']:.6f}s = {parts}"
        )
    return "\n".join(lines)
