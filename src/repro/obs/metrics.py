"""Deterministic metrics registry: counters, gauges, latency histograms.

Every layer of the stack registers named metrics into one
:class:`Registry` so that the numbers behind the paper's evaluation
(write amplification, cache hit ratios, GC relocation volume, backend
latency percentiles — Figs. 6-16, Tabs. 3-6) all come from the same
substrate instead of ad-hoc per-class counters.

Metric names are dotted, ``<layer>.<quantity>[_<unit>]`` —
``store.gc_bytes``, ``rc.hits``, ``backend.put_latency_s`` — so a
snapshot sorts into layer groups and exporters can mangle them
mechanically (Prometheus replaces the dots with underscores).

Determinism rules (the same LSVD003 contract as the rest of the tree):
nothing in this module reads a wall clock or draws randomness; histogram
bucket bounds are fixed at construction, so identical runs produce
byte-identical snapshots.

Back-compat shims
-----------------
:class:`metric_field` / :class:`gauge_field` are class-level descriptors
that expose a registry metric as a plain attribute, preserving the
pre-existing ``stats.bytes_relocated`` reads and ``self.hits += 1``
writes while the actual value lives in the owner's ``obs`` registry.
The LSVD007 lint rule recognises these declarations and exempts their
increments from the "ad-hoc stat counter" check.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

#: 1-2-5 log-spaced latency buckets, 1 microsecond .. 50 seconds.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    float(f"{m}e{e}") for e in range(-6, 2) for m in (1, 2, 5)
)

#: power-of-two object/request size buckets, 512 B .. 256 MiB.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = tuple(float(512 << i) for i in range(20))


class Counter:
    """A monotonically *intended* integer counter (set() exists only so
    checkpoint restore and legacy shims can assign absolute values)."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def set(self, value: int) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time level (cache occupancy, dirty bytes)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram with exact min/max/sum/count.

    Percentiles resolve to the upper bound of the bucket containing the
    requested rank, clamped into ``[min, max]`` so single-sample and
    tight distributions report exact values; samples beyond the last
    bound land in an overflow bucket that reports the observed maximum.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "bounds", "bucket_counts", "count", "sum",
                 "min", "max")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ):
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.help = help
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        # one count per bound, plus the overflow bucket
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` samples of ``value`` (merged-op accounting)."""
        if count <= 0:
            return
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        self.bucket_counts[index] += count
        self.count += count
        self.sum += value * count
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` (0..100), bucket-resolution."""
        if self.count == 0:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p!r} out of range")
        rank = max(1, math.ceil(self.count * p / 100.0))
        running = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            running += bucket_count
            if running >= rank:
                if index < len(self.bounds):
                    estimate = self.bounds[index]
                else:
                    estimate = self.max if self.max is not None else 0.0
                lo = self.min if self.min is not None else estimate
                hi = self.max if self.max is not None else estimate
                return min(max(estimate, lo), hi)
        return self.max if self.max is not None else 0.0

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


Metric = Union[Counter, Gauge, Histogram]


class Registry:
    """Named metrics plus the structured trace for one stack instance.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    registers the metric, later calls return the same object (and raise
    if the name is already registered as a different kind).
    """

    def __init__(self, trace: Optional["Trace"] = None):
        from repro.obs.spans import SpanRecorder  # local import, avoids a cycle
        from repro.obs.trace import Trace

        self._metrics: Dict[str, Metric] = {}
        self.trace: "Trace" = trace if trace is not None else Trace()
        #: causal span trees (same clock contract as the trace)
        self.spans: SpanRecorder = SpanRecorder()

    # -- get-or-create ---------------------------------------------------
    def _register(self, name: str, kind: str, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._register(name, "counter", lambda: Counter(name, help))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._register(name, "gauge", lambda: Gauge(name, help))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        metric = self._register(
            name, "histogram", lambda: Histogram(name, buckets, help)
        )
        assert isinstance(metric, Histogram)
        return metric

    # -- inspection ------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0) -> float:
        """Scalar value of a counter/gauge (``default`` when absent)."""
        metric = self._metrics.get(name)
        if metric is None or isinstance(metric, Histogram):
            return default
        return metric.value

    def metrics(self) -> List[Metric]:
        """All registered metrics, sorted by name (deterministic order)."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self.metrics())

    def __len__(self) -> int:
        return len(self._metrics)

    # -- lifecycle -------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Name -> value map (histograms expand to their summary dict)."""
        return {metric.name: metric.snapshot() for metric in self.metrics()}

    def reset(self) -> None:
        """Zero every metric, clear the trace and spans; names stay
        registered."""
        for metric in self.metrics():
            metric.reset()
        self.trace.clear()
        self.spans.clear()


# ---------------------------------------------------------------------------
# back-compat attribute shims
# ---------------------------------------------------------------------------
class metric_field:
    """Class-level descriptor exposing a registry Counter as an attribute.

    The owning instance must carry an ``obs`` Registry.  Reads return the
    counter's value, ``+=`` and plain assignment write through — existing
    ``stats.rounds += 1`` call sites keep working unchanged.
    """

    kind = "counter"

    def __init__(self, metric_name: str):
        self.metric_name = metric_name

    def metric(self, obj: object) -> Counter:
        registry: Registry = getattr(obj, "obs")
        return registry.counter(self.metric_name)

    def __get__(self, obj: Optional[object], objtype: object = None) -> int:
        if obj is None:
            return self  # type: ignore[return-value]
        return int(self.metric(obj).value)

    def __set__(self, obj: object, value: int) -> None:
        self.metric(obj).set(value)


class gauge_field(metric_field):
    """Like :class:`metric_field`, but backed by a Gauge (levels, not
    cumulative counts — e.g. ``dirty_bytes``)."""

    kind = "gauge"

    def metric(self, obj: object) -> Gauge:  # type: ignore[override]
        registry: Registry = getattr(obj, "obs")
        return registry.gauge(self.metric_name)


def bind_metrics(obj: object) -> None:
    """Eagerly register every ``metric_field`` of ``obj``'s class.

    Called from stats-holder constructors so the registry lists all the
    class's metrics (at zero) even before the first increment — snapshots
    then have a stable shape across runs that exercise different paths.
    """
    for name in dir(type(obj)):
        attr = getattr(type(obj), name, None)
        if isinstance(attr, metric_field):
            attr.metric(obj)
