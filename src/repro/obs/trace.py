"""Structured, deterministic event trace.

An append-only stream of *typed* events — ``write_commit``, ``gc_round``,
``cache_evict``, ``backend_put``, ``crash``, ``recovery_replay`` and
friends — timestamped from whatever virtual clock the embedding stack
runs on: the simulated clock (``sim.now``) in the timed runtime, the
:class:`~repro.obs.timing.TimedStore` cost-model clock in the CLI, and a
plain logical step counter in pure-logic code that has no clock at all.
Never the wall clock: two identical runs must serialise to byte-identical
JSONL (the trace-determinism golden test), which is also why events carry
no uuids and JSON is dumped with sorted keys.

For long runs the trace can be bounded (``capacity``): it becomes a ring
buffer that drops the *oldest* events and counts the drops.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Deque, Dict, FrozenSet, Iterable, List, Optional, Tuple

#: the event catalogue; emit() rejects unknown types so tooling can rely
#: on the names (extend per-instance via ``Trace(extra_types=...)``)
EVENT_TYPES: FrozenSet[str] = frozenset(
    {
        "write_commit",     # volume sealed+committed a data batch
        "gc_round",         # collector finished relocating one round
        "cache_evict",      # read cache evicted bytes (FIFO ring wrap)
        "backend_put",      # block store PUT an object (data/gc/ckpt)
        "checkpoint",       # KIND_CHECKPOINT object written
        "crash",            # a crash was injected / simulated
        "recovery_replay",  # one cache record replayed to the backend
        "recovery_complete",  # mount-time recovery finished
        "recovery_scan",    # timed mount sweep (LIST + header GET fans)
        "snapshot",         # stream head designated as a snapshot
        "barrier_group",    # group commit settled N barriers on one FLUSH
        "fleet_create",     # fleet registered + created a new vdisk
        "fleet_attach",     # fleet mounted a vdisk (QoS + cache wired)
        "fleet_detach",     # fleet unmounted a vdisk
        "fleet_delete",     # fleet unregistered a vdisk, objects deleted
    }
)

#: event field values are JSON scalars only — keeps the export byte-stable
FieldValue = object


class TraceEvent:
    """One trace event: (timestamp, type, sorted field tuple)."""

    __slots__ = ("ts", "etype", "fields")

    def __init__(self, ts: float, etype: str, fields: Tuple[Tuple[str, FieldValue], ...]):
        self.ts = ts
        self.etype = etype
        self.fields = fields

    def to_dict(self) -> Dict[str, FieldValue]:
        out: Dict[str, FieldValue] = {"ts": self.ts, "type": self.etype}
        out.update(self.fields)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def __repr__(self) -> str:
        return f"TraceEvent({self.to_json()})"


class Trace:
    """Append-only (optionally ring-buffered) stream of typed events."""

    def __init__(
        self,
        capacity: Optional[int] = None,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
        extra_types: Iterable[str] = (),
    ):
        if capacity is not None and capacity <= 0:
            raise ValueError("trace capacity must be positive (or None)")
        self.capacity = capacity
        #: virtual-clock source; None = logical step counter
        self.clock = clock
        self.enabled = enabled
        self.types: FrozenSet[str] = EVENT_TYPES | frozenset(extra_types)
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self._step = 0  # logical timestamp source when no clock is wired

    # -- emission --------------------------------------------------------
    def emit(self, etype: str, **fields: FieldValue) -> Optional[TraceEvent]:
        """Record one event; returns it (or None when disabled)."""
        if not self.enabled:
            return None
        if etype not in self.types:
            raise ValueError(f"unknown trace event type {etype!r}")
        if self.clock is not None:
            ts = float(self.clock())
        else:
            ts = float(self._step)
        self._step += 1
        event = TraceEvent(ts, etype, tuple(sorted(fields.items())))
        if self.capacity is not None and len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        return event

    # -- inspection ------------------------------------------------------
    def events(self, etype: Optional[str] = None) -> List[TraceEvent]:
        if etype is None:
            return list(self._events)
        return [e for e in self._events if e.etype == etype]

    def counts(self) -> Dict[str, int]:
        """Event-type -> occurrence count (over the retained window)."""
        out: Dict[str, int] = {}
        for event in self._events:
            out[event.etype] = out.get(event.etype, 0) + 1
        return dict(sorted(out.items()))

    def __len__(self) -> int:
        return len(self._events)

    # -- export / lifecycle ----------------------------------------------
    def to_jsonl(self, limit: Optional[int] = None) -> str:
        """JSONL export, byte-stable across identical runs.

        ``limit`` keeps only the newest N events (0/None = all).
        """
        events = list(self._events)
        if limit:
            events = events[-limit:]
        if not events:
            return ""
        return "\n".join(e.to_json() for e in events) + "\n"

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
        self._step = 0
