"""Registry exporters: Prometheus text, CSV, JSON, benchmark dumps.

All output is deterministic: metrics render in sorted-name order, JSON is
dumped with sorted keys, and no timestamps other than the registry's own
virtual-clock values appear anywhere.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Union

from repro.obs.metrics import Histogram, Registry


def _prom_name(name: str) -> str:
    """Metric name mangled to the Prometheus grammar."""
    mangled = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if mangled and mangled[0].isdigit():
        mangled = "_" + mangled
    return mangled


def _prom_value(value: Union[int, float]) -> str:
    if isinstance(value, bool):  # bools are ints; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def prometheus_text(registry: Registry) -> str:
    """Prometheus exposition-format dump of every registered metric."""
    lines: List[str] = []
    for metric in registry.metrics():
        name = _prom_name(metric.name)
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        if isinstance(metric, Histogram):
            lines.append(f"# TYPE {name} histogram")
            running = 0
            for bound, bucket_count in zip(metric.bounds, metric.bucket_counts):
                running += bucket_count
                lines.append(
                    f'{name}_bucket{{le="{_prom_value(bound)}"}} {running}'
                )
            lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{name}_sum {_prom_value(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
        else:
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.append(f"{name} {_prom_value(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def registry_csv(registry: Registry) -> str:
    """Flat ``metric,value`` CSV; histograms expand into summary rows."""
    rows: List[str] = ["metric,value"]
    for metric in registry.metrics():
        if isinstance(metric, Histogram):
            for key, value in metric.snapshot().items():
                rows.append(f"{metric.name}.{key},{_prom_value(value)}")  # type: ignore[arg-type]
        else:
            rows.append(f"{metric.name},{_prom_value(metric.value)}")
    return "\n".join(rows) + "\n"


def metrics_json(registry: Registry, extra: Optional[Dict[str, object]] = None) -> str:
    """JSON document with the full registry snapshot (+ optional extras)."""
    document: Dict[str, object] = {"metrics": registry.snapshot()}
    if extra:
        document.update(extra)
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def write_metrics_json(
    registry: Registry,
    path: Union[str, pathlib.Path],
    extra: Optional[Dict[str, object]] = None,
) -> pathlib.Path:
    out = pathlib.Path(path)
    out.write_text(metrics_json(registry, extra), encoding="utf-8")
    return out


def write_bench_json(
    name: str,
    registry: Registry,
    figures: Optional[Dict[str, object]] = None,
    out_dir: Union[str, pathlib.Path] = ".",
) -> pathlib.Path:
    """Emit ``BENCH_<name>.json`` — benchmark figures + the registry they
    were computed from, so the perf trajectory is machine-readable."""
    out = pathlib.Path(out_dir) / f"BENCH_{name}.json"
    return write_metrics_json(registry, out, extra={"bench": name, "figures": figures or {}})


def write_bench_sections_json(
    name: str,
    sections: Dict[str, "tuple[Registry, Dict[str, object]]"],
    out_dir: Union[str, pathlib.Path] = ".",
) -> pathlib.Path:
    """Emit ``BENCH_<name>.json`` from several registries at once.

    Figures stay a flat top-level dict (``<section>_<figure>``) so tooling
    that walks ``document["figures"]`` — bench_diff in particular — treats
    sectioned and single-registry BENCH files identically; the per-section
    registry snapshots land under ``metrics[<section>]``.
    """
    figures: Dict[str, object] = {}
    metrics: Dict[str, object] = {}
    for section, (registry, section_figures) in sorted(sections.items()):
        metrics[section] = registry.snapshot()
        for key, value in section_figures.items():
            figures[f"{section}_{key}"] = value
    document = {
        "bench": name,
        "figures": figures,
        "metrics": metrics,
        "sections": sorted(sections),
    }
    out = pathlib.Path(out_dir) / f"BENCH_{name}.json"
    out.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n", encoding="utf-8")
    return out


__all__ = [
    "prometheus_text",
    "registry_csv",
    "metrics_json",
    "write_metrics_json",
    "write_bench_json",
    "write_bench_sections_json",
]
