"""repro.obs — unified metrics, tracing, and profiling for the LSVD stack.

One :class:`Registry` of named counters/gauges/histograms shared by the
volume, caches, block store, collector, replicator and the timed runtime;
one :class:`Trace` of typed events stamped from a virtual clock.  See
DESIGN.md "Observability" for the naming scheme and determinism rules.
"""

from repro.obs.export import (
    metrics_json,
    prometheus_text,
    registry_csv,
    write_bench_json,
    write_bench_sections_json,
    write_metrics_json,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    bind_metrics,
    gauge_field,
    metric_field,
)
from repro.obs.spans import (
    NULL_SPAN,
    CriticalPathAnalyzer,
    FlightRecorder,
    Span,
    SpanRecorder,
    attribute,
    dump_last_flight,
    format_stage_table,
    format_tree,
)
from repro.obs.timing import TimedStore
from repro.obs.trace import EVENT_TYPES, Trace, TraceEvent

__all__ = [
    "Counter",
    "CriticalPathAnalyzer",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "EVENT_TYPES",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "NULL_SPAN",
    "Registry",
    "Span",
    "SpanRecorder",
    "TimedStore",
    "Trace",
    "TraceEvent",
    "attribute",
    "bind_metrics",
    "dump_last_flight",
    "format_stage_table",
    "format_tree",
    "gauge_field",
    "metric_field",
    "metrics_json",
    "prometheus_text",
    "registry_csv",
    "write_bench_json",
    "write_bench_sections_json",
    "write_metrics_json",
]
