"""Deterministic request-timing wrapper for pure-logic object stores.

The timed runtime measures real (simulated) backend latency with
``sim.now``; the pure-logic core has no clock at all, so the CLI's
``repro stats`` could never report a backend p99.  :class:`TimedStore`
closes that gap: it wraps any :class:`~repro.objstore.s3.ObjectStore`
and charges each request an explicit, deterministic cost —

    latency = request_latency + bytes / bandwidth_bps

(defaults match the paper's Table 6 RGW figure of ~5.9 ms per request)
— advancing an internal virtual clock and recording the per-operation
latencies into ``backend.put_latency_s`` / ``backend.get_latency_s`` /
``backend.delete_latency_s`` histograms in the shared registry.  Wiring
``registry.trace.clock = timed.now`` stamps trace events from the same
virtual clock, keeping identical runs byte-identical (LSVD003).
"""

from __future__ import annotations

from typing import List, Optional

from repro.obs.metrics import Registry
from repro.obs.spans import NULL_SPAN
from repro.objstore.s3 import ObjectStore


class TimedStore(ObjectStore):
    """Cost-model timing facade over an inner object store."""

    #: span handles passed to :meth:`put` cover the cost-model charge and
    #: are forwarded to span-aware inner stores (sharded facade)
    accepts_span = True

    def __init__(
        self,
        inner: ObjectStore,
        obs: Optional[Registry] = None,
        request_latency: float = 5.9e-3,
        bandwidth_bps: float = 100e6,
    ):
        self.inner = inner
        self.obs = obs if obs is not None else Registry()
        self.request_latency = request_latency
        self.bandwidth_bps = bandwidth_bps
        #: virtual seconds accumulated across all requests
        self.clock = 0.0
        self._put_latency = self.obs.histogram("backend.put_latency_s")
        self._get_latency = self.obs.histogram("backend.get_latency_s")
        self._delete_latency = self.obs.histogram("backend.delete_latency_s")

    def now(self) -> float:
        """Current virtual time (usable as a trace clock)."""
        return self.clock

    def _charge(self, nbytes: int) -> float:
        cost = self.request_latency + nbytes / self.bandwidth_bps
        self.clock += cost
        return cost

    # -- writes ----------------------------------------------------------
    def put(self, name: str, data: bytes, span=NULL_SPAN):
        if getattr(self.inner, "accepts_span", False):
            result = self.inner.put(name, data, span=span)
        else:
            result = self.inner.put(name, data)
        self._put_latency.observe(self._charge(len(data)))
        return result

    def delete(self, name: str) -> None:
        self.inner.delete(name)
        self._delete_latency.observe(self._charge(0))

    def copy(self, src: str, dst: str) -> None:
        self.inner.copy(src, dst)
        # server-side copy: one request, no client-side data transfer
        self._put_latency.observe(self._charge(0))

    # -- reads -----------------------------------------------------------
    def get(self, name: str) -> bytes:
        data = self.inner.get(name)
        self._get_latency.observe(self._charge(len(data)))
        return data

    def get_range(self, name: str, offset: int, length: int) -> bytes:
        data = self.inner.get_range(name, offset, length)
        self._get_latency.observe(self._charge(len(data)))
        return data

    def list(self, prefix: str = "") -> List[str]:
        names = self.inner.list(prefix)
        self._charge(0)
        return names

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def size(self, name: str) -> int:
        return self.inner.size(name)
