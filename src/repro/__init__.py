"""repro — Log-Structured Virtual Disks (LSVD), reproduced in Python.

A from-scratch implementation of the system described in *"Beating the
I/O Bottleneck: A Case for Log-Structured Virtual Disks"* (EuroSys 2022),
together with every substrate its evaluation depends on: a discrete-event
simulator, device models, a storage-cluster simulator, S3-like object
stores, the RBD and bcache baselines, workload generators, and a
prefix-consistency checker.

The ninety-second tour::

    from repro import LSVDConfig, LSVDVolume
    from repro.devices.image import DiskImage
    from repro.objstore import InMemoryObjectStore

    store = InMemoryObjectStore()
    vol = LSVDVolume.create(store, "vd", size=64 << 20,
                            cache_image=DiskImage(8 << 20),
                            config=LSVDConfig())
    vol.write(0, b"hello".ljust(512, b"\\0"))
    vol.flush()                 # commit barrier: one SSD flush
    vol.snapshot("v1")          # log-structured snapshots (paper §3.6)
    clone = LSVDVolume.clone(store, "vd", "vd2", DiskImage(8 << 20))

See README.md for the architecture overview, DESIGN.md for the paper-to-
module map, and EXPERIMENTS.md for the reproduced evaluation results.
"""

from repro.core import LSVDConfig, LSVDVolume
from repro.core.errors import (
    CacheFullError,
    CorruptRecordError,
    LSVDError,
    RecoveryError,
    SnapshotInUseError,
)
from repro.core.replication import Replicator
from repro.objstore import InMemoryObjectStore

__version__ = "1.0.0"

__all__ = [
    "CacheFullError",
    "CorruptRecordError",
    "InMemoryObjectStore",
    "LSVDConfig",
    "LSVDError",
    "LSVDVolume",
    "RecoveryError",
    "Replicator",
    "SnapshotInUseError",
    "__version__",
]
