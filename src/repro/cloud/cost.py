"""Price model for §4.9 (Deployability).

The paper's argument: LSVD's peak random-I/O rate on an EC2 instance with
local NVMe plus S3 approaches EBS's maximum provisioned-IOPS tier, but EBS
charges for *provisioned* IOPS around the clock (50K IOPS ≈ $3,250/month
on io1 at 2022 list prices), while LSVD pays only S3 storage plus
per-request fees that scale with actual use — a few dollars a month for
bursty workloads, because batching turns thousands of client writes into
a single S3 PUT.

Prices are 2022 us-east-1 list prices (the paper's experiments ran in
us-east-1).
"""

from __future__ import annotations

from dataclasses import dataclass

SECONDS_PER_MONTH = 30 * 24 * 3600


@dataclass(frozen=True)
class EBSPricing:
    """AWS EBS io1 provisioned-IOPS volume (2022 us-east-1)."""

    per_iops_month: float = 0.065
    per_gb_month: float = 0.125


@dataclass(frozen=True)
class S3Pricing:
    """AWS S3 standard (2022 us-east-1)."""

    per_gb_month: float = 0.023
    per_1k_put: float = 0.005
    per_1k_get: float = 0.0004


@dataclass(frozen=True)
class EC2Pricing:
    """m5d.xlarge on-demand (included for completeness; the paper's
    comparison is volume-vs-volume, the instance exists either way)."""

    per_hour: float = 0.226


def ebs_monthly_cost(
    provisioned_iops: int, size_gb: float, pricing: EBSPricing = EBSPricing()
) -> float:
    """Monthly cost of an EBS io1 volume: you pay IOPS whether used or not."""
    if provisioned_iops < 0 or size_gb < 0:
        raise ValueError("negative inputs")
    return provisioned_iops * pricing.per_iops_month + size_gb * pricing.per_gb_month


def lsvd_monthly_cost(
    size_gb: float,
    write_iops: float,
    write_size: int = 16 * 1024,
    batch_size: int = 8 << 20,
    read_iops: float = 0.0,
    read_hit_rate: float = 0.95,
    duty_cycle: float = 0.01,
    gc_waf: float = 1.2,
    ec_expansion: float = 1.0,
    pricing: S3Pricing = S3Pricing(),
) -> float:
    """Monthly cost of an LSVD volume on S3.

    ``duty_cycle`` is the fraction of the month the volume actually runs
    at ``write_iops``/``read_iops``; batching divides write requests by
    ``batch_size / write_size``; the local cache absorbs ``read_hit_rate``
    of reads.  GC costs extra PUTs (``gc_waf``); erasure coding or
    versioning expansion can be folded into ``ec_expansion``.
    """
    if not 0 <= duty_cycle <= 1:
        raise ValueError("duty_cycle must be within [0, 1]")
    active_seconds = SECONDS_PER_MONTH * duty_cycle
    client_bytes = write_iops * write_size * active_seconds
    backend_bytes = client_bytes * gc_waf
    puts = backend_bytes / batch_size
    misses = read_iops * (1.0 - read_hit_rate) * active_seconds
    storage = size_gb * ec_expansion * pricing.per_gb_month
    requests = puts / 1000 * pricing.per_1k_put + misses / 1000 * pricing.per_1k_get
    return storage + requests


def breakeven_duty_cycle(
    provisioned_iops: int,
    size_gb: float,
    write_size: int = 16 * 1024,
    batch_size: int = 8 << 20,
    gc_waf: float = 1.2,
    ebs: EBSPricing = EBSPricing(),
    s3: S3Pricing = S3Pricing(),
) -> float:
    """Duty cycle at which LSVD's request costs reach the EBS bill.

    Above 1.0 means LSVD is cheaper even running flat-out all month.
    """
    ebs_cost = ebs_monthly_cost(provisioned_iops, size_gb, ebs)
    full = lsvd_monthly_cost(
        size_gb,
        provisioned_iops,
        write_size=write_size,
        batch_size=batch_size,
        duty_cycle=1.0,
        gc_waf=gc_waf,
        pricing=s3,
    )
    base = lsvd_monthly_cost(
        size_gb,
        provisioned_iops,
        write_size=write_size,
        batch_size=batch_size,
        duty_cycle=0.0,
        gc_waf=gc_waf,
        pricing=s3,
    )
    variable = full - base
    if variable <= 0:
        return float("inf")
    return (ebs_cost - base) / variable
