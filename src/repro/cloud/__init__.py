"""Cloud deployability cost model (§4.9)."""

from repro.cloud.cost import (
    EBSPricing,
    EC2Pricing,
    S3Pricing,
    ebs_monthly_cost,
    lsvd_monthly_cost,
)

__all__ = [
    "EBSPricing",
    "EC2Pricing",
    "S3Pricing",
    "ebs_monthly_cost",
    "lsvd_monthly_cost",
]
