"""Miss-ratio curves for cache sizing.

The paper sizes its read cache ("a large cache can eliminate all reads",
§1) and takes its traces from the CloudPhysics corpus, whose companion
paper (SHARDS, FAST'15) popularised cheap miss-ratio-curve construction.
This module computes exact LRU miss-ratio curves from block traces via
reuse distances — small-scale, no sampling — so users can answer "how
big must the cache SSD be for this workload?" before provisioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


class _ReuseDistanceTree:
    """Fenwick tree over access recency for O(log n) reuse distances."""

    def __init__(self, capacity: int):
        self._tree = [0] * (capacity + 1)
        self._capacity = capacity

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self._capacity:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        i = index + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total


@dataclass
class MissRatioCurve:
    """LRU miss ratio as a function of cache size (in blocks)."""

    block_size: int
    total_accesses: int
    cold_misses: int
    #: histogram: reuse distance (in distinct blocks) -> access count
    reuse_histogram: Dict[int, int]

    def miss_ratio(self, cache_blocks: int) -> float:
        """Miss ratio for an LRU cache holding ``cache_blocks`` blocks."""
        if self.total_accesses == 0:
            return 0.0
        hits = sum(
            count
            for distance, count in self.reuse_histogram.items()
            if distance < cache_blocks
        )
        return 1.0 - hits / self.total_accesses

    def curve(self, sizes: Sequence[int]) -> List[Tuple[int, float]]:
        return [(size, self.miss_ratio(size)) for size in sizes]

    def working_set_blocks(self, target_miss_ratio: float = 0.05) -> int:
        """Smallest cache (blocks) achieving the target miss ratio.

        The cold-miss floor may make the target unreachable; then the
        full footprint is returned.
        """
        footprint = len(self.reuse_histogram) and (
            max(self.reuse_histogram) + 1
        )
        floor = self.cold_misses / self.total_accesses if self.total_accesses else 0
        if target_miss_ratio < floor:
            return max(footprint, 1)
        lo, hi = 1, max(footprint, 1)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.miss_ratio(mid) <= target_miss_ratio:
                hi = mid
            else:
                lo = mid + 1
        return lo


def compute_mrc(
    accesses: Iterable[Tuple[int, int]], block_size: int = 4096
) -> MissRatioCurve:
    """Compute the exact LRU miss-ratio curve of an (offset, length) trace.

    Accesses are split into aligned blocks; the reuse distance of each
    access is the number of *distinct* blocks touched since its previous
    access (the classic Mattson stack distance).
    """
    last_position: Dict[int, int] = {}  # block -> timestamp of last access
    timestamps: List[int] = []  # position -> live marker via tree
    histogram: Dict[int, int] = {}
    total = cold = clock = 0

    blocks_stream: List[int] = []
    for offset, length in accesses:
        first = offset // block_size
        last = (offset + max(length, 1) - 1) // block_size
        for block in range(first, last + 1):
            blocks_stream.append(block)

    tree = _ReuseDistanceTree(len(blocks_stream) + 1)
    for block in blocks_stream:
        total += 1
        prev = last_position.get(block)
        if prev is None:
            cold += 1
        else:
            distance = tree.prefix_sum(clock) - tree.prefix_sum(prev)
            histogram[distance] = histogram.get(distance, 0) + 1
            tree.add(prev, -1)
        tree.add(clock, 1)
        last_position[block] = clock
        clock += 1

    return MissRatioCurve(
        block_size=block_size,
        total_accesses=total,
        cold_misses=cold,
        reuse_histogram=histogram,
    )
