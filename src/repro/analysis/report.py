"""Plain-text tables matching the paper's figures and tables.

Each benchmark prints the same rows/series the paper reports, so the
output of ``pytest benchmarks/ --benchmark-only -s`` can be laid next to
the published figures for comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024
    return f"{n:.1f}TiB"


def format_rate(bytes_per_sec: float) -> str:
    return f"{bytes_per_sec / 1e6:.1f}MB/s"


class Table:
    """A fixed-width text table with a caption."""

    def __init__(self, caption: str, columns: Sequence[str]):
        self.caption = caption
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError("cell count does not match columns")
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.caption, ""]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")


def registry_table(registry, caption: str = "metrics") -> Table:
    """One row per registered metric, sorted by name (repro.obs surface).

    Counters and gauges render their scalar value; histograms render the
    count/mean/p50/p95/p99/max summary so latency tails (Figure 7) are
    visible without an exporter round-trip.
    """
    from repro.obs import Histogram

    table = Table(caption, ["metric", "kind", "value", "p50", "p95", "p99", "max"])
    for metric in registry.metrics():
        if isinstance(metric, Histogram):
            table.add(
                metric.name,
                "histogram",
                f"n={metric.count} mean={metric.mean:.6g}",
                f"{metric.percentile(50):.6g}",
                f"{metric.percentile(95):.6g}",
                f"{metric.percentile(99):.6g}",
                f"{metric.max if metric.max is not None else 0:.6g}",
            )
        else:
            value = metric.value
            shown = str(int(value)) if float(value).is_integer() else f"{value:.6g}"
            table.add(metric.name, metric.kind, shown, "", "", "", "")
    return table


def size_histogram_table(
    caption: str, histograms: Dict[str, Dict[int, int]], buckets: Optional[List[int]] = None
) -> Table:
    """Figure 14-style table: bytes written per I/O-size bucket."""
    if buckets is None:
        keys = set()
        for hist in histograms.values():
            keys.update(hist)
        buckets = sorted(keys)
    table = Table(caption, ["IO size", *histograms.keys()])
    for bucket in buckets:
        table.add(
            format_bytes(bucket),
            *(format_bytes(h.get(bucket, 0)) for h in histograms.values()),
        )
    return table
