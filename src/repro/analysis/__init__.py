"""Result formatting and summarisation for the benchmark harness."""

from repro.analysis.report import (
    Table,
    format_bytes,
    format_rate,
    size_histogram_table,
)

__all__ = ["Table", "format_bytes", "format_rate", "size_histogram_table"]
