"""Synthetic stand-ins for the CloudPhysics trace corpus (Table 5, §4.6).

The paper simulates LSVD's batching and garbage collection on nine
week-long VM block traces from the (proprietary) CloudPhysics corpus.  We
cannot ship those traces, so each row of Table 5 gets a synthetic
generator whose first-order statistics — total volume written, footprint,
access skew, sequential run behaviour, and short-horizon overwrite rate —
are chosen to land in the same qualitative regime the paper reports:

* w10/w31/w05: high-volume, skewed, hot-set rewrites -> WAF near 1.0
* w04: huge volume over a big footprint -> moderate WAF (~1.4-1.5)
* w66/w59: low-speed traces, wide spread -> the worst WAF (~1.6-2.0)
* w41/w66: heavy short-horizon overwrite -> big merge-ratio wins
* w01: many tiny scattered writes -> the largest extent map
* w07: small-volume scattered writes -> high WAF, small map

``scale`` shrinks footprint and volume together (default 1/64 of the
paper's sizes) so a full Table 5 run stays laptop-sized; WAF, merge ratio
and *relative* extent counts are scale-invariant to first order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class TraceSpec:
    """Statistical profile of one synthetic trace."""

    name: str
    written_gb: float  # total data written over the trace
    footprint_gb: float  # distinct address span touched
    hot_fraction: float  # fraction of footprint taking most writes
    hot_weight: float  # probability a write goes to the hot set
    seq_run_mean: float  # mean sequential run length (in writes)
    mean_write_kb: float
    #: probability that a write immediately re-targets a very recent write
    #: (drives intra-batch coalescing, i.e. Table 5's merge ratio)
    overwrite_recent: float
    #: hot writes sweep the hot region cyclically (journal/log behaviour)
    #: instead of striking random pages; swept objects die wholesale, so
    #: garbage collection is nearly free (WAF ~1, the w10/w31/w05 regime)
    hot_sweep: bool = False


#: rows of Table 5 (ordered as in the paper).  A ``hot_fraction`` of 1.0
#: means updates spread uniformly over the footprint — diffuse garbage
#: that forces the collector to copy mostly-live objects, the regime the
#: paper's highest-WAF (low-speed) traces w66/w59/w07 sit in.
TRACE_PRESETS: Dict[str, TraceSpec] = {
    "w10": TraceSpec("w10", 484, 40, 0.25, 0.95, 8.0, 16, 0.01, hot_sweep=True),
    "w04": TraceSpec("w04", 1786, 120, 0.30, 0.75, 4.0, 16, 0.20, hot_sweep=True),
    "w66": TraceSpec("w66", 49, 12, 1.0, 0.0, 1.5, 8, 0.55),
    "w01": TraceSpec("w01", 272, 100, 0.50, 0.55, 1.0, 4, 0.10),
    "w07": TraceSpec("w07", 85, 25, 1.0, 0.0, 1.2, 8, 0.06),
    "w31": TraceSpec("w31", 321, 25, 0.25, 0.98, 6.0, 16, 0.02, hot_sweep=True),
    "w59": TraceSpec("w59", 60, 15, 1.0, 0.0, 1.5, 8, 0.14),
    "w41": TraceSpec("w41", 127, 40, 0.30, 0.70, 2.0, 8, 0.70),
    "w05": TraceSpec("w05", 389, 30, 0.25, 0.97, 8.0, 16, 0.0, hot_sweep=True),
}


class CloudPhysicsTrace:
    """Generator producing (lba, length) writes for one trace profile."""

    def __init__(self, spec: TraceSpec, scale: float = 1 / 64, seed: int = 0):
        self.spec = spec
        self.scale = scale
        self.seed = seed
        self.volume_size = max(int(spec.footprint_gb * GiB * scale), 16 * MiB)
        self.total_bytes = max(int(spec.written_gb * GiB * scale), 16 * MiB)

    def writes(self) -> Iterator[Tuple[int, int]]:
        """Yield (offset, length) until ``total_bytes`` have been written."""
        spec = self.spec
        rng = random.Random(self.seed)
        write_size = int(spec.mean_write_kb * KiB) // 4096 * 4096 or 4096
        hot_span = max(int(self.volume_size * spec.hot_fraction), write_size)
        recent: list = []
        written = 0
        sweep_cursor = 0
        while written < self.total_bytes:
            if recent and rng.random() < spec.overwrite_recent:
                offset = recent[rng.randrange(len(recent))]
            elif rng.random() < spec.hot_weight:
                if spec.hot_sweep:
                    offset = sweep_cursor % hot_span // 4096 * 4096
                else:
                    offset = rng.randrange(0, hot_span // 4096) * 4096
            else:
                offset = rng.randrange(0, self.volume_size // 4096) * 4096
            from_sweep = spec.hot_sweep and offset == sweep_cursor % hot_span // 4096 * 4096
            run = max(1, int(rng.expovariate(1.0 / spec.seq_run_mean)))
            for i in range(run):
                if offset + write_size > self.volume_size:
                    break
                yield offset, write_size
                recent.append(offset)
                if len(recent) > 512:
                    recent.pop(0)
                written += write_size
                offset += write_size
                if from_sweep:
                    sweep_cursor += write_size
                if written >= self.total_bytes:
                    break

    def label(self) -> str:
        return f"{self.spec.name} (scale {self.scale:.4g})"
