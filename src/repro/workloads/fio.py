"""fio-style microbenchmark jobs (§4.2.1, §4.3).

The paper's grid: rw in {randwrite, randread, write, read}, block size in
{4 KiB, 16 KiB, 64 KiB}, queue depth in {4, 16, 32}, 120-second runs on an
80 GiB volume.  A :class:`FioJob` yields an endless op stream; the timed
runtime issues ops keeping ``iodepth`` of them outstanding.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.workloads.base import FLUSH, READ, WRITE, IOOp

_MODES = {"randwrite", "randread", "write", "read", "randrw"}


@dataclass
class FioJob:
    """One fio job definition."""

    rw: str = "randwrite"
    bs: int = 4096
    iodepth: int = 16
    size: int = 80 << 30  # volume span the job touches
    seed: int = 0
    rwmixread: float = 0.5  # for randrw
    fsync_every: int = 0  # issue a FLUSH every N writes (0 = never)
    #: the kernel block layer merges queued adjacent requests up to this
    #: many bytes (0 disables); only sequential workloads benefit
    elevator_merge_bytes: int = 512 * 1024

    def __post_init__(self) -> None:
        if self.rw not in _MODES:
            raise ValueError(f"unknown rw mode {self.rw!r}")
        if self.bs <= 0 or self.bs % 512:
            raise ValueError("bs must be a positive multiple of 512")
        if self.size < self.bs:
            raise ValueError("size smaller than one block")

    def ops(self) -> Iterator[IOOp]:
        """Endless operation stream."""
        rng = random.Random(self.seed)
        blocks = self.size // self.bs
        cursor = 0
        writes_since_sync = 0
        while True:
            if self.rw in ("write", "read"):
                offset = (cursor % blocks) * self.bs
                cursor += 1
            else:
                offset = rng.randrange(blocks) * self.bs
            if self.rw in ("randwrite", "write"):
                kind = WRITE
            elif self.rw in ("randread", "read"):
                kind = READ
            else:
                kind = READ if rng.random() < self.rwmixread else WRITE
            yield IOOp(kind, offset, self.bs)
            if kind == WRITE and self.fsync_every:
                writes_since_sync += 1
                if writes_since_sync >= self.fsync_every:
                    writes_since_sync = 0
                    yield IOOp(FLUSH)

    def label(self) -> str:
        return f"{self.rw}-bs{self.bs // 1024}K-qd{self.iodepth}"
