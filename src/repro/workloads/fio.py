"""fio-style microbenchmark jobs (§4.2.1, §4.3).

The paper's grid: rw in {randwrite, randread, write, read}, block size in
{4 KiB, 16 KiB, 64 KiB}, queue depth in {4, 16, 32}, 120-second runs on an
80 GiB volume.  A :class:`FioJob` yields an endless op stream; the timed
runtime issues ops keeping ``iodepth`` of them outstanding.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.workloads.base import FLUSH, READ, WRITE, IOOp

_MODES = {"randwrite", "randread", "write", "read", "randrw"}

_DISTRIBUTIONS = {"uniform", "zipfian", "hotspot"}

#: Knuth multiplicative hash, used to scatter zipfian ranks over the
#: address space so the hot set is not one contiguous run
_SCRAMBLE = 2654435761


def _zeta(n: int, theta: float) -> float:
    """Generalised harmonic number ``sum(i**-theta for i in 1..n)``.

    Exact for small ``n``; for large address spaces the tail is
    approximated by the midpoint-rule integral, which is deterministic
    and accurate to ~1e-7 at theta=0.99 — the sampler only needs a
    stable normaliser, not a mathematically exact one.
    """
    head = min(n, 10_000)
    total = sum(i ** -theta for i in range(1, head + 1))
    if n > head:
        total += ((n + 0.5) ** (1.0 - theta) - (head + 0.5) ** (1.0 - theta)) / (
            1.0 - theta
        )
    return total


class _ZipfSampler:
    """YCSB-style zipfian rank sampler (Gray et al., SIGMOD'94).

    Draws ranks in ``[0, n)`` with P(rank=k) proportional to
    ``(k+1)**-theta``; rank 0 is the hottest.  Ranks are scrambled by a
    multiplicative hash before use so hot blocks spread across the
    volume instead of clustering at offset zero.
    """

    def __init__(self, n: int, theta: float):
        if not 0.0 < theta < 1.0:
            raise ValueError("zipf_theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self.zetan = _zeta(n, theta)
        self.alpha = 1.0 / (1.0 - theta)
        zeta2 = 1.0 + 0.5 ** theta
        self.eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - zeta2 / self.zetan)

    def rank(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return min(
            self.n - 1, int(self.n * (self.eta * u - self.eta + 1.0) ** self.alpha)
        )

    def block(self, rng: random.Random) -> int:
        return (self.rank(rng) * _SCRAMBLE) % self.n


@dataclass
class FioJob:
    """One fio job definition."""

    rw: str = "randwrite"
    bs: int = 4096
    iodepth: int = 16
    size: int = 80 << 30  # volume span the job touches
    seed: int = 0
    rwmixread: float = 0.5  # for randrw
    fsync_every: int = 0  # issue a FLUSH every N writes (0 = never)
    #: the kernel block layer merges queued adjacent requests up to this
    #: many bytes (0 disables); only sequential workloads benefit
    elevator_merge_bytes: int = 512 * 1024
    #: offset distribution for the random modes: ``"uniform"`` (the
    #: paper's fio grid), ``"zipfian"`` (YCSB-style skew — exercises the
    #: hot/cold separation of the placement layer), or ``"hotspot"``
    #: (``hotspot_rate`` of ops land in the first ``hotspot_frac`` of
    #: the span).  Sequential modes ignore it.
    distribution: str = "uniform"
    zipf_theta: float = 0.99
    hotspot_frac: float = 0.1
    hotspot_rate: float = 0.9

    def __post_init__(self) -> None:
        if self.rw not in _MODES:
            raise ValueError(f"unknown rw mode {self.rw!r}")
        if self.bs <= 0 or self.bs % 512:
            raise ValueError("bs must be a positive multiple of 512")
        if self.size < self.bs:
            raise ValueError("size smaller than one block")
        if self.distribution not in _DISTRIBUTIONS:
            raise ValueError(f"unknown distribution {self.distribution!r}")
        if not 0.0 < self.hotspot_frac < 1.0:
            raise ValueError("hotspot_frac must be in (0, 1)")
        if not 0.0 <= self.hotspot_rate <= 1.0:
            raise ValueError("hotspot_rate must be in [0, 1]")

    def ops(self) -> Iterator[IOOp]:
        """Endless operation stream."""
        rng = random.Random(self.seed)
        blocks = self.size // self.bs
        zipf = (
            _ZipfSampler(blocks, self.zipf_theta)
            if self.distribution == "zipfian"
            else None
        )
        hot_blocks = max(1, int(blocks * self.hotspot_frac))
        cursor = 0
        writes_since_sync = 0
        while True:
            if self.rw in ("write", "read"):
                offset = (cursor % blocks) * self.bs
                cursor += 1
            elif zipf is not None:
                offset = zipf.block(rng) * self.bs
            elif self.distribution == "hotspot":
                if rng.random() < self.hotspot_rate:
                    offset = rng.randrange(hot_blocks) * self.bs
                else:
                    offset = rng.randrange(blocks) * self.bs
            else:
                offset = rng.randrange(blocks) * self.bs
            if self.rw in ("randwrite", "write"):
                kind = WRITE
            elif self.rw in ("randread", "read"):
                kind = READ
            else:
                kind = READ if rng.random() < self.rwmixread else WRITE
            yield IOOp(kind, offset, self.bs)
            if kind == WRITE and self.fsync_every:
                writes_since_sync += 1
                if writes_since_sync >= self.fsync_every:
                    writes_since_sync = 0
                    yield IOOp(FLUSH)

    def label(self) -> str:
        base = f"{self.rw}-bs{self.bs // 1024}K-qd{self.iodepth}"
        if self.distribution != "uniform":
            base += f"-{self.distribution}"
        return base
