"""Block-level models of the three Filebench personalities (§4.2.2).

The paper ran Filebench over ext4 and reported the resulting block-level
behaviour in Table 3; we generate block traces directly, calibrated to
those numbers:

==========  ==================  ===================  =================
workload    writes per sync     bytes per sync       mean write size*
==========  ==================  ===================  =================
fileserver  12865               579 MiB              94 KiB
oltp        42.7                199 KiB              4.7 KiB
varmail     7.6                 131 KiB              27 KiB
==========  ==================  ===================  =================

(* after merging consecutive sequential writes)

The generators also reproduce the *character* of each personality that the
evaluation depends on: fileserver streams large appends (barely any
barriers), oltp writes tiny random records with constant fsyncs plus a
sequential redo log, and varmail constantly creates/deletes small files —
re-writing the same space and generating the garbage that drives Figure 15.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator

from repro.workloads.base import FLUSH, READ, WRITE, IOOp

KiB = 1024
MiB = 1024 * 1024


@dataclass
class FilebenchModel:
    """A block-level Filebench personality."""

    name: str
    volume_size: int
    #: target statistics (Table 3)
    writes_between_syncs: float
    mean_file_writes: int  # sequential writes merged into one burst
    write_unit: int
    read_fraction: float
    #: fraction of write bursts that overwrite previously written space
    overwrite_fraction: float
    log_append_unit: int = 0  # oltp redo log appends
    #: mean number of reads issued per burst (oltp is read-heavy)
    reads_per_burst: float = 0.0

    def ops(self, seed: int = 0) -> Iterator[IOOp]:
        rng = random.Random(seed)
        # file slots: fixed-size regions whose re-use models create/delete
        slot_size = self.mean_file_writes * self.write_unit
        n_slots = max(64, self.volume_size // max(slot_size, 1) // 2)
        used_slots: list = []
        log_cursor = 0
        log_base = self.volume_size - 64 * MiB if self.log_append_unit else 0
        writes_since_sync = 0.0
        sync_target = self._next_sync_target(rng)
        while True:
            burst = max(1, int(rng.expovariate(1.0 / self.mean_file_writes)))
            if used_slots and rng.random() < self.overwrite_fraction:
                slot = rng.choice(used_slots)
            else:
                slot = rng.randrange(n_slots)
                used_slots.append(slot)
                if len(used_slots) > n_slots:
                    used_slots.pop(0)
            base = slot * slot_size
            for i in range(burst):
                offset = base + (i % self.mean_file_writes) * self.write_unit
                if offset + self.write_unit > self.volume_size:
                    break
                yield IOOp(WRITE, offset, self.write_unit)
                writes_since_sync += 1
                if self.log_append_unit:
                    yield IOOp(
                        WRITE,
                        log_base + log_cursor % (32 * MiB),
                        self.log_append_unit,
                    )
                    log_cursor += self.log_append_unit
                    writes_since_sync += 1
                if writes_since_sync >= sync_target:
                    yield IOOp(FLUSH)
                    writes_since_sync = 0
                    sync_target = self._next_sync_target(rng)
            n_reads = 0
            if used_slots and rng.random() < self.read_fraction:
                n_reads = 1
            if used_slots and self.reads_per_burst > 0:
                n_reads = max(
                    n_reads, int(rng.expovariate(1.0 / self.reads_per_burst))
                )
            for _ in range(n_reads):
                read_slot = rng.choice(used_slots)
                yield IOOp(READ, read_slot * slot_size, min(slot_size, 128 * KiB))

    def _next_sync_target(self, rng: random.Random) -> float:
        # keep the long-run mean equal to the calibrated value
        return max(1.0, rng.expovariate(1.0 / self.writes_between_syncs))


def fileserver(volume_size: int = 8 << 30) -> FilebenchModel:
    """Network file server: big streaming appends, rare barriers.

    Table 3 implies ~46 KiB raw block writes (579 MiB / 12865 writes)
    merging to ~94 KiB sequential runs: two 48 KiB appends per burst.
    """
    return FilebenchModel(
        name="fileserver",
        volume_size=volume_size,
        writes_between_syncs=12865,
        mean_file_writes=2,  # 2 x 48 KiB appends merge to ~96 KiB
        write_unit=48 * KiB,
        read_fraction=0.3,
        overwrite_fraction=0.3,
    )


def oltp(volume_size: int = 8 << 30) -> FilebenchModel:
    """Database: tiny random writes + redo log, fsync every ~43 writes."""
    return FilebenchModel(
        name="oltp",
        volume_size=volume_size,
        writes_between_syncs=42.7,
        mean_file_writes=1,
        write_unit=4 * KiB,
        read_fraction=0.5,
        overwrite_fraction=0.9,
        log_append_unit=4 * KiB,
        reads_per_burst=2.0,  # databases read far more than they write
    )


def varmail(volume_size: int = 8 << 30) -> FilebenchModel:
    """Mail server: create/delete small files, fsync every ~7.6 writes."""
    return FilebenchModel(
        name="varmail",
        volume_size=volume_size,
        writes_between_syncs=7.6,
        mean_file_writes=2,  # 2 x 16 KiB per small file
        write_unit=16 * KiB,
        read_fraction=0.4,
        overwrite_fraction=0.8,
    )


FILEBENCH_MODELS: Dict[str, callable] = {
    "fileserver": fileserver,
    "oltp": oltp,
    "varmail": varmail,
}
