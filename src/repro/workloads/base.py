"""Common workload types and block-trace statistics.

A workload is an iterable of :class:`IOOp` — reads, writes, and commit
barriers ("flush"), optionally with client think time.  The statistics
helper reproduces the measurements of the paper's Table 3: writes and
bytes between successive commit barriers, and the mean write size *after
merging consecutive sequential writes* (the footnote-starred column).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

READ = "read"
WRITE = "write"
FLUSH = "flush"


@dataclass(frozen=True)
class IOOp:
    """One block-level operation."""

    kind: str  # read | write | flush
    offset: int = 0
    length: int = 0
    think_time: float = 0.0  # client-side delay before issuing


@dataclass
class TraceStats:
    """Block-level behaviour between commit barriers (Table 3)."""

    writes: int = 0
    reads: int = 0
    barriers: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    merged_writes: int = 0  # after merging consecutive sequential writes

    @property
    def writes_between_syncs(self) -> float:
        return self.writes / self.barriers if self.barriers else float("inf")

    @property
    def bytes_between_syncs(self) -> float:
        return self.bytes_written / self.barriers if self.barriers else float("inf")

    @property
    def mean_write_size(self) -> float:
        """Mean write size after sequential merging (Table 3, starred)."""
        if self.merged_writes == 0:
            return 0.0
        return self.bytes_written / self.merged_writes


def collect_stats(ops: Iterable[IOOp]) -> TraceStats:
    """Compute Table 3-style statistics from an op stream."""
    stats = TraceStats()
    last_write_end = None
    for op in ops:
        if op.kind == WRITE:
            stats.writes += 1
            stats.bytes_written += op.length
            if op.offset != last_write_end:
                stats.merged_writes += 1
            last_write_end = op.offset + op.length
        elif op.kind == READ:
            stats.reads += 1
            stats.bytes_read += op.length
        elif op.kind == FLUSH:
            stats.barriers += 1
            last_write_end = None
    return stats


def take(ops: Iterator[IOOp], n: int) -> List[IOOp]:
    """Materialise the first ``n`` ops of a potentially endless stream."""
    out = []
    for op in ops:
        out.append(op)
        if len(out) >= n:
            break
    return out
