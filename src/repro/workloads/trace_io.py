"""Block-trace serialisation: record, save, load, and replay op streams.

A tiny interchange format so workloads can be captured once and replayed
against any stack (pure volume, timed runtime, gcsim) or shared between
machines.  One line per operation::

    W <offset> <length>
    R <offset> <length>
    F

Comment lines start with '#'.  The format is deliberately greppable.
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterable, Iterator, List, Union

from repro.workloads.base import FLUSH, READ, WRITE, IOOp

_KIND_TO_CODE = {WRITE: "W", READ: "R", FLUSH: "F"}
_CODE_TO_KIND = {v: k for k, v in _KIND_TO_CODE.items()}


def dump_trace(ops: Iterable[IOOp], destination: Union[str, Path, IO[str]]) -> int:
    """Write ops to a file (or file-like); returns the op count."""
    own = isinstance(destination, (str, Path))
    fh = open(destination, "w") if own else destination
    count = 0
    try:
        fh.write("# repro block trace v1\n")
        for op in ops:
            code = _KIND_TO_CODE[op.kind]
            if op.kind == FLUSH:
                fh.write("F\n")
            else:
                fh.write(f"{code} {op.offset} {op.length}\n")
            count += 1
    finally:
        if own:
            fh.close()
    return count


def load_trace(source: Union[str, Path, IO[str]]) -> Iterator[IOOp]:
    """Stream ops back from a trace file (or file-like)."""
    own = isinstance(source, (str, Path))
    fh = open(source) if own else source
    try:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            code = parts[0].upper()
            if code == "F":
                yield IOOp(FLUSH)
                continue
            if code not in _CODE_TO_KIND or len(parts) != 3:
                raise ValueError(f"bad trace line {lineno}: {line!r}")
            yield IOOp(_CODE_TO_KIND[code], int(parts[1]), int(parts[2]))
    finally:
        if own:
            fh.close()


class TraceRecorder:
    """Wrap a volume-like object, recording every operation it serves."""

    def __init__(self, volume):
        self._volume = volume
        self.ops: List[IOOp] = []

    def write(self, offset: int, data: bytes) -> None:
        self.ops.append(IOOp(WRITE, offset, len(data)))
        self._volume.write(offset, data)

    def read(self, offset: int, length: int) -> bytes:
        self.ops.append(IOOp(READ, offset, length))
        return self._volume.read(offset, length)

    def flush(self) -> None:
        self.ops.append(IOOp(FLUSH))
        self._volume.flush()

    def save(self, path: Union[str, Path]) -> int:
        return dump_trace(self.ops, path)


def replay_trace(ops: Iterable[IOOp], volume, fill_byte: int = 0xAB) -> int:
    """Apply a trace to a volume; writes carry deterministic filler.

    Returns the number of operations applied.
    """
    fill = bytes([fill_byte])
    count = 0
    for op in ops:
        if op.kind == WRITE:
            volume.write(op.offset, fill * op.length)
        elif op.kind == READ:
            volume.read(op.offset, op.length)
        else:
            volume.flush()
        count += 1
    return count
