"""Workload generators standing in for the paper's benchmark tools.

* :mod:`~repro.workloads.fio` — the fio microbenchmarks of §4.2/§4.3:
  random/sequential read/write grids over block size and queue depth.
* :mod:`~repro.workloads.filebench` — block-level models of the three
  Filebench personalities (fileserver, oltp, varmail), calibrated against
  the paper's own Table 3 block-trace statistics (writes and bytes between
  commit barriers, mean merged write size).
* :mod:`~repro.workloads.cloudphysics` — synthetic stand-ins for the nine
  CloudPhysics week-long VM traces of Table 5 (the corpus itself is
  proprietary), parameterised by footprint, skew, sequentiality and
  overwrite behaviour.
"""

from repro.workloads.base import IOOp, TraceStats, collect_stats
from repro.workloads.cloudphysics import TRACE_PRESETS, CloudPhysicsTrace, TraceSpec
from repro.workloads.filebench import (
    FILEBENCH_MODELS,
    FilebenchModel,
    fileserver,
    oltp,
    varmail,
)
from repro.workloads.fio import FioJob

__all__ = [
    "CloudPhysicsTrace",
    "FILEBENCH_MODELS",
    "FilebenchModel",
    "FioJob",
    "IOOp",
    "TRACE_PRESETS",
    "TraceSpec",
    "TraceStats",
    "collect_stats",
    "fileserver",
    "oltp",
    "varmail",
]
