"""Timed bcache-over-RBD stack (the paper's main comparison point).

Three behaviours dominate its performance signature:

* cache writes are **update-in-place** at B-tree-chosen locations — random
  at the device, so small writes run at the SSD's random-write rate
  instead of LSVD's sequential log rate (Figure 6);
* a commit barrier persists dirty B-tree metadata with **ordered**
  journal/node writes, each fenced by a device flush — several hundred
  microseconds per fsync, vs LSVD's single flush (Figure 8, varmail 4x);
* write-back **pauses while the client is active** and then destages
  dirty blocks one small replicated write at a time (Figure 11: ~25
  minutes to drain what LSVD drains in two).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.obs import Registry, bind_metrics, gauge_field, metric_field
from repro.runtime.machine import ClientMachine
from repro.runtime.params import BcacheParams
from repro.runtime.rbd import RBDRuntime
from repro.sim.engine import Event, Simulator
from repro.workloads.base import FLUSH, READ, WRITE, IOOp


class BcacheRBDRuntime:
    """A simulated bcache write-back cache over an RBD volume."""

    BLOCK = 4096

    # statistics (registry-backed; see repro.obs)
    dirty_bytes = gauge_field("bcache.dirty_bytes")
    client_writes = metric_field("bcache.client_writes")
    client_reads = metric_field("bcache.client_reads")
    client_bytes_written = metric_field("bcache.client_bytes_written")
    barriers = metric_field("bcache.barriers")
    metadata_writes = metric_field("bcache.metadata_writes")
    destaged_writes = metric_field("bcache.destaged_writes")
    destaged_bytes = metric_field("bcache.destaged_bytes")

    def __init__(
        self,
        sim: Simulator,
        machine: ClientMachine,
        backing: RBDRuntime,
        cache_size: int,
        params: Optional[BcacheParams] = None,
        name: str = "bcache",
        read_hit_rate: float = 1.0,
        obs: Optional[Registry] = None,
    ):
        self.sim = sim
        self.machine = machine
        self.backing = backing
        self.params = params or BcacheParams()
        self.name = name
        self.cache_capacity = cache_size
        self.read_hit_rate = read_hit_rate
        #: share the backing RBD volume's registry unless told otherwise
        self.obs = obs or getattr(backing, "obs", None) or Registry()
        bind_metrics(self)

        self._space_waiters: Deque[Event] = deque()
        self._inflight_writes = 0
        self._drain_waiters: Deque[Event] = deque()
        self._barrier_active = False
        self._gate_waiters: Deque[Event] = deque()
        self._writes_since_barrier = 0
        self._last_client_op = -1e9
        self._dirty_lbas: Deque[int] = deque()  # destaged in sorted order
        self._dirty_set = set()
        self._rng_state = 777

        sim.process(self._writeback_daemon(), name=f"{name}-writeback")

    # ------------------------------------------------------------------
    def submit(self, op: IOOp) -> Event:
        done = self.sim.event()
        if op.kind == WRITE:
            self.sim.process(self._write(op, done), name=f"{self.name}-w")
        elif op.kind == READ:
            self.sim.process(self._read(op, done), name=f"{self.name}-r")
        elif op.kind == FLUSH:
            self.sim.process(self._barrier(done), name=f"{self.name}-f")
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")
        return done

    # ------------------------------------------------------------------
    def _write(self, op: IOOp, done: Event):
        # a commit barrier is an ordering point: new writes wait for it
        while self._barrier_active:
            gate = self.sim.event()
            self._gate_waiters.append(gate)
            yield gate
        self._last_client_op = self.sim.now
        self._inflight_writes += 1
        try:
            yield from self.machine.cpu_work(self.params.write_cpu)
            yield from self._wait_for_space(op.length)
            # update-in-place: the allocator scatters blocks over the device
            yield self.machine.ssd.write(self._scatter(op.offset), op.length)
            self.dirty_bytes += op.length
            for block in range(op.offset // self.BLOCK, (op.offset + op.length + self.BLOCK - 1) // self.BLOCK):
                if block not in self._dirty_set:
                    self._dirty_set.add(block)
                    self._dirty_lbas.append(block)
            self._writes_since_barrier += 1
            self.client_writes += 1
            self.client_bytes_written += op.length
            self._last_client_op = self.sim.now
            done.succeed()
        finally:
            self._inflight_writes -= 1
            if self._inflight_writes == 0:
                while self._drain_waiters:
                    self._drain_waiters.popleft().succeed()

    def _read(self, op: IOOp, done: Event):
        self._last_client_op = self.sim.now
        yield from self.machine.cpu_work(self.params.read_cpu)
        if self._chance() < self.read_hit_rate:
            yield self.machine.ssd.read(self._scatter(op.offset), op.length)
        else:
            miss = self.sim.event()
            yield from self.backing._read(op, miss)
            yield self.machine.ssd.write(self._scatter(op.offset), op.length)
        self.client_reads += 1
        self._last_client_op = self.sim.now
        done.succeed()

    def _barrier(self, done: Event):
        """Persist dirty B-tree metadata: ordered write+flush pairs."""
        self._barrier_active = True
        try:
            yield from self.machine.cpu_work(self.params.barrier_cpu)
            if self._inflight_writes:
                waiter = self.sim.event()
                self._drain_waiters.append(waiter)
                yield waiter
            if self._writes_since_barrier:
                # journal entry + btree path, each ordered by a flush
                # before the next write; the final flush below covers the
                # last one (same device event sequence: W F W F ... W F)
                for i in range(self.params.meta_writes_per_barrier):
                    if i:
                        yield self.machine.ssd.flush()
                    yield self.machine.ssd.write(
                        self._scatter(17 + i), self.params.meta_write_bytes
                    )
                    self.metadata_writes += 1
                self._writes_since_barrier = 0
            # every barrier path ends with a device FLUSH before the
            # caller is acknowledged (barrier-coalescing safety)
            yield self.machine.ssd.flush()
            self.barriers += 1
            self._last_client_op = self.sim.now
            done.succeed()
        finally:
            self._barrier_active = False
            while self._gate_waiters:
                self._gate_waiters.popleft().succeed()

    # ------------------------------------------------------------------
    def _writeback_daemon(self):
        """Destage dirty blocks — but only while the client is idle.

        Exception: above ~90 % dirty the cache must destage regardless
        (bcache's cutoff behaviour), otherwise a cache-full writer would
        wait forever; throughput then collapses to backend (RBD) speed,
        which is exactly what Figures 9-10 show.
        """
        while True:
            idle_for = self.sim.now - self._last_client_op
            pressure = self.dirty_bytes > 0.9 * self.cache_capacity
            if not self._dirty_lbas or (
                idle_for < self.params.idle_threshold and not pressure
            ):
                # daemon poll: background, so sim.run() can drain
                yield self.sim.timeout(self.params.idle_threshold, background=True)
                continue
            # bcache scans its btree: destage in LBA order, merging
            # contiguous dirty blocks into single backend writes and
            # keeping many of them in flight
            take = min(self.params.writeback_batch, len(self._dirty_lbas))
            batch = sorted(self._dirty_lbas.popleft() for _ in range(take))
            runs: list = []
            for block in batch:
                self._dirty_set.discard(block)
                if runs and runs[-1][0] + runs[-1][1] == block:
                    runs[-1][1] += 1
                else:
                    runs.append([block, 1])
            done_events = []
            for start, nblocks in runs:
                done_events.append(
                    self.sim.process(self._destage_run(start, nblocks))
                )
            for ev in done_events:
                yield ev

    def _destage_run(self, start_block: int, nblocks: int):
        nbytes = nblocks * self.BLOCK
        yield self.machine.ssd.read(self._scatter(start_block * self.BLOCK), nbytes)
        sink = self.sim.event()
        yield from self.backing._write(
            IOOp(WRITE, start_block * self.BLOCK, nbytes), sink
        )
        self.destaged_writes += 1
        self.destaged_bytes += nbytes
        self._release_space(nbytes)

    # ------------------------------------------------------------------
    def _wait_for_space(self, needed: int):
        while self.dirty_bytes + needed > self.cache_capacity:
            waiter = self.sim.event()
            self._space_waiters.append(waiter)
            yield waiter

    def _release_space(self, nbytes: int) -> None:
        self.dirty_bytes = max(0, self.dirty_bytes - nbytes)
        while self._space_waiters:
            self._space_waiters.popleft().succeed()

    def _chance(self) -> float:
        self._rng_state = (self._rng_state * 1103515245 + 12345) % (1 << 31)
        return self._rng_state / (1 << 31)

    @staticmethod
    def _scatter(offset: int) -> int:
        return (offset * 2654435761) % (1 << 38)
