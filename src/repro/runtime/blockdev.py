"""The benchmark driver: keep ``iodepth`` operations outstanding.

Mirrors fio's behaviour in the paper's experiments: N worker loops share
one operation stream, each submitting the next op as soon as its previous
one completes; results are reported as IOPS and MB/s over the measurement
window (after an optional warm-up).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.obs import Histogram
from repro.sim.engine import Simulator
from repro.workloads.base import FLUSH, IOOp
from repro.workloads.fio import FioJob


@dataclass
class FioResult:
    """Measured performance of one job.

    Per-op latencies feed a shared-bucket :class:`~repro.obs.Histogram`,
    so results report min/max and p50/p95/p99 (Figure 7's tail behaviour),
    not just a mean.
    """

    ops: int = 0
    bytes: int = 0
    flushes: int = 0
    duration: float = 0.0
    latency: Histogram = field(default_factory=lambda: Histogram("fio.latency_s"))

    @property
    def iops(self) -> float:
        return self.ops / self.duration if self.duration > 0 else 0.0

    @property
    def mbps(self) -> float:
        return self.bytes / self.duration / 1e6 if self.duration > 0 else 0.0

    @property
    def latency_sum(self) -> float:
        return self.latency.sum

    @property
    def mean_latency(self) -> float:
        return self.latency.sum / self.ops if self.ops else 0.0

    def latency_percentile(self, p: float) -> float:
        return self.latency.percentile(p)


class _MergingQueue:
    """Block-layer elevator: coalesce adjacent queued writes/reads.

    A single consumer position with one-op lookahead; adjacent same-kind
    operations merge up to ``limit`` bytes.  Random workloads are almost
    never adjacent and pass through untouched.
    """

    def __init__(self, stream: Iterator[IOOp], limit: int):
        self._stream = stream
        self._limit = limit
        self._pending: Optional[IOOp] = None

    def take(self) -> Optional[IOOp]:
        op = self._pending or self._next()
        self._pending = None
        if op is None or op.kind == FLUSH or self._limit <= 0:
            return op
        length = op.length
        while length < self._limit:
            nxt = self._next()
            if (
                nxt is None
                or nxt.kind != op.kind
                or nxt.offset != op.offset + length
                or length + nxt.length > self._limit
            ):
                self._pending = nxt
                break
            length += nxt.length
        if length == op.length:
            return op
        return IOOp(op.kind, op.offset, length)

    def _next(self) -> Optional[IOOp]:
        try:
            return next(self._stream)
        except StopIteration:
            return None


def run_fio(
    sim: Simulator,
    device,
    job: FioJob,
    duration: float,
    warmup: float = 0.0,
) -> FioResult:
    """Run one fio job against one device; returns the measured result."""
    [result] = run_jobs(sim, [(device, job)], duration, warmup)
    return result


def run_jobs(
    sim: Simulator,
    device_jobs: List[Tuple[object, FioJob]],
    duration: float,
    warmup: float = 0.0,
) -> List[FioResult]:
    """Run several (device, job) pairs concurrently on one simulator.

    This is the §4.5 multi-volume load-test shape: each pair gets its own
    ``iodepth`` workers; all share the simulated world (client machine,
    network, backend cluster).
    """
    start = sim.now
    end = start + duration
    measure_from = start + warmup
    results = [FioResult() for _ in device_jobs]

    for index, (device, job) in enumerate(device_jobs):
        # shared by this job's workers; wrapped in a merging queue so that
        # adjacent sequential requests coalesce like in the kernel block
        # layer (the paper's Table 3 sizes are post-merge for a reason)
        stream = _MergingQueue(job.ops(), getattr(job, "elevator_merge_bytes", 0))

        def worker(device=device, stream=stream, result=results[index], job=job):
            while sim.now < end:
                op = stream.take()
                if op is None:
                    return
                merged = max(1, op.length // job.bs) if op.kind != FLUSH else 1
                issued = sim.now
                yield device.submit(op)
                if sim.now >= measure_from and sim.now <= end:
                    if op.kind == FLUSH:
                        result.flushes += 1
                    else:
                        # a merged request completes `merged` client ops
                        result.ops += merged
                        result.bytes += op.length
                    result.latency.observe(sim.now - issued, count=merged)

        for _ in range(job.iodepth):
            sim.process(worker(), name=f"fio-{index}")

    sim.run(until=end)
    for result in results:
        result.duration = end - measure_from
    return results


def drive_ops(
    sim: Simulator,
    device,
    ops: Iterable[IOOp],
    iodepth: int = 16,
    duration: Optional[float] = None,
) -> FioResult:
    """Drive an arbitrary op stream (e.g. a Filebench model) at a depth.

    FLUSH operations act as barriers within a worker (matching how a file
    system serialises around fsync).
    """
    start = sim.now
    end = start + duration if duration is not None else None
    result = FioResult()
    stream = iter(ops)

    def worker():
        while end is None or sim.now < end:
            try:
                op = next(stream)
            except StopIteration:
                return
            issued = sim.now
            yield device.submit(op)
            if end is None or sim.now <= end:
                if op.kind == FLUSH:
                    result.flushes += 1
                else:
                    result.ops += 1
                    result.bytes += op.length
                result.latency.observe(sim.now - issued)

    for _ in range(iodepth):
        sim.process(worker(), name="drive")
    if end is None:
        sim.run()
        result.duration = sim.now - start
    else:
        sim.run(until=end)
        result.duration = end - start
    return result
