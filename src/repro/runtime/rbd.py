"""Timed uncached RBD client (§2.1, §4.3).

Every client write goes straight to the storage pool: network transfer,
OSD request processing, then the journal+data write pair at each of three
replicas.  Reads hit the primary replica.  Because the write is durable
when acknowledged, FLUSH is free — RBD's problem is never consistency,
only the six device I/Os behind every small write.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.rbd import MiB
from repro.cluster.cluster import StorageCluster
from repro.cluster.layouts import ReplicationLayout
from repro.obs import Registry, bind_metrics, metric_field
from repro.runtime.machine import ClientMachine
from repro.runtime.params import RBDParams
from repro.sim.engine import Event, Simulator
from repro.workloads.base import FLUSH, READ, WRITE, IOOp


class RBDRuntime:
    """A simulated RBD virtual disk (triple-replicated, journaled)."""

    # statistics (registry-backed; see repro.obs)
    client_writes = metric_field("rbd.client_writes")
    client_reads = metric_field("rbd.client_reads")
    client_bytes_written = metric_field("rbd.client_bytes_written")
    client_bytes_read = metric_field("rbd.client_bytes_read")

    def __init__(
        self,
        sim: Simulator,
        machine: ClientMachine,
        cluster: StorageCluster,
        layout: Optional[ReplicationLayout] = None,
        params: Optional[RBDParams] = None,
        name: str = "rbd",
        object_size: int = 4 * MiB,
        obs: Optional[Registry] = None,
    ):
        self.sim = sim
        self.machine = machine
        self.cluster = cluster
        self.layout = layout or ReplicationLayout()
        self.params = params or RBDParams()
        self.name = name
        self.object_size = object_size
        self.obs = obs if obs is not None else Registry()
        bind_metrics(self)

    def submit(self, op: IOOp) -> Event:
        done = self.sim.event()
        if op.kind == WRITE:
            self.sim.process(self._write(op, done), name=f"{self.name}-w")
        elif op.kind == READ:
            self.sim.process(self._read(op, done), name=f"{self.name}-r")
        elif op.kind == FLUSH:
            # replicated writes are durable on ack: barrier is a no-op
            done.succeed()
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")
        return done

    def _object_key(self, offset: int) -> str:
        return f"{self.name}.obj{offset // self.object_size:08d}"

    def _write(self, op: IOOp, done: Event):
        yield from self.machine.cpu_work(self.params.write_cpu)
        yield self.machine.network.send(op.length)
        yield self.sim.timeout(self.params.request_latency)
        yield self.layout.write(
            self.cluster,
            self._object_key(op.offset),
            op.offset % self.object_size,
            op.length,
        )
        self.client_writes += 1
        self.client_bytes_written += op.length
        done.succeed()

    def _read(self, op: IOOp, done: Event):
        yield from self.machine.cpu_work(self.params.read_cpu)
        yield self.sim.timeout(self.params.request_latency)
        yield self.layout.read(
            self.cluster,
            self._object_key(op.offset),
            op.offset % self.object_size,
            op.length,
        )
        yield self.machine.network.receive(op.length)
        self.client_reads += 1
        self.client_bytes_read += op.length
        done.succeed()
