"""The client host: CPU, cache SSD, and network shared by its volumes.

The paper's load test (§4.5) runs up to 32 virtual disks on one client
machine and observes aggregate IOPS saturating on the client — a single
cache SSD and the I/O-stack CPU — while the backend sits 90 % idle.
Sharing these resources across :class:`~repro.runtime.lsvd.LSVDRuntime`
instances reproduces that saturation point.
"""

from __future__ import annotations

from typing import Optional

from repro.devices.network import NetworkLink
from repro.devices.ssd import SSD, SSDSpec
from repro.sim.engine import Simulator
from repro.sim.resources import Resource


class ClientMachine:
    """One physical client: I/O-stack CPU + cache SSD + NIC."""

    def __init__(
        self,
        sim: Simulator,
        ssd_spec: Optional[SSDSpec] = None,
        cpu_capacity: int = 1,
        net_bandwidth: float = 10e9 / 8,
        net_latency: float = 100e-6,
    ):
        self.sim = sim
        self.cpu = Resource(sim, capacity=cpu_capacity)
        self.ssd = SSD(sim, ssd_spec or SSDSpec.nvme_p3700())
        self.network = NetworkLink(sim, bandwidth=net_bandwidth, latency=net_latency)

    def cpu_work(self, seconds: float):
        """Generator: hold the CPU for ``seconds`` (FIFO contention)."""
        req = self.cpu.request()
        yield req
        try:
            yield self.sim.timeout(seconds)
        finally:
            self.cpu.release()
