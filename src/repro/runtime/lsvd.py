"""The timed LSVD stack (Figure 1 under the simulator).

Write path: client CPU -> (back-pressure if the cache log is full) ->
sequential log write on the cache SSD -> acknowledge.  A background
destage pipeline reads batched data back off the SSD (the prototype
passes data through the SSD between kernel and user space, §3.7/§4.7),
PUTs 8-32 MiB objects through the erasure-coded backend, and frees cache
space when each PUT settles.

The data plane is an event-driven multi-queue pipeline:

* **group commit** — concurrent commit barriers are queued to a single
  commit worker that coalesces everything waiting into one batch, issues
  one device FLUSH, and only then settles every barrier in the group
  (the LSVD014 invariant).  Writers are never gated behind a barrier.
  ``params.group_commit=False`` restores the serial baseline (each
  barrier gates all writers and pays its own FLUSH) for comparison.
* **per-shard destage queues** — destage work is routed to the queue of
  the shard its object key lands on, each queue drained by its own
  workers, so one shard's slow PUT cannot head-of-line-block another's
  (``destage.<i>.queue_depth`` gauges expose the skew).
* **overlapped recovery** — :meth:`recovery_scan` fans the per-shard
  LISTs and the header GETs out concurrently (latency ~= the slowest
  shard, not the sum).

Batching, garbage-collection triggering, and relocation volumes come from
an embedded page-map simulator (:class:`~repro.gcsim.GCSimulator`), so
backend object counts, GC reads/writes, and occupancy timelines (Figure
15) all emerge from the same algorithm the pure-logic core implements.

Read path: write-cache/read-cache hits are SSD reads; misses pay the S3
range-GET latency and insert the fetched+prefetched data into the read
cache (an SSD write — the §4.7 pass-through overhead).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.core.config import LSVDConfig
from repro.core.log import align_up
from repro.core.placement import TEMP_NAMES, make_policy
from repro.gcsim.simulator import GCSimulator
from repro.obs import Registry, bind_metrics, gauge_field, metric_field
from repro.runtime.backend import SimulatedObjectStore
from repro.runtime.machine import ClientMachine
from repro.runtime.params import LSVDParams
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Store
from repro.workloads.base import FLUSH, READ, WRITE, IOOp

#: bucket edges for the barrier group-size histogram (barriers per FLUSH)
_GROUP_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


class _HookedGCSim(GCSimulator):
    """Page-map simulator that reports object/GC I/O to the runtime."""

    def __init__(self, runtime: "LSVDRuntime", *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._runtime = runtime

    def _store_object(self, pages, gc: bool, temp: int = 0) -> int:
        obj = super()._store_object(pages, gc, temp)
        self._runtime._on_object(len(pages) * 4096, gc, temp)
        return obj

    def _clean(self, victims) -> None:
        live = 0
        for victim in victims:
            pages = self.obj_pages[victim]
            live += int((self.page_obj[pages] == victim).sum())
        self._runtime._on_gc_read(live * 4096)
        super()._clean(victims)
        self._runtime._on_gc_delete(len(victims))


class LSVDRuntime:
    """A simulated LSVD virtual disk."""

    # statistics (registry-backed; see repro.obs)
    dirty_bytes = gauge_field("lsvd.dirty_bytes")
    client_writes = metric_field("lsvd.client_writes")
    client_reads = metric_field("lsvd.client_reads")
    client_bytes_written = metric_field("lsvd.client_bytes_written")
    client_bytes_read = metric_field("lsvd.client_bytes_read")
    objects_put = metric_field("lsvd.objects_put")
    gc_objects_put = metric_field("lsvd.gc_objects_put")
    backend_bytes_put = metric_field("lsvd.backend_bytes_put")
    recovery_scans = metric_field("lsvd.recovery_scans")
    # pipeline instrumentation
    barrier_requests = metric_field("barrier.requests")
    barrier_flushes = metric_field("barrier.flushes")
    destage_queue_depth = gauge_field("destage.queue_depth")
    destage_space_stalls = metric_field("destage.space_stalls")

    def __init__(
        self,
        sim: Simulator,
        machine: ClientMachine,
        backend: SimulatedObjectStore,
        volume_size: int,
        cache_size: int,
        config: Optional[LSVDConfig] = None,
        params: Optional[LSVDParams] = None,
        name: str = "vd",
        read_hit_rate: float = 1.0,
        gc_enabled: bool = True,
        obs: Optional[Registry] = None,
        tenant: Optional[str] = None,
        qos=None,
    ):
        self.sim = sim
        self.machine = machine
        self.backend = backend
        self.config = config or LSVDConfig()
        self.params = params or LSVDParams()
        self.name = name
        self.volume_size = volume_size
        self.read_hit_rate = read_hit_rate
        #: multi-tenant hookup (repro.fleet): tenant tag lands on every
        #: root span; qos is a TenantThrottle whose admit() delay is
        #: served on the simulated clock before the I/O enters the
        #: pipeline
        self.tenant = tenant
        self.qos = qos
        #: share the backend facade's registry so lsvd.* and backend.*
        #: metrics of one stack land in one snapshot
        # explicit None checks: a freshly created Registry is empty and
        # therefore falsy, and `or` would silently discard it — binding
        # this stack's lsvd.* metrics (including the dirty_bytes gauge
        # that space accounting reads) to the shared backend registry
        if obs is None:
            obs = getattr(backend, "obs", None)
        self.obs = obs if obs is not None else Registry()
        bind_metrics(self)
        # span trees read the simulated clock (same contract as the trace)
        self.obs.spans.clock = lambda: self.sim.now

        self.write_cache_capacity = int(
            cache_size * self.config.write_cache_fraction
        )
        self._batch_log_bytes = 0  # log footprint of the accumulating batch
        self._space_waiters: Deque[Event] = deque()
        self._log_head = 0  # for sequential SSD writes
        self._rc_head = 0

        gc_low = self.config.gc_low_watermark if gc_enabled else 1e-9
        gc_high = self.config.gc_high_watermark if gc_enabled else 2e-9
        # the page map shares the full stack's placement implementation:
        # the same classifier object type, victim ordering, and relocation
        # planner (core.placement) drive this timed model
        self.pagemap = _HookedGCSim(
            self,
            volume_size=volume_size,
            batch_size=self.config.batch_size,
            gc_low=gc_low,
            gc_high=gc_high,
            policy=make_policy(self.config),
            gc_policy=self.config.gc_policy,
        )
        self._class_puts = [
            self.obs.counter(f"lsvd.class_{cls}.objects_put") for cls in TEMP_NAMES
        ]
        self._class_bytes_put = [
            self.obs.counter(f"lsvd.class_{cls}.bytes_put") for cls in TEMP_NAMES
        ]
        # one destage queue per backend shard (a plain backend is the
        # single-queue special case); routing delegates to the backend's
        # shard router so placement stays owned by repro.shard (LSVD008)
        n_queues = int(getattr(backend, "n_shards", 1))
        self._destage_qs: List[Store] = [Store(sim) for _ in range(n_queues)]
        self._queue_gauges = [
            self.obs.gauge(f"destage.{i}.queue_depth") for i in range(n_queues)
        ]
        workers = max(self.params.destage_workers, n_queues)
        for index in range(workers):
            queue = index - (index // n_queues) * n_queues  # round-robin spread
            sim.process(
                self._destage_worker(self._destage_qs[queue], queue),
                name=f"{name}-destage{queue}",
            )
        sim.process(self._idle_flusher(), name=f"{name}-flusher")
        self._last_write_at = 0.0

        # group commit: barriers queue to one commit worker; the inflight
        # set is what a FLUSH must quiesce (writes admitted before it)
        self._inflight: set = set()
        self._barrier_q: Store = Store(sim)
        self._group_size_h = self.obs.histogram(
            "barrier.group_size", buckets=_GROUP_SIZE_BUCKETS
        )
        sim.process(self._group_commit_worker(), name=f"{name}-commit")

        # serial-barrier baseline state (params.group_commit=False)
        self._inflight_writes = 0
        self._drain_waiters: Deque[Event] = deque()
        self._barrier_active = False
        self._gate_waiters: Deque[Event] = deque()

        self._seq = 0
        self._rng_state = 12345

    # ------------------------------------------------------------------
    # block device interface
    # ------------------------------------------------------------------
    def submit(self, op: IOOp) -> Event:
        done = self.sim.event()
        if op.kind == WRITE:
            span = self.obs.spans.root("write", bytes=op.length)
            self._tag_tenant(span)
            self.sim.process(self._write(op, done, span), name=f"{self.name}-w")
        elif op.kind == READ:
            span = self.obs.spans.root("read", bytes=op.length)
            self._tag_tenant(span)
            self.sim.process(self._read(op, done, span), name=f"{self.name}-r")
        elif op.kind == FLUSH:
            self.barrier_requests += 1
            span = self.obs.spans.root("barrier")
            self._tag_tenant(span)
            if self.params.group_commit:
                qwait = span.begin("barrier_queue", kind="queue")
                self._barrier_q.put((done, span, qwait))
            else:
                self.sim.process(
                    self._serial_barrier(done, span), name=f"{self.name}-f"
                )
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")
        return done

    # ------------------------------------------------------------------
    def _tag_tenant(self, span) -> None:
        if self.tenant is not None:
            span.annotate(tenant=self.tenant)

    def _admission(self, op: IOOp, span):
        """QoS admission: serve the tenant's token-bucket delay before
        the I/O touches any shared resource (CPU, SSD, backend)."""
        if self.qos is None:
            return
        delay = self.qos.admit(self.sim.now, op.length)
        if delay > 0:
            stage = span.begin("throttle_wait", kind="queue")
            self.qos.wait_started()
            yield self.sim.timeout(delay)
            self.qos.wait_finished()
            stage.end()

    def _write(self, op: IOOp, done: Event, span):
        yield from self._admission(op, span)
        # serial baseline only: a barrier is an ordering point that gates
        # new writes (group commit never sets _barrier_active)
        gate_wait = span.begin("barrier_gate", kind="queue")
        while self._barrier_active:
            gate = self.sim.event()
            self._gate_waiters.append(gate)
            yield gate
        gate_wait.end()
        self._inflight.add(done)
        self._inflight_writes += 1
        try:
            stage = span.begin("write_cpu")
            yield from self.machine.cpu_work(self.params.write_cpu)
            stage.end()
            footprint = align_up(op.length) + self.params.log_header_bytes
            stage = span.begin("space_wait", kind="queue")
            yield from self._wait_for_space(footprint)
            stage.end()
            self.dirty_bytes += footprint
            stage = span.begin("wc_append", bytes=footprint)
            yield self.machine.ssd.write(self._log_head, footprint)
            stage.end()
            self._log_head += footprint
            self._last_write_at = self.sim.now
            self.client_writes += 1
            self.client_bytes_written += op.length
            done.succeed()
            span.end()
            # feed the batcher (synchronous map/batch state; PUTs are
            # queued to the destage workers via the _on_object hook);
            # the accumulated footprint is released exactly when the
            # covering object's PUT settles
            self._batch_log_bytes += footprint
            self.pagemap.write(op.offset, op.length)
        finally:
            self._inflight.discard(done)
            self._inflight_writes -= 1
            if self._inflight_writes == 0:
                while self._drain_waiters:
                    self._drain_waiters.popleft().succeed()

    def _read(self, op: IOOp, done: Event, span):
        yield from self._admission(op, span)
        hit = self._chance() < self.read_hit_rate
        span.annotate(hit=hit)
        if hit:
            stage = span.begin("read_cpu")
            yield from self.machine.cpu_work(self.params.read_hit_cpu)
            stage.end()
            stage = span.begin("rc_lookup", bytes=op.length)
            yield self.machine.ssd.read(self._scatter(op.offset), op.length)
            stage.end()
        else:
            stage = span.begin("read_cpu")
            yield from self.machine.cpu_work(self.params.read_miss_cpu)
            stage.end()
            fetch = max(op.length, self.config.prefetch_bytes)
            stage = span.begin("backend_fetch", bytes=fetch)
            yield self.backend.get_range(
                f"{self.name}.{self._seq:08d}", 0, fetch
            )
            stage.end()
            # the prototype stores fetched data in the read cache before
            # replying (pass-through SSD, §4.7)
            stage = span.begin("rc_insert", bytes=fetch)
            yield self.machine.ssd.write(self._rc_slot(fetch), fetch)
            stage.end()
        self.client_reads += 1
        self.client_bytes_read += op.length
        done.succeed()
        span.end()

    # ------------------------------------------------------------------
    # commit barriers
    # ------------------------------------------------------------------
    def _group_commit_worker(self):
        """Coalesce queued barriers: one device FLUSH settles the group.

        Safety (LSVD014): every barrier in the group is settled strictly
        after the covering FLUSH event completes.  Late joiners that
        arrive while the group is quiescing are folded in — their
        covered writes finished the SSD log write before the FLUSH
        issues, so the same FLUSH covers them.
        """
        while True:
            first = yield self._barrier_q.get()
            group = [first]
            group.extend(self._barrier_q.drain())
            # each member's queue wait ends when it is folded into a group
            for _done, _span, qwait in group:
                qwait.end()
            # one CPU charge per group — the commit-path amortisation
            stages = [span.begin("barrier_cpu") for _d, span, _q in group]
            yield from self.machine.cpu_work(self.params.barrier_cpu)
            for stage in stages:
                stage.end()
            # quiesce: writes admitted before this FLUSH issues must
            # reach the cache SSD first (drain-then-flush, matching the
            # serial path's durability; new writes are never gated)
            pending = [ev for ev in self._inflight if not ev.triggered]
            stages = [
                span.begin("barrier_quiesce", kind="queue")
                for _d, span, _q in group
            ]
            if pending:
                yield self.sim.all_of(pending)
            for stage in stages:
                stage.end()
            late = self._barrier_q.drain()
            for _done, _span, qwait in late:
                qwait.end()
            group.extend(late)
            # a flushed log must not strand a half-built object: seal the
            # partial batch through the page map's public API so destage
            # starts catching the backend up (satellite of §3.2)
            self.pagemap.flush_batch()
            stages = [span.begin("device_flush") for _d, span, _q in group]
            yield self.machine.ssd.flush()
            for stage in stages:
                stage.end()
            self.barrier_flushes += 1
            self._group_size_h.observe(len(group))
            self.obs.trace.emit("barrier_group", size=len(group))
            for done, span, _qwait in group:
                done.succeed()
                span.end(group=len(group))

    def _serial_barrier(self, done: Event, span):
        """Pre-pipeline baseline: quiesce all writers, one flush each."""
        self._barrier_active = True
        try:
            stage = span.begin("barrier_cpu")
            yield from self.machine.cpu_work(self.params.barrier_cpu)
            stage.end()
            stage = span.begin("barrier_quiesce", kind="queue")
            if self._inflight_writes:
                waiter = self.sim.event()
                self._drain_waiters.append(waiter)
                yield waiter
            stage.end()
            stage = span.begin("device_flush")
            yield self.machine.ssd.flush()
            stage.end()
            self.barrier_flushes += 1
            self._group_size_h.observe(1)
            self.obs.trace.emit("barrier_group", size=1)
            done.succeed()
            span.end(group=1)
        finally:
            self._barrier_active = False
            while self._gate_waiters:
                self._gate_waiters.popleft().succeed()

    # ------------------------------------------------------------------
    # destage / GC plumbing
    # ------------------------------------------------------------------
    def _on_object(self, nbytes: int, gc: bool, temp: int = 0) -> None:
        """Hook: the page map sealed an object of ``nbytes`` in class
        ``temp``; the class tag rides the destage queue item."""
        self._seq += 1  # lint: disable=LSVD002 -- timed model's own object counter
        key = f"{self.name}.{self._seq:08d}"
        if gc:
            self._enqueue_destage(key, ("gcput", key, self._seq, nbytes, 0, temp))
        else:
            log_bytes, self._batch_log_bytes = self._batch_log_bytes, 0
            self._enqueue_destage(
                key, ("put", key, self._seq, nbytes, log_bytes, temp)
            )

    def _on_gc_read(self, nbytes: int) -> None:
        if nbytes > 0:
            key = f"{self.name}.{self._seq:08d}"
            self._enqueue_destage(key, ("gcread", key, self._seq, nbytes, 0, 0))

    def _on_gc_delete(self, count: int) -> None:
        key = f"{self.name}.{self._seq:08d}"
        for _ in range(count):
            self._enqueue_destage(key, ("delete", key, self._seq, 0, 0, 0))

    def _shard_index(self, key: str) -> int:
        """Destage queue for ``key`` — the shard its PUT will land on.

        Placement itself stays owned by the backend's ShardRouter
        (LSVD008); a plain single-endpoint backend maps everything to
        queue 0.
        """
        shard_of = getattr(self.backend, "shard_of", None)
        if shard_of is None:
            return 0
        return shard_of(key)

    def _enqueue_destage(self, key: str, item: Tuple) -> None:
        index = self._shard_index(key)
        root = self.obs.spans.root("destage", op=item[0], shard=index)
        qwait = root.begin("destage_queue", kind="queue")
        self._destage_qs[index].put(item + (root, qwait))
        self.destage_queue_depth += 1
        self._queue_gauges[index].set(len(self._destage_qs[index]))

    def _destage_worker(self, queue: Store, index: int):
        while True:
            kind, key, seq, nbytes, log_bytes, temp, root, qwait = yield queue.get()
            self.destage_queue_depth -= 1
            self._queue_gauges[index].set(len(queue))
            qwait.end()
            if kind == "put":
                # the userspace daemon reads outgoing data from the cache
                # SSD (§3.7), then PUTs the object
                # seq only picks a distinct simulated SSD address here; no
                # real log offsets exist in the timed model
                stage = root.begin("destage_read", bytes=nbytes)
                yield self.machine.ssd.read(self._log_head + seq, nbytes)  # lint: disable=LSVD002
                stage.end()
                stage = root.begin("destage_cpu")
                yield from self.machine.cpu_work(self.params.destage_user_cpu)
                stage.end()
                stage = root.begin("shard_put", shard=index, bytes=nbytes)
                yield self.backend.put(key, nbytes)
                stage.end()
                self.objects_put += 1
                self.backend_bytes_put += nbytes
                self._class_puts[temp].inc()
                self._class_bytes_put[temp].inc(nbytes)
                self._release_space(log_bytes)
            elif kind == "gcput":
                stage = root.begin("destage_cpu")
                yield from self.machine.cpu_work(self.params.destage_user_cpu)
                stage.end()
                stage = root.begin("shard_put", shard=index, bytes=nbytes)
                yield self.backend.put(key, nbytes)
                stage.end()
                self.gc_objects_put += 1
                self.backend_bytes_put += nbytes
                self._class_puts[temp].inc()
                self._class_bytes_put[temp].inc(nbytes)
            elif kind == "gcread":
                cached = int(nbytes * self.params.gc_cache_hit)
                remote = nbytes - cached
                if cached:
                    stage = root.begin("gc_cache_read", bytes=cached)
                    yield self.machine.ssd.read(self._rc_slot(cached), cached)
                    stage.end()
                if remote:
                    stage = root.begin("backend_fetch", bytes=remote)
                    yield self.backend.get_range(key, 0, remote)
                    stage.end()
            elif kind == "delete":
                stage = root.begin("shard_delete", shard=index)
                yield self.backend.delete(key)
                stage.end()
            root.end()

    def _idle_flusher(self):
        """Flush partial batches after a quiet period (batch_timeout).

        A daemon: its wake-ups are background events, so an unbounded
        ``sim.run()`` ends when the client work drains.
        """
        while True:
            yield self.sim.timeout(self.config.batch_timeout, background=True)
            quiet = self.sim.now - self._last_write_at
            if quiet >= self.config.batch_timeout:
                self.pagemap.flush_batch()

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recovery_scan(
        self, max_headers: int = 16, overlap: bool = True
    ) -> Event:
        """Timed mount sweep (§3.3): LIST the volume's objects, then read
        the newest ``max_headers`` object headers to rebuild the map tail.

        With ``overlap`` both fans — the per-shard LISTs and the header
        GETs — are issued concurrently, so the sweep costs ~one round
        trip of the slowest shard instead of the sum of all of them.
        The event's value reports ``{"objects", "headers", "duration"}``.
        """
        done = self.sim.event()
        self.sim.process(
            self._recovery_scan(done, max_headers, overlap),
            name=f"{self.name}-mount",
        )
        return done

    def _recovery_scan(self, done: Event, max_headers: int, overlap: bool):
        started = self.sim.now
        self.recovery_scans += 1
        span = self.obs.spans.root("recovery_scan", overlap=overlap)
        stage = span.begin("recovery_list")
        names = yield self.backend.list_keys(f"{self.name}.", overlap=overlap)
        stage.end(objects=len(names))
        recent = names[-max_headers:] if max_headers > 0 else []
        header = self.params.log_header_bytes
        stage = span.begin("recovery_headers", headers=len(recent))
        if overlap:
            if recent:
                yield self.sim.all_of(
                    [self.backend.get_range(n, 0, header) for n in recent]
                )
        else:
            for key in recent:
                yield self.backend.get_range(key, 0, header)
        stage.end()
        span.end()
        duration = self.sim.now - started
        self.obs.trace.emit(
            "recovery_scan",
            objects=len(names),
            headers=len(recent),
            overlap=overlap,
            duration=duration,
        )
        done.succeed(
            {"objects": len(names), "headers": len(recent), "duration": duration}
        )

    # ------------------------------------------------------------------
    # cache-space accounting
    # ------------------------------------------------------------------
    def _wait_for_space(self, needed: int):
        if self.dirty_bytes + needed > self.write_cache_capacity:
            self.destage_space_stalls += 1
        while self.dirty_bytes + needed > self.write_cache_capacity:
            waiter = self.sim.event()
            self._space_waiters.append(waiter)
            yield waiter

    def _release_space(self, nbytes: int) -> None:
        self.dirty_bytes = max(0, self.dirty_bytes - nbytes)
        while self._space_waiters:
            self._space_waiters.popleft().succeed()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _chance(self) -> float:
        # deterministic cheap LCG (Date/random-free for reproducibility)
        self._rng_state = (self._rng_state * 1103515245 + 12345) % (1 << 31)
        return self._rng_state / (1 << 31)

    def _scatter(self, offset: int) -> int:
        """Map a volume offset to a pseudo-random cache SSD offset."""
        return (offset * 2654435761) % (1 << 38)

    def _rc_slot(self, nbytes: int) -> int:
        slot = self._rc_head
        self._rc_head += align_up(nbytes)
        return (1 << 39) + slot

    # ------------------------------------------------------------------
    def occupancy(self) -> Tuple[int, int]:
        """(live bytes, total backend data bytes) — Figure 15's curves."""
        live = sum(self.pagemap.obj_live.values()) * 4096
        total = sum(self.pagemap.obj_size.values()) * 4096
        return live, total

    @property
    def write_amplification(self) -> float:
        if self.client_bytes_written == 0:
            return 0.0
        return self.backend_bytes_put / self.client_bytes_written
