"""The timed LSVD stack (Figure 1 under the simulator).

Write path: client CPU -> (back-pressure if the cache log is full) ->
sequential log write on the cache SSD -> acknowledge.  A background
destage pipeline reads batched data back off the SSD (the prototype
passes data through the SSD between kernel and user space, §3.7/§4.7),
PUTs 8-32 MiB objects through the erasure-coded backend, and frees cache
space when each PUT settles.

Batching, garbage-collection triggering, and relocation volumes come from
an embedded page-map simulator (:class:`~repro.gcsim.GCSimulator`), so
backend object counts, GC reads/writes, and occupancy timelines (Figure
15) all emerge from the same algorithm the pure-logic core implements.

Read path: write-cache/read-cache hits are SSD reads; misses pay the S3
range-GET latency and insert the fetched+prefetched data into the read
cache (an SSD write — the §4.7 pass-through overhead).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.core.config import LSVDConfig
from repro.core.log import align_up
from repro.gcsim.simulator import GCSimulator
from repro.obs import Registry, bind_metrics, gauge_field, metric_field
from repro.runtime.backend import SimulatedObjectStore
from repro.runtime.machine import ClientMachine
from repro.runtime.params import LSVDParams
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Store
from repro.workloads.base import FLUSH, READ, WRITE, IOOp


class _HookedGCSim(GCSimulator):
    """Page-map simulator that reports object/GC I/O to the runtime."""

    def __init__(self, runtime: "LSVDRuntime", *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._runtime = runtime

    def _store_object(self, pages, gc: bool) -> int:
        obj = super()._store_object(pages, gc)
        self._runtime._on_object(len(pages) * 4096, gc)
        return obj

    def _clean(self, victims) -> None:
        live = 0
        for victim in victims:
            pages = self.obj_pages[victim]
            live += int((self.page_obj[pages] == victim).sum())
        self._runtime._on_gc_read(live * 4096)
        super()._clean(victims)
        self._runtime._on_gc_delete(len(victims))


class LSVDRuntime:
    """A simulated LSVD virtual disk."""

    # statistics (registry-backed; see repro.obs)
    dirty_bytes = gauge_field("lsvd.dirty_bytes")
    client_writes = metric_field("lsvd.client_writes")
    client_reads = metric_field("lsvd.client_reads")
    client_bytes_written = metric_field("lsvd.client_bytes_written")
    client_bytes_read = metric_field("lsvd.client_bytes_read")
    objects_put = metric_field("lsvd.objects_put")
    gc_objects_put = metric_field("lsvd.gc_objects_put")
    backend_bytes_put = metric_field("lsvd.backend_bytes_put")

    def __init__(
        self,
        sim: Simulator,
        machine: ClientMachine,
        backend: SimulatedObjectStore,
        volume_size: int,
        cache_size: int,
        config: Optional[LSVDConfig] = None,
        params: Optional[LSVDParams] = None,
        name: str = "vd",
        read_hit_rate: float = 1.0,
        gc_enabled: bool = True,
        obs: Optional[Registry] = None,
    ):
        self.sim = sim
        self.machine = machine
        self.backend = backend
        self.config = config or LSVDConfig()
        self.params = params or LSVDParams()
        self.name = name
        self.volume_size = volume_size
        self.read_hit_rate = read_hit_rate
        #: share the backend facade's registry so lsvd.* and backend.*
        #: metrics of one stack land in one snapshot
        self.obs = obs or getattr(backend, "obs", None) or Registry()
        bind_metrics(self)

        self.write_cache_capacity = int(
            cache_size * self.config.write_cache_fraction
        )
        self._batch_log_bytes = 0  # log footprint of the accumulating batch
        self._space_waiters: Deque[Event] = deque()
        self._log_head = 0  # for sequential SSD writes
        self._rc_head = 0

        gc_low = self.config.gc_low_watermark if gc_enabled else 1e-9
        gc_high = self.config.gc_high_watermark if gc_enabled else 2e-9
        self.pagemap = _HookedGCSim(
            self,
            volume_size=volume_size,
            batch_size=self.config.batch_size,
            gc_low=gc_low,
            gc_high=gc_high,
        )
        self._destage_q: Store = Store(sim)
        self._pending_frees: Deque[Tuple[int, Event]] = deque()
        for _ in range(self.params.destage_workers):
            sim.process(self._destage_worker(), name=f"{name}-destage")
        sim.process(self._idle_flusher(), name=f"{name}-flusher")
        self._last_write_at = 0.0

        self._inflight_writes = 0
        self._drain_waiters: Deque[Event] = deque()
        self._barrier_active = False
        self._gate_waiters: Deque[Event] = deque()

        self._seq = 0
        self._rng_state = 12345

    # ------------------------------------------------------------------
    # block device interface
    # ------------------------------------------------------------------
    def submit(self, op: IOOp) -> Event:
        done = self.sim.event()
        if op.kind == WRITE:
            self.sim.process(self._write(op, done), name=f"{self.name}-w")
        elif op.kind == READ:
            self.sim.process(self._read(op, done), name=f"{self.name}-r")
        elif op.kind == FLUSH:
            self.sim.process(self._barrier(done), name=f"{self.name}-f")
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")
        return done

    # ------------------------------------------------------------------
    def _write(self, op: IOOp, done: Event):
        # a commit barrier is an ordering point: new writes wait for it
        while self._barrier_active:
            gate = self.sim.event()
            self._gate_waiters.append(gate)
            yield gate
        self._inflight_writes += 1
        try:
            yield from self.machine.cpu_work(self.params.write_cpu)
            footprint = align_up(op.length) + self.params.log_header_bytes
            yield from self._wait_for_space(footprint)
            self.dirty_bytes += footprint
            yield self.machine.ssd.write(self._log_head, footprint)
            self._log_head += footprint
            self._last_write_at = self.sim.now
            self.client_writes += 1
            self.client_bytes_written += op.length
            done.succeed()
            # feed the batcher (synchronous map/batch state; PUTs are
            # queued to the destage workers via the _on_object hook);
            # the accumulated footprint is released exactly when the
            # covering object's PUT settles
            self._batch_log_bytes += footprint
            self.pagemap.write(op.offset, op.length)
        finally:
            self._inflight_writes -= 1
            if self._inflight_writes == 0:
                while self._drain_waiters:
                    self._drain_waiters.popleft().succeed()

    def _read(self, op: IOOp, done: Event):
        hit = self._chance() < self.read_hit_rate
        if hit:
            yield from self.machine.cpu_work(self.params.read_hit_cpu)
            yield self.machine.ssd.read(self._scatter(op.offset), op.length)
        else:
            yield from self.machine.cpu_work(self.params.read_miss_cpu)
            fetch = max(op.length, self.config.prefetch_bytes)
            yield self.backend.get_range(
                f"{self.name}.{self._seq:08d}", 0, fetch
            )
            # the prototype stores fetched data in the read cache before
            # replying (pass-through SSD, §4.7)
            yield self.machine.ssd.write(self._rc_slot(fetch), fetch)
        self.client_reads += 1
        self.client_bytes_read += op.length
        done.succeed()

    def _barrier(self, done: Event):
        """Commit barrier: quiesce outstanding writes, one device flush."""
        self._barrier_active = True
        try:
            yield from self.machine.cpu_work(self.params.barrier_cpu)
            if self._inflight_writes:
                waiter = self.sim.event()
                self._drain_waiters.append(waiter)
                yield waiter
            yield self.machine.ssd.flush()
            done.succeed()
        finally:
            self._barrier_active = False
            while self._gate_waiters:
                self._gate_waiters.popleft().succeed()

    # ------------------------------------------------------------------
    # destage / GC plumbing
    # ------------------------------------------------------------------
    def _on_object(self, nbytes: int, gc: bool) -> None:
        """Hook: the page map sealed an object of ``nbytes``."""
        self._seq += 1  # lint: disable=LSVD002 -- timed model's own object counter
        if gc:
            self._destage_q.put(("gcput", self._seq, nbytes, 0))
        else:
            log_bytes, self._batch_log_bytes = self._batch_log_bytes, 0
            self._destage_q.put(("put", self._seq, nbytes, log_bytes))

    def _on_gc_read(self, nbytes: int) -> None:
        if nbytes > 0:
            self._destage_q.put(("gcread", self._seq, nbytes, 0))

    def _on_gc_delete(self, count: int) -> None:
        for _ in range(count):
            self._destage_q.put(("delete", self._seq, 0, 0))

    def _destage_worker(self):
        while True:
            kind, seq, nbytes, log_bytes = yield self._destage_q.get()
            key = f"{self.name}.{seq:08d}"
            if kind == "put":
                # the userspace daemon reads outgoing data from the cache
                # SSD (§3.7), then PUTs the object
                # seq only picks a distinct simulated SSD address here; no
                # real log offsets exist in the timed model
                yield self.machine.ssd.read(self._log_head + seq, nbytes)  # lint: disable=LSVD002
                yield from self.machine.cpu_work(self.params.destage_user_cpu)
                yield self.backend.put(key, nbytes)
                self.objects_put += 1
                self.backend_bytes_put += nbytes
                self._release_space(log_bytes)
            elif kind == "gcput":
                yield from self.machine.cpu_work(self.params.destage_user_cpu)
                yield self.backend.put(key, nbytes)
                self.gc_objects_put += 1
                self.backend_bytes_put += nbytes
            elif kind == "gcread":
                cached = int(nbytes * self.params.gc_cache_hit)
                remote = nbytes - cached
                if cached:
                    yield self.machine.ssd.read(self._rc_slot(cached), cached)
                if remote:
                    yield self.backend.get_range(key, 0, remote)
            elif kind == "delete":
                yield self.backend.delete(key)

    def _idle_flusher(self):
        """Flush partial batches after a quiet period (batch_timeout).

        A daemon: its wake-ups are background events, so an unbounded
        ``sim.run()`` ends when the client work drains.
        """
        while True:
            yield self.sim.timeout(self.config.batch_timeout, background=True)
            quiet = self.sim.now - self._last_write_at
            if quiet >= self.config.batch_timeout and self.pagemap._batch:
                batch = self.pagemap._batch
                self.pagemap._batch = []
                self.pagemap._flush_batch(batch)

    # ------------------------------------------------------------------
    # cache-space accounting
    # ------------------------------------------------------------------
    def _wait_for_space(self, needed: int):
        while self.dirty_bytes + needed > self.write_cache_capacity:
            waiter = self.sim.event()
            self._space_waiters.append(waiter)
            yield waiter

    def _release_space(self, nbytes: int) -> None:
        self.dirty_bytes = max(0, self.dirty_bytes - nbytes)
        while self._space_waiters:
            self._space_waiters.popleft().succeed()

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _chance(self) -> float:
        # deterministic cheap LCG (Date/random-free for reproducibility)
        self._rng_state = (self._rng_state * 1103515245 + 12345) % (1 << 31)
        return self._rng_state / (1 << 31)

    def _scatter(self, offset: int) -> int:
        """Map a volume offset to a pseudo-random cache SSD offset."""
        return (offset * 2654435761) % (1 << 38)

    def _rc_slot(self, nbytes: int) -> int:
        slot = self._rc_head
        self._rc_head += align_up(nbytes)
        return (1 << 39) + slot

    # ------------------------------------------------------------------
    def occupancy(self) -> Tuple[int, int]:
        """(live bytes, total backend data bytes) — Figure 15's curves."""
        live = sum(self.pagemap.obj_live.values()) * 4096
        total = sum(self.pagemap.obj_size.values()) * 4096
        return live, total

    @property
    def write_amplification(self) -> float:
        if self.client_bytes_written == 0:
            return 0.0
        return self.backend_bytes_put / self.client_bytes_written
