"""Calibrated per-operation overheads of the three stacks.

LSVD values follow the paper's Table 6 instrumentation of the prototype
(map lookup 3 us, context switch 50 us, kernel/user boundary ~20-27 us,
golang overhead 34-63 us, NVMe ops 64-136 us, S3 range GET ~5.9 ms) —
collapsed into per-path CPU costs plus real device operations charged on
the simulated SSD/network/cluster.  bcache and RBD values are calibrated
so the single-device microbenchmark results land where the paper measured
them (LSVD 20-30 % faster small random writes; up to 30 % slower random
reads at high queue depth; RBD ~1 ms replicated-write latency).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LSVDParams:
    """LSVD stack overheads (Table 6 derived)."""

    write_cpu: float = 15e-6  # kernel log append + map update + user copy
    read_hit_cpu: float = 20e-6  # map lookup + 2 boundary crossings
    read_miss_cpu: float = 120e-6  # + context switches + golang overhead
    barrier_cpu: float = 2e-6
    s3_latency: float = 5.9e-3  # RGW software latency per request (Tab. 6)
    destage_workers: int = 8  # overlapped PUTs
    destage_user_cpu: float = 63e-6  # golang overhead per PUT
    log_header_bytes: int = 4096  # per-record expansion (§3.1)
    #: fraction of GC reads served from the local cache (§3.5); 0 is the
    #: conservative default (all GC reads hit the backend)
    gc_cache_hit: float = 0.0
    #: group commit: concurrent commit barriers are coalesced by a single
    #: worker so one device FLUSH settles the whole batch and writers are
    #: never gated behind an in-flight barrier.  False restores the
    #: pre-pipeline serial path (every barrier gates all writers, one
    #: FLUSH each) — kept in-repo as the comparison baseline the
    #: pipeline-smoke gate measures against.
    group_commit: bool = True


@dataclass(frozen=True)
class BcacheParams:
    """bcache-over-RBD overheads."""

    write_cpu: float = 21e-6  # btree update + allocator, heavier than log
    read_cpu: float = 14e-6  # mature read path, lighter than prototype
    barrier_cpu: float = 4e-6
    #: ordered metadata commits per barrier: journal entry + btree
    #: node(s) along the leaf-to-root path, each followed by a device
    #: flush (footnote 4 of the paper)
    meta_writes_per_barrier: int = 3
    meta_write_bytes: int = 4096
    #: write-back is disabled while the client is active (Figure 11); the
    #: device is considered idle after this much quiet time
    idle_threshold: float = 0.05
    writeback_batch: int = 64  # dirty blocks destaged per idle round


@dataclass(frozen=True)
class RBDParams:
    """Uncached RBD client overheads."""

    write_cpu: float = 25e-6
    read_cpu: float = 15e-6
    request_latency: float = 350e-6  # OSD request processing + commit RTT
