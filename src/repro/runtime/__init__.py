"""Timed runtimes: the LSVD and baseline stacks under the simulator.

These produce the performance numbers of §4: each runtime is a simulated
block device whose write/read/flush paths charge calibrated CPU, SSD,
network, and backend-device time, while the I/O *counts and sizes* come
from the same batching/GC behaviour as the pure-logic core (via the
page-map simulator).

* :class:`~repro.runtime.machine.ClientMachine` — shared client CPU, cache
  SSD, and network link (one per physical client host).
* :class:`~repro.runtime.lsvd.LSVDRuntime` — the full LSVD stack: log
  write cache with back-pressure, batched destage through the object
  store, garbage collection, read cache with temporal prefetch.
* :class:`~repro.runtime.rbd.RBDRuntime` — uncached RBD: every write is
  replicated synchronously (6 backend I/Os).
* :class:`~repro.runtime.bcache.BcacheRBDRuntime` — bcache over RBD:
  update-in-place SSD cache, per-barrier metadata commits, write-back that
  pauses under load and destages in LBA order.
* :func:`~repro.runtime.blockdev.run_fio` — the benchmark driver keeping
  ``iodepth`` operations outstanding and reporting IOPS / throughput.

Calibration constants live in :mod:`~repro.runtime.params`, derived from
the paper's Table 1 hardware and Table 6 overhead breakdown.
"""

from repro.runtime.backend import SimulatedObjectStore
from repro.runtime.bcache import BcacheRBDRuntime
from repro.runtime.blockdev import FioResult, run_fio, run_jobs
from repro.runtime.lsvd import LSVDRuntime
from repro.runtime.machine import ClientMachine
from repro.runtime.params import BcacheParams, LSVDParams, RBDParams
from repro.runtime.rbd import RBDRuntime
from repro.runtime.sharded import ShardedSimulatedBackend, make_sharded_backend

__all__ = [
    "BcacheParams",
    "BcacheRBDRuntime",
    "ClientMachine",
    "FioResult",
    "LSVDParams",
    "LSVDRuntime",
    "RBDParams",
    "RBDRuntime",
    "ShardedSimulatedBackend",
    "SimulatedObjectStore",
    "make_sharded_backend",
    "run_fio",
    "run_jobs",
]
