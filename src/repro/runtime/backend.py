"""Timed S3 endpoint: network transfer + RGW latency + cluster device I/O.

Every LSVD backend operation crosses the client NIC, pays the object
gateway's software latency (~5.9 ms per request in the paper's Table 6),
and lands on the storage pool through the erasure-coded layout — which is
where the per-device write counts of Figures 12-14 come from.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.cluster import StorageCluster
from repro.cluster.layouts import ErasureCodedLayout
from repro.devices.network import NetworkLink
from repro.obs import Registry, bind_metrics, metric_field
from repro.sim.engine import Event, Simulator

#: wire size of one LIST response entry (name + size + etag, roughly what
#: an S3 ListObjectsV2 row costs on the wire)
LIST_ENTRY_BYTES = 64


class SimulatedObjectStore:
    """Timing facade for an S3-compatible store over a cluster."""

    # statistics (registry-backed; see repro.obs)
    puts = metric_field("backend.puts")
    gets = metric_field("backend.gets")
    deletes = metric_field("backend.deletes")
    lists = metric_field("backend.lists")
    bytes_put = metric_field("backend.bytes_put")
    bytes_got = metric_field("backend.bytes_got")

    def __init__(
        self,
        sim: Simulator,
        cluster: StorageCluster,
        network: NetworkLink,
        layout: Optional[ErasureCodedLayout] = None,
        request_latency: float = 5.9e-3,
        obs: Optional[Registry] = None,
    ):
        self.sim = sim
        self.cluster = cluster
        self.network = network
        self.layout = layout or ErasureCodedLayout()
        self.request_latency = request_latency
        self.obs = obs if obs is not None else Registry()
        bind_metrics(self)
        # durable key set, maintained at settlement time so a LIST issued
        # during recovery only surfaces objects whose PUT completed
        self._keys: Dict[str, int] = {}
        # latency histograms measured with the simulated clock; stamp the
        # trace from the same clock so events stay deterministic (LSVD003)
        self._put_latency = self.obs.histogram("backend.put_latency_s")
        self._get_latency = self.obs.histogram("backend.get_latency_s")
        self._delete_latency = self.obs.histogram("backend.delete_latency_s")
        self._list_latency = self.obs.histogram("backend.list_latency_s")
        if self.obs.trace.clock is None:
            self.obs.trace.clock = lambda: self.sim.now

    def put(self, key: str, nbytes: int) -> Event:
        """PUT of ``nbytes``; the event fires when the object is durable."""
        done = self.sim.event()
        self.puts += 1
        self.bytes_put += nbytes
        started = self.sim.now

        def run():
            yield self.network.send(nbytes)
            yield self.sim.timeout(self.request_latency)
            yield self.layout.put(self.cluster, key, nbytes)
            self._keys[key] = nbytes
            self._put_latency.observe(self.sim.now - started)
            done.succeed()

        self.sim.process(run(), name=f"put:{key}")
        return done

    def get_range(self, key: str, offset: int, nbytes: int) -> Event:
        """Ranged GET; fires when the data has arrived at the client."""
        done = self.sim.event()
        self.gets += 1
        self.bytes_got += nbytes
        started = self.sim.now

        def run():
            yield self.sim.timeout(self.request_latency)
            yield self.layout.get_range(self.cluster, key, offset, nbytes)
            yield self.network.receive(nbytes)
            self._get_latency.observe(self.sim.now - started)
            done.succeed()

        self.sim.process(run(), name=f"get:{key}")
        return done

    def delete(self, key: str) -> Event:
        done = self.sim.event()
        self.deletes += 1
        started = self.sim.now

        def run():
            yield self.sim.timeout(self.request_latency)
            yield self.layout.delete(self.cluster, key)
            self._keys.pop(key, None)
            self._delete_latency.observe(self.sim.now - started)
            done.succeed()

        self.sim.process(run(), name=f"del:{key}")
        return done

    def list_keys(self, prefix: str = "", overlap: bool = True) -> Event:
        """LIST the durable keys under ``prefix``; value = sorted names.

        One request-latency round trip plus the response body crossing
        the NIC.  ``overlap`` is accepted for interface parity with the
        sharded backend (a single endpoint has nothing to overlap).
        """
        del overlap  # single endpoint: exactly one LIST either way
        done = self.sim.event()
        self.lists += 1
        started = self.sim.now

        def run():
            yield self.sim.timeout(self.request_latency)
            names = sorted(k for k in self._keys if k.startswith(prefix))
            yield self.network.receive(len(names) * LIST_ENTRY_BYTES)
            self._list_latency.observe(self.sim.now - started)
            done.succeed(names)

        self.sim.process(run(), name=f"list:{prefix or '*'}")
        return done
