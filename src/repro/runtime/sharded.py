"""Sharded timed backend: N independent S3 endpoints behind one router.

Each shard is its own :class:`~repro.runtime.backend.SimulatedObjectStore`
over its own backend cluster, so PUTs routed to different shards queue on
*different* device pools — aggregate backend throughput scales with the
shard count until the client NIC (shared, as on a real host) saturates.
The paper's single-backend stack (§4) is the ``n_shards=1`` special case.

All shards share one :class:`~repro.obs.Registry`, so the ``backend.*``
metric family (counts, byte totals, latency histograms) automatically
aggregates across shards, while the ``shard.*`` family added here keeps
the per-shard breakdown.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.cluster.cluster import StorageCluster
from repro.devices.network import NetworkLink
from repro.obs import Registry, metric_field
from repro.runtime.backend import SimulatedObjectStore
from repro.shard.router import ShardRouter
from repro.shard.store import count_shard_op
from repro.sim.engine import Event, Simulator


class ShardedSimulatedBackend:
    """Routes the timed ObjectStore interface across N shard endpoints.

    Drop-in for :class:`SimulatedObjectStore` wherever the runtime holds
    a backend (``LSVDRuntime`` destage workers, GC, read-cache misses):
    same ``put``/``get_range``/``delete`` signatures, same Event results.
    """

    # aggregate counters — the shards share this registry, so these read
    # the sum over all shards with no extra bookkeeping
    puts = metric_field("backend.puts")
    gets = metric_field("backend.gets")
    deletes = metric_field("backend.deletes")
    lists = metric_field("backend.lists")
    bytes_put = metric_field("backend.bytes_put")
    bytes_got = metric_field("backend.bytes_got")

    def __init__(
        self,
        backends: Sequence[SimulatedObjectStore],
        router: Optional[ShardRouter] = None,
        obs: Optional[Registry] = None,
    ):
        if not backends:
            raise ValueError("need at least one shard backend")
        self.backends: List[SimulatedObjectStore] = list(backends)
        self.router = router if router is not None else ShardRouter(len(backends))
        if self.router.n_shards != len(self.backends):
            raise ValueError(
                f"router expects {self.router.n_shards} shards, "
                f"got {len(self.backends)}"
            )
        self.sim = self.backends[0].sim
        self.obs = obs if obs is not None else self.backends[0].obs

    @property
    def n_shards(self) -> int:
        return len(self.backends)

    def shard_of(self, key: str) -> int:
        return self.router.shard_of_name(key)

    # -- the timed ObjectStore interface ----------------------------------
    def put(self, key: str, nbytes: int) -> Event:
        index = self.router.shard_of_name(key)
        count_shard_op(self.obs, index, self.n_shards, "puts", nbytes)
        return self.backends[index].put(key, nbytes)

    def get_range(self, key: str, offset: int, nbytes: int) -> Event:
        index = self.router.shard_of_name(key)
        count_shard_op(self.obs, index, self.n_shards, "gets")
        return self.backends[index].get_range(key, offset, nbytes)

    def delete(self, key: str) -> Event:
        index = self.router.shard_of_name(key)
        count_shard_op(self.obs, index, self.n_shards, "deletes")
        return self.backends[index].delete(key)

    def list_keys(self, prefix: str = "", overlap: bool = True) -> Event:
        """Scatter-gather LIST across every shard; value = sorted names.

        With ``overlap`` (the recovery fan) the per-shard LISTs are all
        in flight at once and the merge fires when the slowest shard
        answers — total latency ~= max over shards.  Without it the
        sweep degenerates to the sequential per-shard walk the
        pre-pipeline mount performed (latency ~= sum over shards), kept
        selectable so the overlap win stays measurable.
        """
        done = self.sim.event()
        for index in range(self.n_shards):
            count_shard_op(self.obs, index, self.n_shards, "lists")

        def gather():
            names: List[str] = []
            if overlap:
                events = [b.list_keys(prefix) for b in self.backends]
                yield self.sim.all_of(events)
                for ev in events:
                    names.extend(ev.value)
            else:
                for backend in self.backends:
                    ev = backend.list_keys(prefix)
                    shard_names = yield ev
                    names.extend(shard_names)
            done.succeed(sorted(names))

        self.sim.process(gather(), name=f"list-fan:{prefix or '*'}")
        return done


def make_sharded_backend(
    sim: Simulator,
    network: NetworkLink,
    cluster_factory: Callable[[Simulator], StorageCluster],
    n_shards: int,
    layout: str = "round-robin",
    obs: Optional[Registry] = None,
    request_latency: float = 5.9e-3,
) -> ShardedSimulatedBackend:
    """Build N shard endpoints, each over its own fresh cluster.

    The ``network`` link is shared (one client NIC); the clusters are
    independent, which is the whole point — that is where the aggregate
    write bandwidth comes from.
    """
    registry = obs if obs is not None else Registry()
    backends = [
        SimulatedObjectStore(
            sim,
            cluster_factory(sim),
            network,
            request_latency=request_latency,
            obs=registry,
        )
        for _ in range(n_shards)
    ]
    return ShardedSimulatedBackend(
        backends, ShardRouter(n_shards, layout), obs=registry
    )
