"""Flow-sensitive analysis engine for the LSVD invariant checker.

The single-pass AST rules (LSVD001-LSVD009) can ban a call; they cannot
see *paths*.  The paper's ordering invariants — ack only after the log
record is durable (§3.2), free a victim only after the relocated copy
and the covering checkpoint settle (§3.5) — are statements about what
must happen *before* something else *on every path*, including the
exception paths a refactor quietly adds.  This package supplies the
machinery the LSVD010-LSVD013 rules are built on:

* :mod:`repro.lint.flow.cfg` — per-function control-flow graphs over
  the Python AST (branches, loops, try/except/finally, with,
  return/raise/break/continue edges, ``await``/``yield`` points);
* :mod:`repro.lint.flow.dataflow` — a small worklist solver running
  forward or backward over a CFG with edge-sensitive transfers;
* :mod:`repro.lint.flow.typestate` — per-variable gen/kill lattices
  (acquire / consume / branch-refine) shared by the typestate rules.

Flow rules are ordinary :class:`repro.lint.framework.Rule` subclasses:
they plug into the same registry, suppressions, allowlists, and
reporters as the AST rules.
"""

from repro.lint.flow.cfg import CFG, Edge, Node, build_cfg, iter_function_cfgs
from repro.lint.flow.dataflow import FlowAnalysis, Solution, solve
from repro.lint.flow.typestate import Pending, TypestateAnalysis

__all__ = [
    "CFG",
    "Edge",
    "FlowAnalysis",
    "Node",
    "Pending",
    "Solution",
    "TypestateAnalysis",
    "build_cfg",
    "iter_function_cfgs",
    "solve",
]
