"""Per-function control-flow graphs over the Python AST.

Granularity is one node per *statement*; compound statements contribute
a head node holding only the parts they actually evaluate (``if``/
``while`` heads hold the test, ``for`` heads the target and iterator,
``with`` heads the context-manager items), so dataflow transfers never
accidentally walk a branch body through its head.  Three synthetic
nodes frame every function: ``entry``, ``exit`` (normal completion,
including every ``return``), and ``raise-exit`` (uncaught exception).

Edge kinds
----------

``next``
    ordinary fallthrough.
``true`` / ``false``
    the two sides of an ``if``/``while``/``assert`` head; both carry
    the test expression in :attr:`Edge.cond` so analyses can refine
    facts (e.g. kill a handle on the ``handle is None`` branch).
``loop`` / ``loop-exit``
    a ``for`` head entering its body / falling through after
    exhaustion (the body may run zero times).
``except``
    a statement that may raise, jumping to the enclosing handler
    dispatch (or ``raise-exit``).
``handler`` / ``raise``
    dispatch fan-out to one ``except`` clause / escape past every
    clause.
``return`` / ``break`` / ``continue``
    the non-local exits, routed through any enclosing ``finally``.
``case``
    a ``match`` head entering one case body.

``finally`` bodies are duplicated lazily per *continuation* (normal
fallthrough, exception, return, break, continue), so a fact that is
clean on the return path but leaking on the exception path stays
distinguishable — the classic try/finally precision trap.  Nested
function and class bodies are opaque single statements here; each
``def`` gets its own CFG via :func:`iter_function_cfgs`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: synthetic node kinds
ENTRY = "entry"
EXIT = "exit"
RAISE_EXIT = "raise-exit"
#: real node kinds
STMT = "stmt"
HANDLER = "handler"
DISPATCH = "dispatch"

#: AST nodes whose presence makes a statement "able to raise" — the
#: deliberate approximation is call-shaped work plus explicit raises;
#: pure name/constant shuffling is treated as non-raising.
_RAISING = (
    ast.Call,
    ast.Raise,
    ast.Assert,
    ast.Await,
    ast.Yield,
    ast.YieldFrom,
    ast.Subscript,
    ast.Attribute,
    ast.BinOp,
)

_NESTED_SCOPE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def walk_in_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested def/class/lambda."""
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, _NESTED_SCOPE):
            continue
        yield from walk_in_scope(child)


def _any_in_scope(parts: Sequence[ast.AST], kinds: Tuple[type, ...]) -> bool:
    return any(
        isinstance(sub, kinds) for part in parts for sub in walk_in_scope(part)
    )


@dataclass
class Edge:
    """A directed CFG edge; ``cond`` is set on true/false edges."""

    src: int
    dst: int
    kind: str
    cond: Optional[ast.expr] = None


class Node:
    """One CFG node: a statement head, a handler, or a synthetic mark."""

    __slots__ = ("index", "kind", "stmt", "parts", "suspends", "succ", "pred")

    def __init__(
        self,
        index: int,
        kind: str,
        stmt: Optional[ast.AST] = None,
        parts: Sequence[ast.AST] = (),
        suspends: bool = False,
    ) -> None:
        self.index = index
        self.kind = kind
        #: the full statement (or ExceptHandler) this node anchors
        self.stmt = stmt
        #: the AST fragments this node actually evaluates — what
        #: dataflow transfers should walk (never a branch body)
        self.parts: Tuple[ast.AST, ...] = tuple(parts)
        #: True when evaluating this node crosses an await/yield point
        self.suspends = suspends
        self.succ: List[Edge] = []
        self.pred: List[Edge] = []

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        label = type(self.stmt).__name__ if self.stmt is not None else ""
        return f"<Node {self.index} {self.kind} {label} line={self.line}>"


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self, func: FuncDef) -> None:
        self.func = func
        self.nodes: List[Node] = []
        self.entry = self.new_node(ENTRY)
        self.exit = self.new_node(EXIT)
        self.raise_exit = self.new_node(RAISE_EXIT)
        self._edge_keys: Set[Tuple[int, int, str]] = set()

    # -- construction ----------------------------------------------------
    def new_node(
        self,
        kind: str,
        stmt: Optional[ast.AST] = None,
        parts: Sequence[ast.AST] = (),
        suspends: bool = False,
    ) -> Node:
        node = Node(len(self.nodes), kind, stmt, parts, suspends)
        self.nodes.append(node)
        return node

    def add_edge(
        self, src: Node, dst: Node, kind: str, cond: Optional[ast.expr] = None
    ) -> None:
        key = (src.index, dst.index, kind)
        if key in self._edge_keys:
            return
        self._edge_keys.add(key)
        edge = Edge(src.index, dst.index, kind, cond)
        src.succ.append(edge)
        dst.pred.append(edge)

    # -- queries ---------------------------------------------------------
    def stmt_nodes(self) -> Iterator[Node]:
        """Every non-synthetic node, in creation order."""
        for node in self.nodes:
            if node.kind in (STMT, HANDLER):
                yield node

    def node_for(self, stmt: ast.AST) -> Optional[Node]:
        for node in self.nodes:
            if node.stmt is stmt:
                return node
        return None

    def nodes_at_line(self, line: int) -> List[Node]:
        return [n for n in self.nodes if n.line == line]

    def reachable(
        self, src: Node, dst: Node, avoid: Optional[Set[int]] = None
    ) -> bool:
        """True if ``dst`` is reachable from ``src`` skipping ``avoid``."""
        blocked = avoid or set()
        seen: Set[int] = set()
        stack = [src.index]
        while stack:
            cur = stack.pop()
            if cur == dst.index:
                return True
            if cur in seen or cur in blocked:
                continue
            seen.add(cur)
            stack.extend(e.dst for e in self.nodes[cur].succ)
        return False


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------

#: a lazily-resolved jump target: calling it materialises (at most once
#: per finally copy) the node control actually lands on
_Thunk = Callable[[], Node]


@dataclass
class _Ctx:
    """Where each kind of statement exit currently leads."""

    nxt: _Thunk
    exc: _Thunk
    ret: _Thunk
    brk: Optional[_Thunk] = None
    cont: Optional[_Thunk] = None


def _is_constant_true(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Constant) and bool(expr.value)


def _catches_everything(handlers: Sequence[ast.excepthandler]) -> bool:
    broad = ("Exception", "BaseException")
    for handler in handlers:
        if handler.type is None:
            return True
        if isinstance(handler.type, ast.Name) and handler.type.id in broad:
            return True
        if isinstance(handler.type, ast.Tuple) and any(
            isinstance(e, ast.Name) and e.id in broad for e in handler.type.elts
        ):
            return True
    return False


class _Builder:
    def __init__(self, func: FuncDef) -> None:
        self.cfg = CFG(func)

    def build(self) -> CFG:
        cfg = self.cfg
        ctx = _Ctx(
            nxt=lambda: cfg.exit,
            exc=lambda: cfg.raise_exit,
            ret=lambda: cfg.exit,
        )
        first = self._seq(cfg.func.body, ctx)
        cfg.add_edge(cfg.entry, first, "next")
        return cfg

    # -- sequencing ------------------------------------------------------
    def _seq(self, stmts: Sequence[ast.stmt], ctx: _Ctx) -> Node:
        """Entry node of a statement sequence (``ctx.nxt`` if empty)."""
        follow = ctx.nxt
        for stmt in reversed(stmts):
            node = self._stmt(stmt, replace(ctx, nxt=follow))
            follow = (lambda n: lambda: n)(node)
        return follow()

    def _lazy_seq(self, stmts: Sequence[ast.stmt], ctx: _Ctx) -> _Thunk:
        built: List[Node] = []

        def thunk() -> Node:
            if not built:
                built.append(self._seq(stmts, ctx))
            return built[0]

        return thunk

    # -- statement dispatch ----------------------------------------------
    def _stmt(self, stmt: ast.stmt, ctx: _Ctx) -> Node:
        if isinstance(stmt, ast.If):
            return self._if(stmt, ctx)
        if isinstance(stmt, ast.While):
            return self._while(stmt, ctx)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, ctx)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, ctx)
        if hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar):
            return self._try(stmt, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, ctx)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, ctx)
        if isinstance(stmt, ast.Return):
            parts = [stmt.value] if stmt.value is not None else []
            node = self._simple(stmt, parts)
            self.cfg.add_edge(node, ctx.ret(), "return")
            if _any_in_scope(node.parts, _RAISING):
                self.cfg.add_edge(node, ctx.exc(), "except")
            return node
        if isinstance(stmt, ast.Raise):
            parts = [p for p in (stmt.exc, stmt.cause) if p is not None]
            node = self._simple(stmt, parts)
            self.cfg.add_edge(node, ctx.exc(), "raise")
            return node
        if isinstance(stmt, ast.Break):
            node = self._simple(stmt, [])
            self.cfg.add_edge(node, (ctx.brk or ctx.nxt)(), "break")
            return node
        if isinstance(stmt, ast.Continue):
            node = self._simple(stmt, [])
            self.cfg.add_edge(node, (ctx.cont or ctx.nxt)(), "continue")
            return node
        if isinstance(stmt, ast.Assert):
            parts = [stmt.test] + ([stmt.msg] if stmt.msg is not None else [])
            node = self._simple(stmt, parts)
            self.cfg.add_edge(node, ctx.nxt(), "true", cond=stmt.test)
            self.cfg.add_edge(node, ctx.exc(), "raise")
            return node
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            parts = list(stmt.decorator_list)
            node = self._simple(stmt, parts)
            self.cfg.add_edge(node, ctx.nxt(), "next")
            if _any_in_scope(node.parts, _RAISING):
                self.cfg.add_edge(node, ctx.exc(), "except")
            return node
        if isinstance(stmt, ast.ClassDef):
            parts = list(stmt.decorator_list) + list(stmt.bases)
            node = self._simple(stmt, parts)
            self.cfg.add_edge(node, ctx.nxt(), "next")
            if _any_in_scope(node.parts, _RAISING):
                self.cfg.add_edge(node, ctx.exc(), "except")
            return node
        # plain statement: Assign, Expr, AugAssign, Delete, Pass, ...
        node = self._simple(stmt, [stmt])
        self.cfg.add_edge(node, ctx.nxt(), "next")
        if _any_in_scope(node.parts, _RAISING):
            self.cfg.add_edge(node, ctx.exc(), "except")
        return node

    def _simple(self, stmt: ast.AST, parts: Sequence[ast.AST]) -> Node:
        suspends = _any_in_scope(
            parts, (ast.Await, ast.Yield, ast.YieldFrom)
        )
        return self.cfg.new_node(STMT, stmt, parts, suspends)

    # -- compound statements ---------------------------------------------
    def _if(self, stmt: ast.If, ctx: _Ctx) -> Node:
        head = self._simple(stmt, [stmt.test])
        body = self._seq(stmt.body, ctx)
        orelse = self._seq(stmt.orelse, ctx) if stmt.orelse else ctx.nxt()
        self.cfg.add_edge(head, body, "true", cond=stmt.test)
        self.cfg.add_edge(head, orelse, "false", cond=stmt.test)
        if _any_in_scope(head.parts, _RAISING):
            self.cfg.add_edge(head, ctx.exc(), "except")
        return head

    def _while(self, stmt: ast.While, ctx: _Ctx) -> Node:
        head = self._simple(stmt, [stmt.test])
        head_thunk: _Thunk = lambda: head  # noqa: E731 - loop back-edge
        after = self._seq(stmt.orelse, ctx) if stmt.orelse else ctx.nxt()
        body_ctx = replace(ctx, nxt=head_thunk, brk=ctx.nxt, cont=head_thunk)
        body = self._seq(stmt.body, body_ctx)
        self.cfg.add_edge(head, body, "true", cond=stmt.test)
        if not _is_constant_true(stmt.test):
            self.cfg.add_edge(head, after, "false", cond=stmt.test)
        if _any_in_scope(head.parts, _RAISING):
            self.cfg.add_edge(head, ctx.exc(), "except")
        return head

    def _for(self, stmt: Union[ast.For, ast.AsyncFor], ctx: _Ctx) -> Node:
        head = self._simple(stmt, [stmt.target, stmt.iter])
        if isinstance(stmt, ast.AsyncFor):
            head.suspends = True
        head_thunk: _Thunk = lambda: head  # noqa: E731 - loop back-edge
        after = self._seq(stmt.orelse, ctx) if stmt.orelse else ctx.nxt()
        body_ctx = replace(ctx, nxt=head_thunk, brk=ctx.nxt, cont=head_thunk)
        body = self._seq(stmt.body, body_ctx)
        self.cfg.add_edge(head, body, "loop")
        self.cfg.add_edge(head, after, "loop-exit")
        self.cfg.add_edge(head, ctx.exc(), "except")
        return head

    def _with(self, stmt: Union[ast.With, ast.AsyncWith], ctx: _Ctx) -> Node:
        head = self._simple(stmt, list(stmt.items))
        if isinstance(stmt, ast.AsyncWith):
            head.suspends = True
        body = self._seq(stmt.body, ctx)
        self.cfg.add_edge(head, body, "next")
        self.cfg.add_edge(head, ctx.exc(), "except")
        return head

    def _match(self, stmt: ast.Match, ctx: _Ctx) -> Node:
        head = self._simple(stmt, [stmt.subject])
        for case in stmt.cases:
            body = self._seq(case.body, ctx)
            self.cfg.add_edge(head, body, "case")
        self.cfg.add_edge(head, ctx.nxt(), "next")
        if _any_in_scope(head.parts, _RAISING):
            self.cfg.add_edge(head, ctx.exc(), "except")
        return head

    def _try(self, stmt: ast.Try, ctx: _Ctx) -> Node:
        if stmt.finalbody:
            copies: Dict[int, Node] = {}

            def fin(cont: Optional[_Thunk]) -> _Thunk:
                target_thunk = cont or ctx.nxt

                def thunk() -> Node:
                    target = target_thunk()
                    if target.index not in copies:
                        copies[target.index] = self._seq(
                            stmt.finalbody, replace(ctx, nxt=lambda: target)
                        )
                    return copies[target.index]

                return thunk

        else:

            def fin(cont: Optional[_Thunk]) -> _Thunk:
                return cont or ctx.nxt

        fin_nxt = fin(ctx.nxt)
        fin_exc = fin(ctx.exc)
        fin_ret = fin(ctx.ret)
        fin_brk = fin(ctx.brk) if ctx.brk is not None else None
        fin_cont = fin(ctx.cont) if ctx.cont is not None else None
        handler_ctx = _Ctx(
            nxt=fin_nxt, exc=fin_exc, ret=fin_ret, brk=fin_brk, cont=fin_cont
        )

        if stmt.handlers:
            dispatch = self.cfg.new_node(DISPATCH, stmt)
            for handler in stmt.handlers:
                parts = [handler.type] if handler.type is not None else []
                hnode = self.cfg.new_node(HANDLER, handler, parts)
                hbody = self._seq(handler.body, handler_ctx)
                self.cfg.add_edge(dispatch, hnode, "handler")
                self.cfg.add_edge(hnode, hbody, "next")
            if not _catches_everything(stmt.handlers):
                self.cfg.add_edge(dispatch, fin_exc(), "raise")
            body_exc: _Thunk = lambda: dispatch  # noqa: E731
        else:
            body_exc = fin_exc

        body_follow = (
            self._lazy_seq(stmt.orelse, handler_ctx) if stmt.orelse else fin_nxt
        )
        body_ctx = _Ctx(
            nxt=body_follow, exc=body_exc, ret=fin_ret, brk=fin_brk, cont=fin_cont
        )
        return self._seq(stmt.body, body_ctx)


def build_cfg(func: FuncDef) -> CFG:
    """Build the CFG of one ``def``; nested defs are opaque statements."""
    return _Builder(func).build()


def iter_functions(
    tree: ast.AST, prefix: str = ""
) -> Iterator[Tuple[str, FuncDef]]:
    """Yield ``(qualname, def-node)`` for every function, nested included."""
    for child in ast.iter_child_nodes(tree):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{child.name}"
            yield qualname, child
            yield from iter_functions(child, prefix=f"{qualname}.")
        elif isinstance(child, ast.ClassDef):
            yield from iter_functions(child, prefix=f"{prefix}{child.name}.")
        else:
            yield from iter_functions(child, prefix=prefix)


def iter_function_cfgs(tree: ast.AST) -> Iterator[Tuple[str, FuncDef, CFG]]:
    """Yield ``(qualname, def-node, CFG)`` for every function in a module."""
    for qualname, func in iter_functions(tree):
        yield qualname, func, build_cfg(func)
