"""A small worklist dataflow solver over :mod:`repro.lint.flow.cfg`.

An analysis supplies a join semilattice (``initial`` is the identity of
``join``), a per-node ``transfer``, and optionally an edge-sensitive
``transfer_edge`` — the hook that lets ``true``/``false`` edges refine
facts (e.g. "on this branch the handle is known ``None``").  The solver
iterates to a fixpoint in either direction:

* **forward**: ``before[n]`` is the join over incoming edges of the
  transferred predecessor facts; ``boundary`` seeds ``entry``.
* **backward**: ``after[n]`` is the join over outgoing edges of the
  transferred successor facts; ``boundary`` seeds ``exit`` and
  ``raise-exit`` (they may seed differently — a leak rule forgives
  raising paths by giving ``raise-exit`` a different boundary fact).

Facts must be immutable values with structural equality (frozensets of
small records, in practice); transfers must be pure and monotone, which
every gen/kill formulation is.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Generic, Set, TypeVar

from repro.lint.flow.cfg import CFG, Edge, Node

T = TypeVar("T")

FORWARD = "forward"
BACKWARD = "backward"


class FlowAnalysis(Generic[T]):
    """One dataflow problem; subclass and fill in the lattice."""

    direction: str = FORWARD

    def boundary(self, cfg: CFG, node: Node) -> T:
        """Fact seeded at a boundary node (entry, or exit/raise-exit)."""
        raise NotImplementedError

    def initial(self) -> T:
        """The join identity ("no paths reach here yet")."""
        raise NotImplementedError

    def join(self, a: T, b: T) -> T:
        raise NotImplementedError

    def transfer(self, node: Node, fact: T) -> T:
        """Fact after executing ``node`` given the fact before it."""
        raise NotImplementedError

    def transfer_edge(self, edge: Edge, fact: T) -> T:
        """Refine a fact crossing one edge (default: unchanged)."""
        return fact


@dataclass
class Solution(Generic[T]):
    """Fixpoint facts per node index.

    ``before`` is the fact on the *entry* side of each node in program
    order and ``after`` on the exit side, for both directions — a
    backward analysis still reports ``before[n]`` as "what holds when
    control is about to execute ``n``".
    """

    before: Dict[int, T]
    after: Dict[int, T]


def solve(cfg: CFG, analysis: FlowAnalysis[T]) -> Solution[T]:
    if analysis.direction == FORWARD:
        return _solve_forward(cfg, analysis)
    if analysis.direction == BACKWARD:
        return _solve_backward(cfg, analysis)
    raise ValueError(f"unknown direction {analysis.direction!r}")


def _budget(cfg: CFG) -> int:
    # gen/kill lattices converge in O(nodes * facts); this only guards
    # against a non-monotone transfer written by a future rule
    return 64 * len(cfg.nodes) + 1024


def _solve_forward(cfg: CFG, analysis: FlowAnalysis[T]) -> Solution[T]:
    before: Dict[int, T] = {n.index: analysis.initial() for n in cfg.nodes}
    after: Dict[int, T] = {}
    before[cfg.entry.index] = analysis.boundary(cfg, cfg.entry)

    worklist: Deque[Node] = deque(cfg.nodes)
    queued: Set[int] = {n.index for n in cfg.nodes}
    steps = _budget(cfg)
    while worklist:
        steps -= 1
        if steps < 0:  # pragma: no cover - guards a buggy transfer
            raise RuntimeError("dataflow solver failed to converge")
        node = worklist.popleft()
        queued.discard(node.index)
        out = analysis.transfer(node, before[node.index])
        after[node.index] = out
        for edge in node.succ:
            contrib = analysis.transfer_edge(edge, out)
            merged = analysis.join(before[edge.dst], contrib)
            if merged != before[edge.dst]:
                before[edge.dst] = merged
                if edge.dst not in queued:
                    queued.add(edge.dst)
                    worklist.append(cfg.nodes[edge.dst])
    return Solution(before=before, after=after)


def _solve_backward(cfg: CFG, analysis: FlowAnalysis[T]) -> Solution[T]:
    after: Dict[int, T] = {n.index: analysis.initial() for n in cfg.nodes}
    before: Dict[int, T] = {}
    boundary_nodes = {cfg.exit.index, cfg.raise_exit.index}

    worklist: Deque[Node] = deque(reversed(cfg.nodes))
    queued: Set[int] = {n.index for n in cfg.nodes}
    steps = _budget(cfg)
    while worklist:
        steps -= 1
        if steps < 0:  # pragma: no cover - guards a buggy transfer
            raise RuntimeError("dataflow solver failed to converge")
        node = worklist.popleft()
        queued.discard(node.index)
        if node.index in boundary_nodes:
            fact = analysis.boundary(cfg, node)
        else:
            fact = analysis.transfer(node, after[node.index])
        before[node.index] = fact
        for edge in node.pred:
            contrib = analysis.transfer_edge(edge, fact)
            merged = analysis.join(after[edge.src], contrib)
            if merged != after[edge.src]:
                after[edge.src] = merged
                if edge.src not in queued:
                    queued.add(edge.src)
                    worklist.append(cfg.nodes[edge.src])
    return Solution(before=before, after=after)
