"""Typestate lattices and the AST vocabulary shared by the flow rules.

A *typestate* fact is a frozenset of :class:`Pending` records — "this
key (a local variable holding a PUT handle, or a mutated attribute) was
put into a must-be-resolved state at that node and has not been
resolved yet".  :class:`TypestateAnalysis` is the forward gen/kill
skeleton: subclasses say what *acquires* (gen), what *resolves* (kill),
and which branch edges *refine* (a ``handle is None`` test proves there
is nothing to settle on the true side).

The module also collects the small AST predicates every flow rule
needs — trailing receiver names, awaited-call unwrapping, load-name
collection, and guard/consumption splitting for branch tests — so the
rules stay about *invariants*, not AST plumbing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.flow.cfg import CFG, Edge, Node, walk_in_scope
from repro.lint.flow.dataflow import FlowAnalysis

PendingSet = FrozenSet["Pending"]


@dataclass(frozen=True)
class Pending:
    """One unresolved obligation: ``key`` acquired at ``origin``."""

    key: str
    origin: int  # node index of the acquiring statement
    line: int


class TypestateAnalysis(FlowAnalysis[PendingSet]):
    """Forward may-analysis: which obligations may still be open here."""

    direction = "forward"

    def boundary(self, cfg: CFG, node: Node) -> PendingSet:
        return frozenset()

    def initial(self) -> PendingSet:
        return frozenset()

    def join(self, a: PendingSet, b: PendingSet) -> PendingSet:
        return a | b

    def transfer(self, node: Node, fact: PendingSet) -> PendingSet:
        killed = self.kills(node, fact)
        fact = frozenset(p for p in fact if p.key not in killed)
        return fact | frozenset(self.gens(node))

    def transfer_edge(self, edge: Edge, fact: PendingSet) -> PendingSet:
        refuted = self.refuted_keys(edge)
        if not refuted:
            return fact
        return frozenset(p for p in fact if p.key not in refuted)

    # -- subclass hooks --------------------------------------------------
    def gens(self, node: Node) -> Iterable[Pending]:
        """Obligations this node opens."""
        return ()

    def kills(self, node: Node, fact: PendingSet) -> Set[str]:
        """Keys this node resolves."""
        return set()

    def refuted_keys(self, edge: Edge) -> Set[str]:
        """Keys proven vacuous on this edge (default: branch refinement)."""
        if edge.cond is None:
            return set()
        return branch_refuted_names(edge.cond, edge.kind)


# ---------------------------------------------------------------------------
# AST vocabulary
# ---------------------------------------------------------------------------


def unwrap_effect(expr: Optional[ast.expr]) -> Optional[ast.expr]:
    """Strip ``await`` / ``yield`` wrappers off an expression."""
    while True:
        if isinstance(expr, ast.Await):
            expr = expr.value
        elif isinstance(expr, (ast.Yield, ast.YieldFrom)):
            expr = expr.value
        else:
            return expr


def call_name(call: ast.Call) -> str:
    """The called name: ``foo`` for ``foo(..)``, ``put`` for ``x.put(..)``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def receiver_tail(call: ast.Call) -> str:
    """Trailing identifier of the receiver: ``self.dst_shard.put`` -> ``dst_shard``."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return ""
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return ""


def receiver_matches(tail: str, receivers: Sequence[str]) -> bool:
    """True when ``tail`` is a configured receiver name or a suffix of
    one (``dst_shard`` matches the ``shard`` entry)."""
    return any(
        tail == entry or tail.endswith("_" + entry) for entry in receivers
    )


def calls_in(parts: Sequence[ast.AST]) -> List[ast.Call]:
    return [
        sub
        for part in parts
        for sub in walk_in_scope(part)
        if isinstance(sub, ast.Call)
    ]


def calls_named(parts: Sequence[ast.AST], names: Sequence[str]) -> List[ast.Call]:
    return [c for c in calls_in(parts) if call_name(c) in names]


def loads_in(parts: Sequence[ast.AST]) -> Set[str]:
    """Every plain name read anywhere in ``parts``."""
    return {
        sub.id
        for part in parts
        for sub in walk_in_scope(part)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
    }


def _is_none(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Constant) and expr.value is None


def split_guard(test: ast.expr) -> Tuple[Set[str], List[ast.expr]]:
    """Split a branch test into guard-only names and consuming subtrees.

    Guard positions — a bare name, ``x is None`` / ``x is not None``,
    and ``and``/``or``/``not`` combinations of those — merely *inspect*
    a handle; anything else (a call argument, an attribute access) is a
    real use.  Returns ``(guard_names, other_subtrees)``.
    """
    guard: Set[str] = set()
    other: List[ast.expr] = []

    def visit(expr: ast.expr) -> None:
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                visit(value)
        elif isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
            visit(expr.operand)
        elif isinstance(expr, ast.Name):
            guard.add(expr.id)
        elif (
            isinstance(expr, ast.Compare)
            and len(expr.ops) == 1
            and isinstance(expr.ops[0], (ast.Is, ast.IsNot, ast.Eq, ast.NotEq))
        ):
            left, right = expr.left, expr.comparators[0]
            if _is_none(right) and isinstance(left, ast.Name):
                guard.add(left.id)
            elif _is_none(left) and isinstance(right, ast.Name):
                guard.add(right.id)
            else:
                other.append(expr)
        else:
            other.append(expr)

    visit(test)
    return guard, other


def branch_refuted_names(cond: ast.expr, edge_kind: str) -> Set[str]:
    """Names proven ``None``/falsy when control takes this edge.

    ``if h is None: <true edge>`` and ``if h: ... else: <false edge>``
    both prove ``h`` holds nothing worth settling on that side.  Only
    top-level conjuncts/disjuncts are considered, and a guard that also
    *uses* the name non-trivially refutes nothing.
    """
    refuted: Set[str] = set()

    def visit(expr: ast.expr, branch: str) -> None:
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
            visit(expr.operand, "false" if branch == "true" else "true")
        elif isinstance(expr, ast.Name):
            if branch == "false":
                refuted.add(expr.id)
        elif (
            isinstance(expr, ast.Compare)
            and len(expr.ops) == 1
            and isinstance(expr.ops[0], (ast.Is, ast.IsNot, ast.Eq, ast.NotEq))
        ):
            flip = isinstance(expr.ops[0], (ast.IsNot, ast.NotEq))
            left, right = expr.left, expr.comparators[0]
            name: Optional[str] = None
            if _is_none(right) and isinstance(left, ast.Name):
                name = left.id
            elif _is_none(left) and isinstance(right, ast.Name):
                name = right.id
            if name is not None:
                hit = branch == ("false" if flip else "true")
                if hit:
                    refuted.add(name)
        elif isinstance(expr, ast.BoolOp):
            # `if a is None and b is None:` true edge proves both; the
            # false edge of an `or` likewise refutes every disjunct
            wanted = "true" if isinstance(expr.op, ast.And) else "false"
            if branch == wanted:
                for value in expr.values:
                    visit(value, branch)

    if edge_kind in ("true", "false"):
        visit(cond, edge_kind)
    return refuted


def consuming_loads(node: Node) -> Set[str]:
    """Names this node reads in a way that counts as *using* a handle.

    For branch heads (``if``/``while``/``assert``) the guard-only names
    are excluded: ``if handle is None: return`` inspects the handle but
    does not consume it — the settle obligation survives the test.
    """
    stmt = node.stmt
    if isinstance(stmt, (ast.If, ast.While, ast.Assert)) and node.parts:
        test = node.parts[0]
        assert isinstance(test, ast.expr)
        guard, other = split_guard(test)
        loads = loads_in(list(node.parts[1:])) | loads_in(list(other))
        return loads
    return loads_in(node.parts)


def attr_on_self(expr: ast.expr) -> Optional[str]:
    """``self.<attr>`` -> ``attr`` (one level only)."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def matches_marker(name: str, markers: Sequence[str]) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in markers)
