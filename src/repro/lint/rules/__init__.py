"""Rule registry: one module per rule family."""

from repro.lint.rules.async_safety import AsyncCancellationRule
from repro.lint.rules.barrier_commit import BarrierCoalescingRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.durability import DurabilityOrderingRule
from repro.lint.rules.hotpath import HotPathRule
from repro.lint.rules.immutability import ImmutabilityRule
from repro.lint.rules.obs import ObservabilityRule
from repro.lint.rules.placement import PlacementConfinementRule
from repro.lint.rules.recovery import RecoveryHandlerRule
from repro.lint.rules.recovery_order import RecoveryMutationOrderRule
from repro.lint.rules.sequence import SequenceHygieneRule
from repro.lint.rules.settlement import SettlementLeakRule
from repro.lint.rules.sharding import ShardOwnershipRule
from repro.lint.rules.span_hygiene import SpanHygieneRule
from repro.lint.rules.structs import StructConsistencyRule
from repro.lint.rules.tenant_isolation import TenantIsolationRule
from repro.lint.rules.units import UnitConfusionRule

#: every shipped rule, in code order
ALL_RULES = [
    ImmutabilityRule,
    SequenceHygieneRule,
    DeterminismRule,
    RecoveryHandlerRule,
    UnitConfusionRule,
    StructConsistencyRule,
    ObservabilityRule,
    ShardOwnershipRule,
    HotPathRule,
    SettlementLeakRule,
    DurabilityOrderingRule,
    RecoveryMutationOrderRule,
    AsyncCancellationRule,
    BarrierCoalescingRule,
    SpanHygieneRule,
    TenantIsolationRule,
    PlacementConfinementRule,
]

__all__ = [
    "ALL_RULES",
    "AsyncCancellationRule",
    "BarrierCoalescingRule",
    "DeterminismRule",
    "DurabilityOrderingRule",
    "HotPathRule",
    "ImmutabilityRule",
    "ObservabilityRule",
    "PlacementConfinementRule",
    "RecoveryHandlerRule",
    "RecoveryMutationOrderRule",
    "SequenceHygieneRule",
    "SettlementLeakRule",
    "ShardOwnershipRule",
    "SpanHygieneRule",
    "StructConsistencyRule",
    "TenantIsolationRule",
    "UnitConfusionRule",
]
