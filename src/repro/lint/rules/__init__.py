"""Rule registry: one module per rule family."""

from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.hotpath import HotPathRule
from repro.lint.rules.immutability import ImmutabilityRule
from repro.lint.rules.obs import ObservabilityRule
from repro.lint.rules.recovery import RecoveryHandlerRule
from repro.lint.rules.sequence import SequenceHygieneRule
from repro.lint.rules.sharding import ShardOwnershipRule
from repro.lint.rules.structs import StructConsistencyRule
from repro.lint.rules.units import UnitConfusionRule

#: every shipped rule, in code order
ALL_RULES = [
    ImmutabilityRule,
    SequenceHygieneRule,
    DeterminismRule,
    RecoveryHandlerRule,
    UnitConfusionRule,
    StructConsistencyRule,
    ObservabilityRule,
    ShardOwnershipRule,
    HotPathRule,
]

__all__ = [
    "ALL_RULES",
    "DeterminismRule",
    "HotPathRule",
    "ImmutabilityRule",
    "ObservabilityRule",
    "RecoveryHandlerRule",
    "SequenceHygieneRule",
    "ShardOwnershipRule",
    "StructConsistencyRule",
    "UnitConfusionRule",
]
