"""LSVD002 — sequence-number arithmetic is owned by the log layer.

Strict monotonicity of object/record sequence numbers is what makes the
backend stream recoverable: recovery mounts the longest consecutive run
after the newest checkpoint (§3.3), and the seq-collision regression
(cache rollback reusing a destaged sequence) showed what happens when a
second module starts computing sequence numbers on its own.  Arithmetic
on a ``seq``-like identifier is therefore confined to ``core/log.py``,
``core/block_store.py`` and ``core/write_cache.py``; other modules must
use the accessors those layers export (``BlockStore.newest_seq``,
``WriteCache.resume_after``...).  Comparisons are always fine — only
arithmetic that *produces* a sequence number is flagged.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.framework import ModuleContext, Rule

#: identifier shapes that denote a sequence number: ``seq``, ``_seq``,
#: ``next_seq``, ``record_sequence``...  Names merely *starting* with
#: ``seq`` (``seq_write_bw`` = *sequential* write bandwidth) do not match.
SEQ_NAME_RE = re.compile(r"(^|_)seq$|(^|_)sequence$")

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Div, ast.Mod)


def _seq_identifier(node: ast.expr) -> Optional[str]:
    """The matched identifier when ``node`` names a sequence value."""
    name = ""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name and SEQ_NAME_RE.search(name.lower()):
        return name
    return None


class SequenceHygieneRule(Rule):
    """Invariant:
        Sequence numbers are allocated in exactly one place (the log
        layer); arithmetic on ``seq``-named identifiers anywhere else
        risks forking the monotonic stream recovery depends on.

    Example violation::

        next_obj = volume.last_seq + 1   # second allocator, outside core/log

    Paper:
        §3.1 — the object stream is a single dense sequence; §3.3 —
        recovery stops at the first gap, so a duplicated or skipped
        number silently truncates every later write.
    """

    code = "LSVD002"
    name = "sequence-hygiene"
    summary = (
        "arithmetic on seq/sequence identifiers outside the log layer; "
        "monotonicity must be owned by core/log, block_store and write_cache"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        if config.module_allowed(ctx.path, config.sequence_allow):
            return
        for node in ast.walk(ctx.tree):
            name: Optional[str] = None
            if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_OPS):
                name = _seq_identifier(node.left) or _seq_identifier(node.right)
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, _ARITH_OPS):
                name = _seq_identifier(node.target)
            if name is None:
                continue
            yield self.diag(
                ctx,
                node,
                f"arithmetic on sequence identifier {name!r} outside the log "
                "layer; sequence allocation must stay monotone in one place (§3.3)",
                "use the log layer's accessor (e.g. BlockStore.newest_seq, "
                "WriteCache.resume_after) or move the computation into it",
            )
