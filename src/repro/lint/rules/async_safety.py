"""LSVD013 — no unsettled state mutation may straddle an await point.

The ROADMAP's pipelined async data plane turns today's synchronous
write path into coroutines, and coroutines can be *cancelled at any
await*.  If a function mutates settlement-coupled state (the extent
map, a pending-handles ledger, dirty-byte accounting) and only later —
on the far side of an ``await``/``yield`` — settles or registers that
mutation, cancellation in between leaves the mutation dangling with
nobody left to settle it: the async twin of the LSVD010 leak, but
reachable even when the code after the await is perfectly correct.
The rule runs the forward typestate analysis over ``async def`` bodies
only (the synchronous generator-based simulator is cooperative and
cannot be cancelled mid-yield) and flags every suspension point where
a mutation is still pending.  Critical-section helpers that must
straddle an await by design are blessed via ``async-allow``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Set

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.flow.cfg import Node, build_cfg, iter_functions
from repro.lint.flow.dataflow import solve
from repro.lint.flow.typestate import (
    Pending,
    PendingSet,
    TypestateAnalysis,
    attr_on_self,
    calls_named,
    matches_marker,
)
from repro.lint.framework import ModuleContext, Rule


def _mutated_attr(node: Node, config: LintConfig) -> str:
    """The settlement-coupled ``self.<attr>`` this node mutates, or ''."""

    def state_attr(expr: ast.expr) -> str:
        attr = attr_on_self(expr)
        if attr is not None and matches_marker(attr, config.async_state_markers):
            return attr
        return ""

    stmt = node.stmt
    if isinstance(stmt, (ast.Assign, ast.AugAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            attr = state_attr(target)
            if attr:
                return attr
            if isinstance(target, ast.Subscript):
                # registering into a pending/ledger container *is* the
                # settlement bookkeeping, not a dangling mutation
                base = state_attr(target.value)
                if base and "pending" not in base and "ledger" not in base:
                    return base
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        call = stmt.value
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in config.state_mutators
        ):
            attr = state_attr(call.func.value)
            if attr:
                return attr
    return ""


def _is_registration(node: Node, config: LintConfig) -> bool:
    """Settlement or ledger registration closes the critical window."""
    if calls_named(node.parts, config.async_settle_calls):
        return True
    stmt = node.stmt
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Subscript):
                attr = attr_on_self(target.value)
                if attr is not None and (
                    "pending" in attr or "ledger" in attr
                ):
                    return True
    return False


class _WindowAnalysis(TypestateAnalysis):
    """Forward facts: mutations not yet settled/registered."""

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def gens(self, node: Node) -> Iterable[Pending]:
        if _is_registration(node, self.config):
            return ()
        attr = _mutated_attr(node, self.config)
        if not attr:
            return ()
        return (Pending(key=attr, origin=node.index, line=node.line),)

    def kills(self, node: Node, fact: PendingSet) -> Set[str]:
        if _is_registration(node, self.config):
            return {p.key for p in fact}
        return set()


class AsyncCancellationRule(Rule):
    """Invariant:
        In an ``async def``, settlement-coupled state mutation and its
        settlement/registration must sit on the same side of every
        ``await``/``yield`` point: cancellation at a suspension point
        must never orphan a mutation nobody will settle.  Helpers that
        must straddle an await are blessed via ``async-allow``.

    Example violation::

        async def destage(self, batch):
            self._dirty_map[batch.seq] = batch     # mutation opens...
            await self.backend.put(batch.name, batch.data)
            self.ledger.settle_put(batch.seq)      # ...window closes late

    Paper:
        §3.7 — the prototype's completion handling: crash/cancellation
        between the cache-log write and backend settlement must leave
        state the recovery scan can reconcile, never a half-recorded
        in-memory claim.
    """

    code = "LSVD013"
    name = "async-cancellation-safety"
    summary = (
        "an async function mutates settlement-coupled state and crosses "
        "an await/yield point before settling or registering it"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        if not config.module_in_dirs(ctx.path, config.async_dirs):
            return
        allowed, whole = config.scoped_allow(ctx.path, config.async_allow)
        if whole:
            return
        for _qualname, func in iter_functions(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            if func.name in allowed:
                continue
            cfg = build_cfg(func)
            suspenders = [n for n in cfg.stmt_nodes() if n.suspends]
            if not suspenders:
                continue
            solution = solve(cfg, _WindowAnalysis(config))
            for node in suspenders:
                pending = solution.before.get(node.index, frozenset())
                if not pending:
                    continue
                oldest = min(pending, key=lambda p: (p.line, p.key))
                yield self.diag(
                    ctx,
                    node.stmt or func,
                    f"await/yield point while 'self.{oldest.key}' (mutated "
                    f"at line {oldest.line}) is not yet settled or "
                    "registered — cancellation here orphans the mutation",
                    "settle/register before suspending, or move the "
                    "mutation after the await; bless deliberate critical "
                    "sections via async-allow",
                )
