"""LSVD016 — tenant isolation: QoS enforcement confined, admission first.

Fleet multi-tenancy (§4.5's economics at host scale) is safe only if the
rate-enforcement machinery cannot be re-implemented or bypassed ad hoc.
Two checks, one syntactic and one flow-sensitive:

1. **Confinement** — constructing a token bucket / throttle
   (``QoSTokenBucket``, ``TenantThrottle``, ``ThrottleSet``,
   ``CoreAdmission``) or touching cross-tenant rate state
   (``self._throttles``, ``self._tenants``) is restricted to
   ``repro/fleet/``.  Declaring *limits* (``QoSLimits``) is policy, not
   enforcement, and stays legal everywhere.

2. **Admission-before-forward** — inside the fleet package and the two
   volume I/O entry layers (``core/volume.py``, ``runtime/lsvd.py``),
   any I/O entry point (function name containing ``write``/``read``/
   ``submit``) that forwards an I/O to a shared resource
   (``wc.append``, ``ssd.write``, ``volume.read``...) must be dominated
   by admission evidence on every path from function entry: an
   ``admit``/``_admission`` call, or the no-tenant branch of a
   ``self.qos is None`` test (no QoS attached means nothing to charge).
   The rule runs the same backward may-analysis as LSVD011: if an
   evidence-free path reaches the forward site, a tenant's I/O can
   enter the shared data plane without being charged to its buckets.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Sequence, Set

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.flow.cfg import CFG, Edge, Node, iter_function_cfgs, walk_in_scope
from repro.lint.flow.dataflow import BACKWARD, FlowAnalysis, solve
from repro.lint.flow.typestate import call_name, calls_named, receiver_tail
from repro.lint.framework import ModuleContext, Rule

ForwardSet = FrozenSet[int]


def _constructed_class(call: ast.Call) -> str:
    """Name of the class a ``Call`` constructs (``fleet.qos.X()`` -> X)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _mentions_qos(expr: ast.expr, markers: Sequence[str]) -> bool:
    for sub in walk_in_scope(expr):
        if isinstance(sub, ast.Attribute) and any(
            m in sub.attr for m in markers
        ):
            return True
        if isinstance(sub, ast.Name) and any(m in sub.id for m in markers):
            return True
    return False


def _is_admission_node(node: Node, config: LintConfig) -> bool:
    return bool(calls_named(node.parts, config.fleet_admission_calls))


def _edge_is_no_tenant(edge: Edge, config: LintConfig) -> bool:
    """Branch edges proving no QoS is attached: the true side of
    ``<qos> is None`` or the false side of ``<qos> is not None``."""
    cond = edge.cond
    if cond is None:
        return False
    for sub in walk_in_scope(cond):
        if not (
            isinstance(sub, ast.Compare)
            and len(sub.ops) == 1
            and isinstance(sub.comparators[0], ast.Constant)
            and sub.comparators[0].value is None
            and _mentions_qos(sub.left, config.fleet_qos_markers)
        ):
            continue
        if edge.kind == "true" and isinstance(sub.ops[0], ast.Is):
            return True
        if edge.kind == "false" and isinstance(sub.ops[0], ast.IsNot):
            return True
    return False


class _ForwardReachability(FlowAnalysis[ForwardSet]):
    """Backward: forward sites reachable from here with no admission."""

    direction = BACKWARD

    def __init__(self, config: LintConfig, forward_nodes: Set[int]) -> None:
        self.config = config
        self.forward_nodes = forward_nodes

    def boundary(self, cfg: CFG, node: Node) -> ForwardSet:
        return frozenset()

    def initial(self) -> ForwardSet:
        return frozenset()

    def join(self, a: ForwardSet, b: ForwardSet) -> ForwardSet:
        return a | b

    def transfer(self, node: Node, fact: ForwardSet) -> ForwardSet:
        if _is_admission_node(node, self.config):
            return frozenset()
        if node.index in self.forward_nodes:
            return fact | frozenset((node.index,))
        return fact

    def transfer_edge(self, edge: Edge, fact: ForwardSet) -> ForwardSet:
        if _edge_is_no_tenant(edge, self.config):
            return frozenset()
        return fact


class TenantIsolationRule(Rule):
    """Invariant:
        Per-tenant rate enforcement lives only in ``repro/fleet/`` —
        token buckets and cross-tenant throttle state are never
        constructed or mutated elsewhere — and every volume I/O entry
        point passes QoS admission before forwarding the I/O to a
        shared resource (cache log, SSD, data plane).

    Example violation::

        class MyVolume:
            def write(self, offset, data):
                self._throttles = {}              # cross-tenant state
                bucket = QoSTokenBucket(500.0)    # enforcement outside fleet/
                self.wc.append([(offset, data)])  # forward w/o admission

    Paper:
        §4.5 — fleet-scale sharing of one host and one backend account
        is the economic case; it holds only if no tenant can bypass
        admission control or starve another's paid-for rate.
    """

    code = "LSVD016"
    name = "tenant-isolation"
    summary = (
        "QoS enforcement (buckets, throttles, cross-tenant state) must stay "
        "in repro/fleet/, and volume I/O entry points must pass admission "
        "before forwarding to shared resources"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        in_fleet = config.module_in_dirs(ctx.path, config.fleet_allow)
        if not in_fleet:
            yield from self._check_confinement(ctx, config)
        if config.module_in_dirs(ctx.path, config.fleet_modules):
            yield from self._check_admission(ctx, config)

    # -- confinement (syntactic) ----------------------------------------
    def _check_confinement(
        self, ctx: ModuleContext, config: LintConfig
    ) -> Iterator[Diagnostic]:
        classes = frozenset(config.fleet_bucket_classes)
        markers = frozenset(config.fleet_state_markers)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _constructed_class(node)
                if name in classes:
                    yield self.diag(
                        ctx,
                        node,
                        f"{name}() constructed outside repro/fleet/ — QoS "
                        "enforcement machinery must not be re-implemented "
                        "or instantiated in the data plane",
                        "declare limits with QoSLimits and let the fleet "
                        "(FleetManager/FleetRuntime) wire the throttle, or "
                        "add the module to [tool.repro-lint] fleet-allow "
                        "with a review",
                    )
            elif isinstance(node, ast.Attribute) and node.attr in markers:
                yield self.diag(
                    ctx,
                    node,
                    f"cross-tenant state .{node.attr} touched outside "
                    "repro/fleet/ — per-tenant rate state must stay behind "
                    "the fleet API",
                    "go through ThrottleSet/FleetManager accessors, or add "
                    "the module to [tool.repro-lint] fleet-allow with a "
                    "review",
                )

    # -- admission-before-forward (flow) --------------------------------
    def _check_admission(
        self, ctx: ModuleContext, config: LintConfig
    ) -> Iterator[Diagnostic]:
        allowed, whole = config.scoped_allow(ctx.path, config.fleet_admission_allow)
        if whole:
            return
        receivers = frozenset(config.fleet_forward_receivers)
        for _qualname, func, cfg in iter_function_cfgs(ctx.tree):
            name = func.name
            if name in allowed or "admission" in name or "admit" in name:
                continue
            if not any(marker in name for marker in config.fleet_entry_markers):
                continue
            forward_nodes = {
                node.index
                for node in cfg.stmt_nodes()
                if any(
                    receiver_tail(call) in receivers
                    for call in calls_named(
                        node.parts, config.fleet_forward_methods
                    )
                )
            }
            if not forward_nodes:
                continue
            solution = solve(cfg, _ForwardReachability(config, forward_nodes))
            unguarded = solution.before.get(cfg.entry.index, frozenset())
            for index in sorted(unguarded):
                node = cfg.nodes[index]
                calls = [
                    call
                    for call in calls_named(
                        node.parts, config.fleet_forward_methods
                    )
                    if receiver_tail(call) in receivers
                ]
                what = (
                    f"{receiver_tail(calls[0])}.{call_name(calls[0])}()"
                    if calls
                    else "forward"
                )
                yield self.diag(
                    ctx,
                    node.stmt or func,
                    f"{what} is reachable from entry of {name}() with no "
                    "dominating QoS admission (admit/_admission call or a "
                    "no-tenant `qos is None` branch) — a tenant's I/O can "
                    "enter the shared data plane uncharged",
                    "call the volume's admission hook before forwarding "
                    "(see LSVDVolume.write / LSVDRuntime._write), or "
                    "allowlist the function via fleet-admission-allow "
                    "with a review",
                )


__all__ = ["TenantIsolationRule"]
