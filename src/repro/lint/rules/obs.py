"""LSVD007 — stat counters and reporting go through ``repro.obs``.

The paper's whole evaluation is counter-derived (write amplification,
GC relocation volume, cache hit ratios, latency percentiles); scattering
those counters across ad-hoc instance attributes made them impossible to
snapshot, reset, or export coherently.  Inside the instrumented layers
(``core/``, ``runtime/``) two patterns are therefore flagged:

* a public ``self.<stat-name> += ...`` increment whose attribute is not
  declared at class level as a ``repro.obs`` ``metric_field`` /
  ``gauge_field`` shim — the counter would live outside the registry;
* a bare ``print(...)`` call — reporting belongs to the CLI/analysis
  layers, which render registry snapshots.

Private attributes (leading underscore) are exempt: they are mechanism
state (ring heads, in-flight counts), not metrics.  Functional
accounting that happens to match a stat-ish name takes a line-scoped
``# lint: disable=LSVD007`` with a justification, per the usual policy.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.framework import ModuleContext, Rule

#: class-level declaration factories that mark an attribute as obs-backed
OBS_FIELD_FACTORIES = frozenset({"metric_field", "gauge_field"})
OBS_MODULE_PREFIX = "repro.obs"


def _is_obs_factory(ctx: ModuleContext, node: ast.expr) -> bool:
    """True when ``node`` is a call target naming an obs field factory."""
    origin = ctx.imports.qualified(node)
    if origin is not None:
        return origin.startswith(OBS_MODULE_PREFIX + ".") and origin.rsplit(
            ".", 1
        )[-1] in OBS_FIELD_FACTORIES
    # unresolved (e.g. defined in-module for a fixture): accept bare names
    if isinstance(node, ast.Name):
        return node.id in OBS_FIELD_FACTORIES
    if isinstance(node, ast.Attribute):
        return node.attr in OBS_FIELD_FACTORIES
    return False


def _declared_fields(ctx: ModuleContext) -> Set[str]:
    """Attribute names declared as metric_field/gauge_field in any class."""
    declared: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            targets: list = []
            value = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if not isinstance(value, ast.Call):
                continue
            if not _is_obs_factory(ctx, value.func):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    declared.add(target.id)
    return declared


def _stat_name(name: str, markers) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in markers)


class ObservabilityRule(Rule):
    """Invariant:
        Statistics in the data plane flow through the ``repro.obs``
        registry — no ad-hoc ``self.hits += 1`` counters, no ``print``
        reporting from core/runtime code.

    Example violation::

        self.cache_hits += 1        # invisible to snapshots/analysis

    Paper:
        §4 — every figure is a metrics timeline; counters outside the
        registry can't be snapshotted, diffed, or plotted.
    """

    code = "LSVD007"
    name = "observability"
    summary = (
        "ad-hoc stat counters and print() reporting in core/ and runtime/ "
        "must go through the repro.obs registry"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        if not config.module_in_dirs(ctx.path, config.obs_dirs):
            return
        if config.module_allowed(ctx.path, config.obs_allow):
            return
        declared = _declared_fields(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id == "print":
                    yield self.diag(
                        ctx,
                        node,
                        "print()-based reporting inside instrumented code; "
                        "metrics belong in the repro.obs registry, rendering "
                        "belongs to the cli/analysis layers",
                        "record the value in a Registry counter/histogram (or "
                        "emit a trace event) and render it from repro stats",
                    )
                continue
            if not isinstance(node, ast.AugAssign):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            target = node.target
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            if attr.startswith("_") or attr in declared:
                continue
            if not _stat_name(attr, config.stat_markers):
                continue
            yield self.diag(
                ctx,
                node,
                f"ad-hoc stat counter 'self.{attr}' bypasses the repro.obs "
                "registry; it cannot be snapshotted, reset, or exported "
                "with the rest of the stack's metrics",
                f"declare `{attr} = metric_field(\"<layer>.{attr}\")` (or "
                "gauge_field) at class level, backed by the shared Registry",
            )
