"""LSVD004 — recovery code must not swallow exceptions it cannot classify.

Crash recovery (§3.3) is prefix-consistency: walk the stream, stop at
the first damage, mount what is provably consistent.  A ``try/except
Exception: pass`` in that path converts torn metadata into silent data
loss.  In ``core/`` and ``crash/`` a handler that catches everything
must either re-raise or visibly record the error; better still, catch
the specific LSVD error types (``CorruptRecordError``,
``NoSuchKeyError``...) the callee documents.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.framework import ModuleContext, Rule

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _broad_catch(handler: ast.ExceptHandler) -> bool:
    """True for ``except:``, ``except Exception`` and ``except BaseException``."""
    node = handler.type
    if node is None:
        return True
    names: List[ast.expr] = list(node.elts) if isinstance(node, ast.Tuple) else [node]
    for item in names:
        if isinstance(item, ast.Name) and item.id in _BROAD_NAMES:
            return True
    return False


class RecoveryHandlerRule(Rule):
    """Invariant:
        Exception handlers in recovery/crash code must re-raise or
        record the error; a swallowed failure turns a detectable torn
        state into silent corruption.

    Example violation::

        try:
            header = decode_record(blob)
        except Exception:
            pass                    # corrupt record silently skipped

    Paper:
        §3.3 — recovery distinguishes "end of log" from "corruption";
        a handler that eats the difference breaks prefix consistency.
    """

    code = "LSVD004"
    name = "recovery-error-handling"
    summary = (
        "broad exception handlers in core/ and crash/ must re-raise or "
        "record the error, never swallow it"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        if not config.module_in_dirs(ctx.path, config.recovery_dirs):
            return
        recording = frozenset(config.error_recording_names)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _broad_catch(node):
                continue
            if self._reraises(node) or self._records(node, recording):
                continue
            caught = "bare except" if node.type is None else "broad except"
            yield self.diag(
                ctx,
                node,
                f"{caught} swallows errors in recovery-critical code; torn "
                "metadata would become silent data loss (§3.3)",
                "catch the specific LSVD error types, re-raise, or record the "
                "error where a scrub/fsck will surface it",
            )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(n, ast.Raise) for n in ast.walk(handler))

    @staticmethod
    def _records(handler: ast.ExceptHandler, recording: frozenset) -> bool:
        """A call like ``errors.append(...)`` / ``log.warning(...)`` counts."""
        for n in ast.walk(handler):
            if not isinstance(n, ast.Call):
                continue
            func = n.func
            name = ""
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name in recording:
                return True
        return False
