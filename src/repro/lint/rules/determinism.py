"""LSVD003 — core/sim/workload code must be deterministic.

Every experiment in the paper is a replayable simulation: results are a
pure function of (trace, config, seed).  A single ``time.time()`` or
unseeded RNG in the hot path silently breaks replayability — failures
stop reproducing, CI becomes flaky, and §4's figures stop being
regenerable.  Inside the deterministic directories only the simulated
clock (``sim.now``) and explicitly seeded ``random.Random(seed)``
instances are allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.framework import ModuleContext, Rule

#: call origins that read the wall clock
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: module-level random.* functions draw from the shared, unseeded global RNG
RANDOM_MODULE = "random"
RANDOM_CLASS = "random.Random"
SYSTEM_RANDOM = "random.SystemRandom"


class DeterminismRule(Rule):
    """Invariant:
        Simulation and core logic read time only from the simulated
        clock and randomness only from seeded generators, so every
        experiment replays bit-identically.

    Example violation::

        start = time.time()        # wall clock inside core/

    Paper:
        §4 — the evaluation compares latency/throughput curves across
        runs; nondeterministic inputs would make Figures 13-15
        unreproducible.
    """

    code = "LSVD003"
    name = "determinism"
    summary = (
        "wall-clock reads and unseeded randomness are forbidden in core/, "
        "sim/, gcsim/, workloads/, devices/ and crash/"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        if not config.module_in_dirs(ctx.path, config.determinism_dirs):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.imports.qualified(node.func)
            if origin is None:
                continue
            finding = self._classify(node, origin)
            if finding is None:
                continue
            message, fixit = finding
            yield self.diag(ctx, node, message, fixit)

    def _classify(self, node: ast.Call, origin: str) -> Optional[tuple]:
        if origin in WALL_CLOCK_CALLS:
            return (
                f"wall-clock read {origin}() in deterministic code; experiments "
                "must be a pure function of (trace, config, seed)",
                "take the simulated clock (sim.now) or a timestamp parameter instead",
            )
        if origin == SYSTEM_RANDOM:
            return (
                "random.SystemRandom draws from the OS entropy pool and can "
                "never be replayed",
                "use random.Random(seed) with a seed derived from the experiment config",
            )
        if origin == RANDOM_CLASS and not node.args and not node.keywords:
            return (
                "unseeded random.Random() is seeded from the OS and breaks replay",
                "pass an explicit seed (or derive one from existing deterministic state)",
            )
        if origin.startswith(RANDOM_MODULE + ".") and origin.count(".") == 1:
            func = origin.split(".", 1)[1]
            if func not in {"Random", "SystemRandom"}:
                return (
                    f"module-level random.{func}() uses the shared unseeded "
                    "global RNG",
                    "hold a random.Random(seed) instance and call its method instead",
                )
        return None
