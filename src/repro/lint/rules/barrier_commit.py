"""LSVD014 — barrier-coalescing-safety: settle barriers only after the FLUSH.

Group commit batches concurrent commit barriers so one device FLUSH
settles many callers — but the optimisation is only sound if *every*
caller's completion still happens-after a FLUSH that covers its writes.
This rule checks the commit paths statically: inside a barrier/group-
commit function, a completion event may be settled (``<event>.succeed()``)
only on paths dominated by covering-FLUSH evidence.  In a coroutine the
flush must be *yielded/awaited* — a bare ``ssd.flush()`` there returns an
Event nobody waits on (fire-and-forget), which is precisely the bug class
coalescing tends to introduce.  The analysis is a backward may-analysis
from each settle site, structured like LSVD011: if an evidence-free path
from function entry can reach the settlement, some barrier can be
acknowledged before its covering flush completed.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Sequence, Set

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.flow.cfg import CFG, Edge, Node, iter_function_cfgs, walk_in_scope
from repro.lint.flow.dataflow import BACKWARD, FlowAnalysis, solve
from repro.lint.framework import ModuleContext, Rule

SettleSet = FrozenSet[int]


def _receiver_matches(name: str, receivers: Sequence[str]) -> bool:
    """Exact receiver name or a ``_``-separated suffix of it."""
    stripped = name.lstrip("_")
    for recv in receivers:
        if stripped == recv or stripped.endswith("_" + recv):
            return True
    return False


def _settles_barrier(node: Node, config: LintConfig) -> bool:
    """Does this node settle a barrier completion event?

    Only ``<name>.succeed()`` where the receiver is a plain name matching
    the configured completion-event names: gate-release patterns like
    ``self._gate_waiters.popleft().succeed()`` wake *writers*, not
    barrier callers, and are deliberately not settlement sites.
    """
    for part in node.parts:
        for sub in walk_in_scope(part):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "succeed"
                and isinstance(sub.func.value, ast.Name)
                and _receiver_matches(
                    sub.func.value.id, config.barrier_settle_receivers
                )
            ):
                return True
    return False


def _function_is_coroutine(func: ast.AST) -> bool:
    if isinstance(func, ast.AsyncFunctionDef):
        return True
    for stmt in getattr(func, "body", []):
        for sub in walk_in_scope(stmt):
            if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                return True
    return False


def _is_flush_evidence(node: Node, config: LintConfig, coroutine: bool) -> bool:
    """Covering-FLUSH evidence: a (yielded, when in a coroutine) flush call."""
    if not coroutine:
        for part in node.parts:
            for sub in walk_in_scope(part):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in config.barrier_evidence_calls
                ):
                    return True
        return False
    for part in node.parts:
        for sub in walk_in_scope(part):
            if isinstance(sub, (ast.Await, ast.Yield, ast.YieldFrom)):
                value = sub.value
                if value is None:
                    continue
                for inner in walk_in_scope(value):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and inner.func.attr in config.barrier_evidence_calls
                    ):
                        return True
    return False


class _SettleReachability(FlowAnalysis[SettleSet]):
    """Backward: settle sites reachable from here with no FLUSH between."""

    direction = BACKWARD

    def __init__(
        self, config: LintConfig, settle_nodes: Set[int], coroutine: bool
    ) -> None:
        self.config = config
        self.settle_nodes = settle_nodes
        self.coroutine = coroutine

    def boundary(self, cfg: CFG, node: Node) -> SettleSet:
        return frozenset()

    def initial(self) -> SettleSet:
        return frozenset()

    def join(self, a: SettleSet, b: SettleSet) -> SettleSet:
        return a | b

    def transfer(self, node: Node, fact: SettleSet) -> SettleSet:
        if _is_flush_evidence(node, self.config, self.coroutine):
            # every path through this node is dominated by a flush
            return frozenset()
        if node.index in self.settle_nodes:
            return fact | frozenset((node.index,))
        return fact

    def transfer_edge(self, edge: Edge, fact: SettleSet) -> SettleSet:
        return fact


class BarrierCoalescingRule(Rule):
    """Invariant:
        On every commit-barrier path — serial or group-commit — a
        caller's completion event may be settled (``.succeed()``) only
        after the covering device FLUSH: in a coroutine the flush call
        must be yielded/awaited before the settlement on every path from
        function entry; in a plain function it must be called.

    Example violation::

        def _group_commit_worker(self):
            while True:
                first = yield self._barrier_q.get()
                group = [first] + self._barrier_q.drain()
                self.machine.ssd.flush()   # not yielded: never waited on
                for waiter in group:
                    waiter.succeed()       # settled before the FLUSH

    Paper:
        §3.2 — the commit barrier's contract is a durable cache-device
        flush covering everything acknowledged before it; batching
        barriers (group commit) must preserve exactly that contract for
        every caller in the batch.
    """

    code = "LSVD014"
    name = "barrier-coalescing-safety"
    summary = (
        "a barrier completion event is settled on a path with no "
        "dominating covering-FLUSH evidence"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        if not config.module_allowed(ctx.path, config.barrier_modules):
            return
        allowed, whole = config.scoped_allow(ctx.path, config.barrier_allow)
        if whole:
            return
        for _qualname, func, cfg in iter_function_cfgs(ctx.tree):
            if func.name in allowed:
                continue
            if not any(
                marker in func.name
                for marker in config.barrier_function_markers
            ):
                continue
            settle_nodes = {
                node.index
                for node in cfg.stmt_nodes()
                if _settles_barrier(node, config)
            }
            if not settle_nodes:
                continue
            coroutine = _function_is_coroutine(func)
            solution = solve(
                cfg, _SettleReachability(config, settle_nodes, coroutine)
            )
            unguarded = solution.before.get(cfg.entry.index, frozenset())
            for index in sorted(unguarded):
                node = cfg.nodes[index]
                yield self.diag(
                    ctx,
                    node.stmt or func,
                    "barrier completion is settled with no dominating "
                    "covering-FLUSH evidence on some path from function "
                    "entry"
                    + (
                        " (in a coroutine the flush must be yielded/awaited)"
                        if coroutine
                        else ""
                    ),
                    "issue (and in a coroutine: yield) the device flush "
                    "before settling the batch; callback-settled paths can "
                    "be allowlisted via barrier-allow "
                    "(module.py::function)",
                )


__all__ = ["BarrierCoalescingRule"]
