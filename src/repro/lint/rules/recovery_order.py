"""LSVD012 — durable-write-first ordering inside recovery/GC try blocks.

Recovery and GC rebuild authoritative state from the object stream
(§3.3): the in-memory extent map, checkpoint history, and superblock
view are *summaries* of what is durably on the backend.  A try block
that mutates one of those summaries **before** issuing the durable
write it summarizes has a torn-state window — if the write fails and a
handler swallows the exception, memory claims something the backend
never recorded, and the next checkpoint persists the lie.  The rule
flags mutation-before-durable-write orderings inside a ``try`` body in
recovery-marked functions whenever some handler neither re-raises nor
restores the mutated attribute; write-durably-first code (or code whose
handlers propagate the failure) passes untouched.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.flow.cfg import walk_in_scope
from repro.lint.flow.typestate import (
    attr_on_self,
    call_name,
    matches_marker,
    receiver_matches,
    receiver_tail,
)
from repro.lint.framework import ModuleContext, Rule

_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _flatten(stmts: Sequence[ast.stmt]) -> List[ast.stmt]:
    """Source-ordered statements, descending into compound bodies but
    not into nested defs (which run later, if at all)."""
    flat: List[ast.stmt] = []
    for stmt in stmts:
        if isinstance(stmt, _NESTED):
            continue
        flat.append(stmt)
        for field in ("body", "orelse", "finalbody"):
            flat.extend(_flatten(getattr(stmt, field, []) or []))
        for handler in getattr(stmt, "handlers", []) or []:
            flat.extend(_flatten(handler.body))
    return flat


def _mutated_state_attr(
    stmt: ast.stmt, config: LintConfig
) -> Optional[str]:
    """The ``self.<attr>`` recovery-state name this statement mutates."""

    def state_attr(expr: ast.expr) -> Optional[str]:
        attr = attr_on_self(expr)
        if attr is not None and matches_marker(attr, config.recovery_state_markers):
            return attr
        return None

    if isinstance(stmt, (ast.Assign, ast.AugAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            attr = state_attr(target)
            if attr is not None:
                return attr
            if isinstance(target, ast.Subscript):
                attr = state_attr(target.value)
                if attr is not None:
                    return attr
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        call = stmt.value
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in config.state_mutators
        ):
            attr = state_attr(call.func.value)
            if attr is not None:
                return attr
    return None


def _durable_write(stmt: ast.stmt, config: LintConfig) -> Optional[ast.Call]:
    for sub in walk_in_scope(stmt):
        if (
            isinstance(sub, ast.Call)
            and call_name(sub) in config.durable_write_calls
            and receiver_matches(receiver_tail(sub), config.durable_receivers)
        ):
            return sub
    return None


def _reraises(handler: ast.excepthandler) -> bool:
    return any(
        isinstance(sub, ast.Raise)
        for stmt in handler.body
        for sub in walk_in_scope(stmt)
    )


def _restores(
    handler: ast.excepthandler, attrs: Set[str], config: LintConfig
) -> bool:
    """True when the handler writes one of the mutated attributes back
    (or calls a ``restore``-shaped helper)."""
    for stmt in handler.body:
        for sub in walk_in_scope(stmt):
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    attr = attr_on_self(target)
                    if attr in attrs:
                        return True
            if isinstance(sub, ast.Call) and "restore" in call_name(sub):
                return True
    return False


class RecoveryMutationOrderRule(Rule):
    """Invariant:
        Inside a ``try`` body on a recovery/GC path, the durable write
        comes first: in-memory recovery state (maps, checkpoint history,
        superblock views, sequence frontiers) may only be mutated after
        the backend write it summarizes, unless every handler re-raises
        or restores the mutated state.  Memory must never claim more
        than the stream durably holds.

    Example violation::

        def recover(self):
            try:
                self._ckpt_history.append(seq)     # memory first...
                self.store.put(name, blob)         # ...durable second
            except StoreError:
                pass                               # torn state survives

    Paper:
        §3.3 — recovery trusts only the durable object stream; the
        in-memory map is reconstructed *from* it, so it must never get
        ahead of it.
    """

    code = "LSVD012"
    name = "recovery-mutation-ordering"
    summary = (
        "recovery/GC code mutates in-memory summary state before the "
        "durable write it summarizes, under a handler that swallows the "
        "failure"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        if not config.module_in_dirs(ctx.path, config.recovery_dirs):
            return
        allowed, whole = config.scoped_allow(
            ctx.path, config.recovery_order_allow
        )
        if whole:
            return
        for func in self._functions(ctx.tree):
            if func.name in allowed:
                continue
            if not matches_marker(func.name, config.recovery_function_markers):
                continue
            for trynode in self._trys(func):
                yield from self._check_try(ctx, config, trynode)

    def _functions(
        self, tree: ast.AST
    ) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def _trys(self, func: ast.AST) -> Iterator[ast.Try]:
        for stmt in func.body if hasattr(func, "body") else []:  # type: ignore[attr-defined]
            for sub in walk_in_scope(stmt):
                if isinstance(sub, ast.Try):
                    yield sub

    def _check_try(
        self, ctx: ModuleContext, config: LintConfig, trynode: ast.Try
    ) -> Iterator[Diagnostic]:
        if not trynode.handlers:
            return  # failures propagate; callers see the torn state signal
        flat = _flatten(trynode.body)
        first_mutation: Optional[Tuple[ast.stmt, str]] = None
        mutated: Set[str] = set()
        durable_after: Optional[ast.Call] = None
        for stmt in flat:
            attr = _mutated_state_attr(stmt, config)
            if attr is not None:
                mutated.add(attr)
                if first_mutation is None:
                    first_mutation = (stmt, attr)
                continue
            if first_mutation is not None and durable_after is None:
                durable_after = _durable_write(stmt, config)
        if first_mutation is None or durable_after is None:
            return
        for handler in trynode.handlers:
            if _reraises(handler) or _restores(handler, mutated, config):
                continue
            stmt, attr = first_mutation
            yield self.diag(
                ctx,
                stmt,
                f"in-memory recovery state 'self.{attr}' is mutated before "
                f"the durable write at line {durable_after.lineno} in the "
                f"same try body, and the handler at line {handler.lineno} "
                "neither re-raises nor restores it",
                "issue the durable write first and mutate the summary "
                "after it succeeds, or make the handler re-raise/restore; "
                "deliberate orderings can be allowlisted via "
                "recovery-order-allow",
            )
            return  # one report per try block
