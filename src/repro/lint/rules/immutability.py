"""LSVD001 — backend objects are immutable; only the block store mutates.

The paper's consistency argument (§3.1) hangs on the object stream being
append-only: a PUT object is never rewritten, and deletes happen only
after GC has made the data dead *and* a newer checkpoint is durable
(§3.6).  Scattering ``store.put(...)`` / ``store.delete(...)`` calls
through the tree would let any module break that ordering, so direct
mutation of an object-store handle is restricted to an allowlist of
modules (the block store, its checkpoint/replication helpers, and the
object-store implementations themselves).

A call site is matched when a method named ``put`` / ``delete`` /
``copy`` is invoked on a receiver whose trailing identifier is a known
store handle name (``store``, ``objstore``, ``backend``, ``inner``...);
plain queues (``q.put``) and dicts never match.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.framework import ModuleContext, Rule

#: mutating ObjectStore methods (reads are unrestricted)
MUTATING_METHODS = frozenset({"put", "delete", "copy"})


def _receiver_name(node: ast.expr) -> str:
    """Trailing identifier of the receiver: ``self.store`` -> ``store``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


class ImmutabilityRule(Rule):
    """Invariant:
        Backend objects are immutable and written exactly once, in
        sequence order, by the block-store layer; no other module may
        call ``ObjectStore.put``/``.delete``/``.copy`` directly.

    Example violation::

        def sneaky(store, data):
            store.put("vol.00000042", data)   # bypasses BlockStore

    Paper:
        §3.1/§3.3 — recovery's longest-consecutive-run rule is sound
        only because nothing mutates or renumbers settled objects.
    """

    code = "LSVD001"
    name = "immutability-discipline"
    summary = (
        "ObjectStore.put/.delete/.copy may only be called from the block-store "
        "layer; everything else must go through BlockStore/Replicator APIs"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        if config.module_allowed(ctx.path, config.immutability_allow):
            return
        receivers = frozenset(config.store_receivers)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in MUTATING_METHODS:
                continue
            receiver = _receiver_name(func.value)
            if receiver not in receivers:
                continue
            yield self.diag(
                ctx,
                node,
                f"direct object-store mutation {receiver}.{func.attr}() outside "
                "the block-store layer breaks backend immutability (§3.1)",
                "route the write through BlockStore/Replicator, or add the module "
                "to [tool.repro-lint] immutability-allow with a review",
            )
