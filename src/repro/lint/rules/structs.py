"""LSVD006 — struct wire formats stay consistent with their users.

Every on-SSD record and backend object is described twice: once as a
``struct`` format string and once as the dataclass / pack call that
feeds it.  A field added on one side but not the other corrupts every
volume written afterwards — and recovery will dutifully mount the
corruption.  Three checks, all on statically-known formats:

* ``NAME.pack(...)`` passes exactly as many values as ``NAME``'s format
  has fields (same for literal-format ``struct.pack``);
* tuple-unpacking an ``unpack``/``unpack_from`` result binds exactly
  that many names;
* configured (struct constant, header dataclass) pairs — e.g.
  ``_OBJ_EXT`` ↔ ``ObjectExtent`` in ``core/log.py`` — have matching
  field counts.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.framework import ModuleContext, Rule

_FMT_TOKEN = re.compile(r"(\d*)([xcbB?hHiIlLqQnNefdspP])")
_STRUCT_CTORS = frozenset({"struct.Struct"})
_PACK_FUNCS = frozenset({"struct.pack", "struct.pack_into"})
_UNPACK_FUNCS = frozenset({"struct.unpack", "struct.unpack_from"})


def format_field_count(fmt: str) -> Optional[int]:
    """Number of values ``pack`` consumes for ``fmt``; None if malformed.

    ``4s`` is one field (a bytes object); ``4H`` is four; ``x`` pad
    bytes are zero.  Whitespace between tokens is legal and ignored.
    """
    body = fmt.strip()
    if body[:1] in "@=<>!":
        body = body[1:]
    count = 0
    pos = 0
    for match in _FMT_TOKEN.finditer(body):
        gap = body[pos : match.start()]
        if gap.strip():
            return None
        pos = match.end()
        repeat, code = match.groups()
        if code == "x":
            continue
        if code in "sp":
            count += 1
        else:
            count += int(repeat) if repeat else 1
    if body[pos:].strip():
        return None
    return count


def _literal_str(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _dataclass_field_count(cls: ast.ClassDef) -> int:
    """Annotated fields of a dataclass body (ClassVar/underscore excluded)."""
    count = 0
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
            continue
        annotation = ast.unparse(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        count += 1
    return count


class StructConsistencyRule(Rule):
    """Invariant:
        ``struct.pack``/``unpack`` arity matches the format string, and
        each header dataclass stays in lock-step with its struct
        constant — the wire format *is* the crash-recovery contract.

    Example violation::

        _HDR = "<IIQ"                      # three fields...
        struct.pack(_HDR, magic, seq)      # ...two packed

    Paper:
        §3.2/§3.3 — cache-log records and backend objects are parsed
        back after a crash; a drifted header silently mis-frames every
        later record.
    """

    code = "LSVD006"
    name = "struct-header-consistency"
    summary = (
        "struct.pack/unpack call arity must match the format's field "
        "count, and header dataclasses must match their struct constants"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        structs = self._collect_structs(ctx)
        yield from self._check_calls(ctx, structs)
        yield from self._check_dataclass_map(ctx, config, structs)

    # -- collection ------------------------------------------------------
    def _collect_structs(self, ctx: ModuleContext) -> Dict[str, int]:
        """Names bound (anywhere in the module) to ``struct.Struct("...")``."""
        structs: Dict[str, int] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            value = node.value
            if not isinstance(target, ast.Name) or not isinstance(value, ast.Call):
                continue
            if ctx.imports.qualified(value.func) not in _STRUCT_CTORS:
                continue
            fmt = _literal_str(value.args[0]) if value.args else None
            if fmt is None:
                continue
            count = format_field_count(fmt)
            if count is not None:
                structs[target.id] = count
        return structs

    # -- call arity ------------------------------------------------------
    def _check_calls(
        self, ctx: ModuleContext, structs: Dict[str, int]
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_pack(ctx, structs, node)
            elif isinstance(node, ast.Assign):
                yield from self._check_unpack_target(ctx, structs, node)

    def _call_field_count(
        self, ctx: ModuleContext, structs: Dict[str, int], node: ast.Call, methods: frozenset
    ) -> Optional[tuple]:
        """(field_count, display_name, n_value_args) for a relevant call."""
        func = node.func
        origin = ctx.imports.qualified(func)
        if origin in methods:  # struct.pack("fmt", ...)
            fmt = _literal_str(node.args[0]) if node.args else None
            if fmt is None:
                return None
            count = format_field_count(fmt)
            if count is None:
                return None
            skip = 1  # the format argument itself
            if origin.endswith("pack_into"):
                skip = 3  # fmt, buffer, offset
            elif origin.endswith("unpack_from"):
                skip = 2  # fmt, buffer (offset may be keyword)
            return count, origin, max(len(node.args) - skip, 0)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            bare = {m.rsplit(".", 1)[1] for m in methods}
            if func.attr in bare and func.value.id in structs:
                skip = 2 if func.attr == "pack_into" else 0
                return (
                    structs[func.value.id],
                    f"{func.value.id}.{func.attr}",
                    max(len(node.args) - skip, 0),
                )
        return None

    def _check_pack(
        self, ctx: ModuleContext, structs: Dict[str, int], node: ast.Call
    ) -> Iterator[Diagnostic]:
        if any(isinstance(a, ast.Starred) for a in node.args):
            return  # arity not statically known
        info = self._call_field_count(ctx, structs, node, _PACK_FUNCS)
        if info is None:
            return
        count, display, given = info
        if given != count:
            yield self.diag(
                ctx,
                node,
                f"{display}() packs {given} value(s) but the format has "
                f"{count} field(s); the wire format and its users diverged",
                "add/remove the packed values together with the format string "
                "(and bump VERSION if the on-disk layout changes)",
            )

    def _check_unpack_target(
        self, ctx: ModuleContext, structs: Dict[str, int], node: ast.Assign
    ) -> Iterator[Diagnostic]:
        if len(node.targets) != 1 or not isinstance(node.value, ast.Call):
            return
        target = node.targets[0]
        if not isinstance(target, ast.Tuple):
            return
        if any(isinstance(el, ast.Starred) for el in target.elts):
            return
        info = self._call_field_count(ctx, structs, node.value, _UNPACK_FUNCS)
        if info is None:
            return
        count, display, _ = info
        if len(target.elts) != count:
            yield self.diag(
                ctx,
                node,
                f"{display}() yields {count} field(s) but {len(target.elts)} "
                "name(s) are bound; the wire format and its users diverged",
                "bind exactly one name per format field (use _ for ignored "
                "fields) and keep both sides in one edit",
            )

    # -- dataclass cross-check ------------------------------------------
    def _check_dataclass_map(
        self, ctx: ModuleContext, config: LintConfig, structs: Dict[str, int]
    ) -> Iterator[Diagnostic]:
        key = config.module_key(ctx.path)
        mapping = config.struct_dataclass_map.get(key)
        if not mapping:
            return
        classes = {
            n.name: n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)
        }
        for struct_name, class_name in mapping.items():
            if struct_name not in structs or class_name not in classes:
                continue
            want = structs[struct_name]
            got = _dataclass_field_count(classes[class_name])
            if want != got:
                cls = classes[class_name]
                yield self.diag(
                    ctx,
                    cls,
                    f"dataclass {class_name!r} has {got} field(s) but its wire "
                    f"format {struct_name} has {want}; header and format diverged",
                    "change the dataclass and the struct format in the same "
                    "commit (and bump VERSION for on-disk changes)",
                )
