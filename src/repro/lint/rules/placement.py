"""LSVD017 — placement confinement: temperature classes live in one place.

The write-amplification win of temperature-aware placement (SepBIT-style
invalidation-time separation) rests on every consumer — the pure stack,
the timed runtime, and the page-map simulator — sharing *one* classifier
implementation in ``core/placement.py``.  The differential test holds
the engines to identical class decisions; that guarantee dies the moment
a second module grows its own classifier state or class arithmetic.
Two checks, one syntactic and one flow-sensitive:

1. **Confinement** — outside ``core/placement.py``, code must not
   construct a concrete policy class (``SepBitPolicy``,
   ``SingleClassPolicy`` — go through ``make_policy``), touch private
   classifier state (``_page_temp``, ``_page_last``, ``_life_sum``,
   ``_life_n``), or do arithmetic on the class constants
   (``TEMP_HOT``/``TEMP_WARM``/``TEMP_COLD``/``NUM_TEMPS``).  Reading
   the constants (comparisons, indexing, table sizing) stays legal:
   only *deriving new classes* from them is classification.

2. **Relocation-reenters-classifier** — inside the placement-consuming
   modules (``core/block_store.py``, ``core/gc.py``,
   ``gcsim/simulator.py``), any function that writes a GC relocation
   object (``seal_gc_batch``, or a ``gc=True`` object store) must be
   dominated by classifier evidence on every path from function entry —
   a ``plan_relocation``/``split_relocation``/``on_write`` call.  A
   relocation write with no classifier upstream means survivors keep a
   stale class: exactly the slow drift toward mixed objects the
   placement layer exists to prevent.  Helpers that receive an
   already-classified chunk from their caller are allowlisted via
   ``placement-flow-allow`` (``core/gc.py::_commit_chunk``).
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Set

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.flow.cfg import CFG, Edge, Node, iter_function_cfgs
from repro.lint.flow.dataflow import BACKWARD, FlowAnalysis, solve
from repro.lint.flow.typestate import call_name, calls_named
from repro.lint.framework import ModuleContext, Rule

RelocSet = FrozenSet[int]


def _constructed_class(call: ast.Call) -> str:
    """Name of the class a ``Call`` constructs (``placement.X()`` -> X)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


#: operators that can derive a new class index from a constant;
#: multiplication/indexing by NUM_TEMPS is table sizing, a read
_CLASS_DERIVING_OPS = (ast.Add, ast.Sub, ast.Mod)


def _temp_operand(node: ast.BinOp, constants: FrozenSet[str]) -> str:
    """The class-constant name an arithmetic expression consumes, if any."""
    if not isinstance(node.op, _CLASS_DERIVING_OPS):
        return ""
    for side in (node.left, node.right):
        if isinstance(side, ast.Name) and side.id in constants:
            return side.id
    return ""


def _is_reloc_call(call: ast.Call, config: LintConfig) -> bool:
    """True for calls that emit a GC relocation object.

    A call carrying an explicit ``gc=`` keyword counts only when it is
    the constant ``True`` — ``_store_object(..., gc=False)`` is the
    destage path, which classifies at ``on_write`` time instead.
    """
    if call_name(call) not in config.placement_reloc_calls:
        return False
    for kw in call.keywords:
        if kw.arg == "gc":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return True


class _RelocReachability(FlowAnalysis[RelocSet]):
    """Backward: relocation writes reachable from here with no classifier."""

    direction = BACKWARD

    def __init__(self, config: LintConfig, reloc_nodes: Set[int]) -> None:
        self.config = config
        self.reloc_nodes = reloc_nodes

    def boundary(self, cfg: CFG, node: Node) -> RelocSet:
        return frozenset()

    def initial(self) -> RelocSet:
        return frozenset()

    def join(self, a: RelocSet, b: RelocSet) -> RelocSet:
        return a | b

    def transfer(self, node: Node, fact: RelocSet) -> RelocSet:
        if calls_named(node.parts, self.config.placement_classifier_calls):
            return frozenset()
        if node.index in self.reloc_nodes:
            return fact | frozenset((node.index,))
        return fact

    def transfer_edge(self, edge: Edge, fact: RelocSet) -> RelocSet:
        return fact


class PlacementConfinementRule(Rule):
    """Invariant:
        Temperature classification — policy construction, classifier
        state, and class arithmetic — lives only in ``core/placement.py``
        (``make_policy`` is the blessed constructor everywhere), and in
        the placement-consuming modules every GC relocation write is
        dominated by a classifier call, so relocated survivors always
        re-enter the shared classifier.

    Example violation::

        class MyDestager:
            def destage(self, lba, data):
                policy = SepBitPolicy()             # second classifier
                temp = TEMP_HOT + 1                 # ad-hoc class math
                policy._page_temp[lba // 4096] = 0  # private state

    Paper:
        §3.5 (greedy cleaning) extended with SepBIT-style invalidation
        -time separation; the WA reduction gated by wa_smoke holds only
        while the simulator provably runs the same placement code as
        the full stack.
    """

    code = "LSVD017"
    name = "placement-confinement"
    summary = (
        "temperature classification (policy construction, classifier state, "
        "class arithmetic) must stay in core/placement.py, and GC relocation "
        "writes must be dominated by a classifier call"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        if not config.module_allowed(ctx.path, config.placement_allow):
            yield from self._check_confinement(ctx, config)
        if config.module_allowed(ctx.path, config.placement_modules):
            yield from self._check_relocation_flow(ctx, config)

    # -- confinement (syntactic) ----------------------------------------
    def _check_confinement(
        self, ctx: ModuleContext, config: LintConfig
    ) -> Iterator[Diagnostic]:
        classes = frozenset(config.placement_policy_classes)
        markers = frozenset(config.placement_state_markers)
        constants = frozenset(config.placement_temp_constants)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = _constructed_class(node)
                if name in classes:
                    yield self.diag(
                        ctx,
                        node,
                        f"{name}() constructed outside core/placement.py — "
                        "a second classifier instance diverges from the "
                        "stream the shared policy has seen",
                        "build policies with make_policy(config) so every "
                        "consumer runs the one shared classifier, or add "
                        "the module to [tool.repro-lint] placement-allow "
                        "with a review",
                    )
            elif isinstance(node, ast.Attribute) and node.attr in markers:
                yield self.diag(
                    ctx,
                    node,
                    f"classifier state .{node.attr} touched outside "
                    "core/placement.py — invalidation-time metadata is "
                    "private to the policy",
                    "use on_write/split_relocation (classification) or the "
                    "policy's write_bytes/reloc_bytes counters (reporting), "
                    "or add the module to [tool.repro-lint] placement-allow "
                    "with a review",
                )
            elif isinstance(node, ast.BinOp):
                const = _temp_operand(node, constants)
                if const:
                    yield self.diag(
                        ctx,
                        node,
                        f"arithmetic on {const} outside core/placement.py — "
                        "deriving temperature classes is classification and "
                        "belongs to the policy (§3.5 extension)",
                        "let on_write/split_relocation assign classes and "
                        "pass the result through, or add the module to "
                        "[tool.repro-lint] placement-allow with a review",
                    )

    # -- relocation-reenters-classifier (flow) --------------------------
    def _check_relocation_flow(
        self, ctx: ModuleContext, config: LintConfig
    ) -> Iterator[Diagnostic]:
        allowed, whole = config.scoped_allow(ctx.path, config.placement_flow_allow)
        if whole:
            return
        for _qualname, func, cfg in iter_function_cfgs(ctx.tree):
            if func.name in allowed:
                continue
            reloc_nodes = {
                node.index
                for node in cfg.stmt_nodes()
                if any(
                    _is_reloc_call(call, config)
                    for call in calls_named(node.parts, config.placement_reloc_calls)
                )
            }
            if not reloc_nodes:
                continue
            solution = solve(cfg, _RelocReachability(config, reloc_nodes))
            unguarded = solution.before.get(cfg.entry.index, frozenset())
            for index in sorted(unguarded):
                node = cfg.nodes[index]
                calls = [
                    call
                    for call in calls_named(node.parts, config.placement_reloc_calls)
                    if _is_reloc_call(call, config)
                ]
                what = f"{call_name(calls[0])}()" if calls else "relocation write"
                yield self.diag(
                    ctx,
                    node.stmt or func,
                    f"{what} is reachable from entry of {func.name}() with "
                    "no dominating classifier call (plan_relocation/"
                    "split_relocation/on_write) — relocated survivors keep "
                    "a stale temperature class",
                    "route the relocated pieces through plan_relocation "
                    "(see GarbageCollector.execute), or allowlist the "
                    "helper via placement-flow-allow with a review",
                )


__all__ = ["PlacementConfinementRule"]
