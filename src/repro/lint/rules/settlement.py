"""LSVD010 — an unsettled PUT handle must reach settlement on every path.

Under fault injection (:class:`~repro.objstore.s3.UnsettledObjectStore`)
``store.put`` returns a *handle* for an in-flight write that completes
only when someone calls ``settle(handle)`` or registers the handle in a
settlement ledger.  A code path that acquires such a handle and lets it
fall off the end of the function has silently dropped a write: the real
system would ack data that a crash can still lose — exactly the §3.2
failure the write-cache/settlement split exists to prevent.  The rule
runs a forward typestate analysis over each function's CFG; branch
refinement understands ``if handle is None:`` (a settled-synchronous
store returns no handle), and raising paths are forgiven — an exception
already signals the caller that the write did not complete.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.flow.cfg import CFG, Node, iter_function_cfgs
from repro.lint.flow.dataflow import solve
from repro.lint.flow.typestate import (
    Pending,
    PendingSet,
    TypestateAnalysis,
    call_name,
    consuming_loads,
    receiver_matches,
    receiver_tail,
    unwrap_effect,
)
from repro.lint.framework import ModuleContext, Rule


def _acquiring_call(
    expr: Optional[ast.expr], config: LintConfig
) -> Optional[ast.Call]:
    """The ``<store>.put(...)`` call in ``expr``, unwrapping ``await``."""
    call = unwrap_effect(expr)
    if not isinstance(call, ast.Call):
        return None
    if call_name(call) not in config.flow_put_methods:
        return None
    if not receiver_matches(receiver_tail(call), config.flow_put_receivers):
        return None
    return call


def _single_name_target(stmt: Optional[ast.AST]) -> Optional[str]:
    if (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
    ):
        return stmt.targets[0].id
    return None


class _HandleAnalysis(TypestateAnalysis):
    """Forward facts: handles that may still be unsettled here."""

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def gens(self, node: Node) -> Iterable[Pending]:
        stmt = node.stmt
        if not isinstance(stmt, ast.Assign):
            return ()
        var = _single_name_target(stmt)
        if var is None or _acquiring_call(stmt.value, self.config) is None:
            return ()
        return (Pending(key=var, origin=node.index, line=node.line),)

    def kills(self, node: Node, fact: PendingSet) -> Set[str]:
        killed = set(consuming_loads(node))
        # rebinding or deleting the name ends the old obligation either
        # way; the rule reports the overwrite as a leak separately
        var = _single_name_target(node.stmt)
        if var is not None:
            killed.add(var)
        if isinstance(node.stmt, ast.Delete):
            killed.update(
                t.id for t in node.stmt.targets if isinstance(t, ast.Name)
            )
        return killed


class SettlementLeakRule(Rule):
    """Invariant:
        Every in-flight PUT handle acquired from an object store must be
        settled or registered in a settlement ledger on every path that
        completes normally; only raising paths are excused.  A leaked
        handle is a write the system believes durable that a crash can
        still lose (write-release-after-settle, paper §3.2/§3.5).

    Example violation::

        handle = self.target.put(name, data)   # in-flight write
        self._copied.add(name)                 # marked shipped...
        return                                 # ...handle never settled

    Paper:
        §3.2 (ack only after the cache log is durable) and §3.5 (an
        object leaves the write cache only once the backend PUT
        settles); PAPERS.md Lomet & Luo on deferred-reclaim ordering.
    """

    code = "LSVD010"
    name = "settlement-leak"
    summary = (
        "an in-flight PUT handle escapes, is overwritten, or reaches a "
        "normal exit without being settled or registered"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        if not config.module_in_dirs(ctx.path, config.settlement_dirs):
            return
        allowed, whole = config.scoped_allow(ctx.path, config.settlement_allow)
        if whole:
            return
        for _qualname, func, cfg in iter_function_cfgs(ctx.tree):
            # the settlement plumbing itself writes through to the
            # settled inner store; its puts ARE the settlement
            if func.name in allowed or "settle" in func.name:
                continue
            yield from self._check_function(ctx, config, cfg)

    def _check_function(
        self, ctx: ModuleContext, config: LintConfig, cfg: CFG
    ) -> Iterator[Diagnostic]:
        interesting = False
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            # a discarded acquiring call never had a handle to settle; a
            # yielded/awaited put is different — suspending on it *is*
            # waiting for settlement (the timed destage pipeline's idiom)
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and _acquiring_call(stmt.value, config)
            ):
                yield self.diag(
                    ctx,
                    stmt,
                    "PUT handle discarded: the return value of an "
                    "object-store put is an in-flight write that must be "
                    "settled or registered",
                    "bind the handle and settle it (or register it in the "
                    "settlement ledger); allowlist deliberate fire-and-"
                    "forget writes via settlement-allow",
                )
            elif isinstance(stmt, ast.Assign) and _acquiring_call(
                stmt.value, config
            ):
                interesting = True
        if not interesting:
            return

        solution = solve(cfg, _HandleAnalysis(config))
        reported: Set[int] = set()

        def report(
            pendings: Iterable[Pending], why: str
        ) -> Iterator[Diagnostic]:
            by_origin: Dict[int, Pending] = {}
            for p in pendings:
                by_origin.setdefault(p.origin, p)
            for p in by_origin.values():
                if p.origin in reported:
                    continue
                reported.add(p.origin)
                origin = cfg.nodes[p.origin].stmt or cfg.func
                yield self.diag(
                    ctx,
                    origin,
                    f"unsettled PUT handle {p.key!r} {why}",
                    "settle the handle on every non-raising path (guard "
                    "with `if handle is not None: store.settle(handle)`) "
                    "or allowlist the function via settlement-allow",
                )

        # leaks at normal exit
        exit_fact = solution.before.get(cfg.exit.index, frozenset())
        yield from report(
            exit_fact, "may reach a normal exit without being settled"
        )
        # leaks by overwrite/delete: the old handle is unrecoverable
        for node in cfg.stmt_nodes():
            before = solution.before.get(node.index, frozenset())
            if not before:
                continue
            var = _single_name_target(node.stmt)
            doomed: List[Pending] = []
            if var is not None and var not in consuming_loads(node):
                doomed = [p for p in before if p.key == var]
            elif isinstance(node.stmt, ast.Delete):
                dropped = {
                    t.id
                    for t in node.stmt.targets
                    if isinstance(t, ast.Name)
                }
                doomed = [p for p in before if p.key in dropped]
            if doomed:
                yield from report(
                    doomed,
                    f"is overwritten at line {node.line} before being "
                    "settled",
                )
