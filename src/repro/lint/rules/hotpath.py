"""LSVD009 — hot-path hygiene in the data-plane modules.

Every client I/O funnels through the extent map and the encode/seal path,
so the paper's production rewrite moved the map to a B+-tree precisely
because per-operation O(n) work there dominates client CPU at scale.
This rule keeps the data plane from quietly regressing to the patterns
the chunked-map/zero-copy rework removed:

* ``list.insert(i, x)`` and ``del seq[i]`` — O(n) element shuffles.  In
  the chunked extent map these are legal only inside the blessed leaf
  helpers, where the shifted list is a bounded chunk rather than the
  whole map.
* ``bytes(buf[a:b])`` — a per-extent payload copy.  Request assembly
  must go through :mod:`repro.core.sgio` (one pre-sized buffer per
  request); deliberate copies in cold paths (checkpoint restore,
  recovery decode) are allowlisted per function via
  ``[tool.repro-lint] hotpath-allow``.

The rule only examines the modules named by ``hotpath_modules`` — the
data-plane files — so slow-path modules (checkpointing, recovery
tooling) are untouched.  Blessed entries take the form
``core/extent_map.py::_leaf_insert`` (one function) or a bare module
suffix to exempt a whole file.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Optional, Tuple

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.framework import ModuleContext, Rule


def _blessed_functions(
    ctx: ModuleContext, config: LintConfig
) -> Tuple[FrozenSet[str], bool]:
    """(blessed function names for this module, whole-module exemption)."""
    return config.scoped_allow(ctx.path, config.hotpath_blessed)


def _bytes_of_subscript(node: ast.Call) -> bool:
    """True for ``bytes(<subscript>)`` — a per-extent slice copy."""
    return (
        isinstance(node.func, ast.Name)
        and node.func.id == "bytes"
        and len(node.args) == 1
        and not node.keywords
        and isinstance(node.args[0], ast.Subscript)
    )


def _is_list_insert(node: ast.Call) -> bool:
    """True for ``<obj>.insert(i, x)`` — the O(n) element shuffle."""
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "insert"
        and len(node.args) == 2
        and not node.keywords
    )


class HotPathRule(Rule):
    """Invariant:
        Data-plane modules avoid O(n) list shuffles and per-extent
        ``bytes()`` copies outside blessed bounded helpers — per-I/O
        work must stay logarithmic and zero-copy.

    Example violation::

        self.extents.insert(i, ext)      # O(n) shuffle per write

    Paper:
        §3.7/§4.2 — the production rewrite moved the map to a B+-tree
        because per-op O(n) work dominated client CPU at scale.
    """

    code = "LSVD009"
    name = "hot-path-hygiene"
    summary = (
        "O(n) list mutation or per-extent bytes() copy in a data-plane "
        "module outside the blessed bounded helpers"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        if not config.module_allowed(ctx.path, config.hotpath_modules):
            return
        blessed, whole_module = _blessed_functions(ctx, config)
        if whole_module:
            return
        yield from self._scan(ctx, ctx.tree, enclosing=None, blessed=blessed)

    def _scan(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        enclosing: Optional[str],
        blessed: FrozenSet[str],
    ) -> Iterator[Diagnostic]:
        """Visit every node once, tracking the innermost enclosing function
        (nested defs shadow their parent, so blessing is per-function)."""
        for child in ast.iter_child_nodes(node):
            name = enclosing
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = child.name
            if name not in blessed:
                yield from self._flag(ctx, child)
            yield from self._scan(ctx, child, name, blessed)

    def _flag(self, ctx: ModuleContext, node: ast.AST) -> Iterator[Diagnostic]:
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    yield self.diag(
                        ctx,
                        node,
                        "del on a subscript in a data-plane module: an O(n) "
                        "element shuffle on the hot path",
                        "keep O(n) deletes inside a blessed bounded-chunk "
                        "helper, or allowlist the function via hotpath-allow",
                    )
        elif isinstance(node, ast.Call):
            if _is_list_insert(node):
                yield self.diag(
                    ctx,
                    node,
                    "list.insert in a data-plane module: an O(n) element "
                    "shuffle on the hot path",
                    "insert inside a blessed bounded-chunk helper (e.g. the "
                    "extent map's _leaf_insert), or allowlist via hotpath-allow",
                )
            elif _bytes_of_subscript(node):
                yield self.diag(
                    ctx,
                    node,
                    "bytes(<slice>) in a data-plane module: a per-extent "
                    "payload copy on the hot path",
                    "assemble through repro.core.sgio (gather/copy_out) or "
                    "allowlist the cold-path function via hotpath-allow",
                )
