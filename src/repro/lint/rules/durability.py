"""LSVD011 — barrier-before-ack: completion calls need durability evidence.

The paper's central ordering rule (§3.2): a write is acknowledged — and
anything the ack implies is released — only after the covering data is
durable.  In this codebase the "acks" are the calls that release cache
log space, retire superseded checkpoints, advance the release frontier,
or delete GC victims; the *evidence* that durability happened is a
settle/flush/barrier/recover call, a branch taken on ``.settled`` state
or a ``result is None`` settled-synchronously test, or (in the timed
model) resuming from a yielded/awaited backend PUT.  The rule runs a
backward may-analysis from each ack site: if an evidence-free path from
function entry can reach the ack, some caller can release state whose
durability nobody established.  Functions whose *name* contains
``settle`` are the settlement callbacks themselves — they are the
evidence — and are skipped.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, Set

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.flow.cfg import CFG, Edge, Node, iter_function_cfgs, walk_in_scope
from repro.lint.flow.dataflow import BACKWARD, FlowAnalysis, solve
from repro.lint.flow.typestate import call_name, calls_named
from repro.lint.framework import ModuleContext, Rule

AckSet = FrozenSet[int]


def _is_evidence_node(node: Node, config: LintConfig) -> bool:
    if calls_named(node.parts, config.durability_evidence_calls):
        return True
    stmt = node.stmt
    # `self.<x>.settled = True` marks settlement directly
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Attribute) and "settled" in target.attr:
                return True
    # resuming from a yielded/awaited PUT/write/flush: in the timed
    # model the coroutine continues only once the backend op completed
    for part in node.parts:
        for sub in walk_in_scope(part):
            if isinstance(sub, (ast.Await, ast.Yield, ast.YieldFrom)):
                value = sub.value
                if value is None:
                    continue
                for inner in walk_in_scope(value):
                    if (
                        isinstance(inner, ast.Call)
                        and call_name(inner)
                        in config.durability_yield_evidence
                    ):
                        return True
    return False


def _edge_is_evidence(edge: Edge) -> bool:
    """Branch edges that prove settlement: the true side of a test on
    ``.settled`` state or on ``<result> is None`` (a settled-synchronous
    store returned no handle)."""
    cond = edge.cond
    if cond is None:
        return False
    if edge.kind == "true":
        for sub in walk_in_scope(cond):
            if isinstance(sub, ast.Attribute) and "settled" in sub.attr:
                return True
            if (
                isinstance(sub, ast.Compare)
                and len(sub.ops) == 1
                and isinstance(sub.ops[0], ast.Is)
                and isinstance(sub.comparators[0], ast.Constant)
                and sub.comparators[0].value is None
            ):
                return True
    if edge.kind == "false":
        for sub in walk_in_scope(cond):
            if (
                isinstance(sub, ast.Compare)
                and len(sub.ops) == 1
                and isinstance(sub.ops[0], ast.IsNot)
                and isinstance(sub.comparators[0], ast.Constant)
                and sub.comparators[0].value is None
            ):
                return True
    return False


class _AckReachability(FlowAnalysis[AckSet]):
    """Backward: ack sites reachable from here with no evidence between."""

    direction = BACKWARD

    def __init__(self, config: LintConfig, ack_nodes: Set[int]) -> None:
        self.config = config
        self.ack_nodes = ack_nodes

    def boundary(self, cfg: CFG, node: Node) -> AckSet:
        return frozenset()

    def initial(self) -> AckSet:
        return frozenset()

    def join(self, a: AckSet, b: AckSet) -> AckSet:
        return a | b

    def transfer(self, node: Node, fact: AckSet) -> AckSet:
        if _is_evidence_node(node, self.config):
            # every path through this node is dominated by evidence
            return frozenset()
        if node.index in self.ack_nodes:
            return fact | frozenset((node.index,))
        return fact

    def transfer_edge(self, edge: Edge, fact: AckSet) -> AckSet:
        if _edge_is_evidence(edge):
            return frozenset()
        return fact


class DurabilityOrderingRule(Rule):
    """Invariant:
        Every completion/acknowledgement call — releasing cache-log
        space, retiring old checkpoints, advancing the release frontier,
        deleting GC victims — must be dominated on every path from
        function entry by durability evidence: a settle/flush/barrier/
        recover call, a branch on settled state, or resumption from an
        awaited backend write.

    Example violation::

        def free_victims(self, victims):
            # no settle/flush/checkpoint evidence on this path
            self.gc.delete_victims(victims)   # ack without barrier

    Paper:
        §3.2 — a write is acknowledged only once its cache-log record
        is durable; §3.5 — GC deletes victims only after a newer
        checkpoint settles (barrier-before-ack).
    """

    code = "LSVD011"
    name = "durability-ordering"
    summary = (
        "a completion/ack call is reachable from function entry along a "
        "path with no dominating settle/flush/barrier evidence"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        if not config.module_allowed(ctx.path, config.durability_modules):
            return
        allowed, whole = config.scoped_allow(ctx.path, config.durability_allow)
        if whole:
            return
        for _qualname, func, cfg in iter_function_cfgs(ctx.tree):
            if func.name in allowed or "settle" in func.name:
                continue
            ack_nodes = {
                node.index
                for node in cfg.stmt_nodes()
                if calls_named(node.parts, config.durability_ack_calls)
            }
            if not ack_nodes:
                continue
            solution = solve(cfg, _AckReachability(config, ack_nodes))
            unguarded = solution.before.get(cfg.entry.index, frozenset())
            for index in sorted(unguarded):
                node = cfg.nodes[index]
                calls = calls_named(node.parts, config.durability_ack_calls)
                what = call_name(calls[0]) if calls else "ack"
                yield self.diag(
                    ctx,
                    node.stmt or func,
                    f"{what}() is reachable with no dominating durability "
                    "evidence (settle/flush/barrier/recover or a branch "
                    "on settled state) on some path from function entry",
                    "establish durability before acknowledging: settle or "
                    "flush first, or gate the ack on settled state; "
                    "callback-driven acks can be allowlisted via "
                    "durability-allow",
                )


# re-exported for the fixture tests' readability
__all__ = ["DurabilityOrderingRule"]
