"""LSVD015 — every span begun must be ended or adopted on every path.

The causal span trees (:mod:`repro.obs.spans`) are propagated by
explicit handles: a stage span is opened with ``parent.begin(...)`` and
must be closed with ``.end()`` — or *adopted* by passing the handle to
a callee that closes it (``store.put(name, data, span=stage)``).  A
handle that falls off the end of a function is a stage that never
closes: its root span stays open forever, the critical-path analyzer
under-attributes the request's latency, and the flight recorder's last-N
ring silently stops advancing for that tree.  Exactly the settlement-
leak failure shape (LSVD010) transplanted from durability to
observability, so the rule reuses the same typestate lattice: a forward
may-analysis over each function's CFG, raising paths forgiven — an
exception already aborts the measured request, and the recorder counts
the stranded root in ``open_roots``.

Modules inside a ``repro`` package are gated by ``span_dirs``; files
outside any ``repro`` package (benchmarks, examples, fixtures) are
always in scope, since a span leak there corrupts the very latency
attributions the benchmark gates check.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.flow.cfg import CFG, Node, iter_function_cfgs
from repro.lint.flow.dataflow import solve
from repro.lint.flow.typestate import (
    Pending,
    PendingSet,
    TypestateAnalysis,
    call_name,
    consuming_loads,
    receiver_matches,
    receiver_tail,
    unwrap_effect,
)
from repro.lint.framework import ModuleContext, Rule


def _begin_call(
    expr: Optional[ast.expr], config: LintConfig
) -> Optional[ast.Call]:
    """The ``<span>.begin(...)`` / ``<spans>.root(...)`` call in ``expr``."""
    call = unwrap_effect(expr)
    if not isinstance(call, ast.Call):
        return None
    if call_name(call) not in config.span_begin_methods:
        return None
    if not receiver_matches(receiver_tail(call), config.span_receivers):
        return None
    return call


def _single_name_target(stmt: Optional[ast.AST]) -> Optional[str]:
    if (
        isinstance(stmt, ast.Assign)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
    ):
        return stmt.targets[0].id
    return None


class _SpanAnalysis(TypestateAnalysis):
    """Forward facts: span handles that may still be open here."""

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def gens(self, node: Node) -> Iterable[Pending]:
        stmt = node.stmt
        if not isinstance(stmt, ast.Assign):
            return ()
        var = _single_name_target(stmt)
        if var is None or _begin_call(stmt.value, self.config) is None:
            return ()
        return (Pending(key=var, origin=node.index, line=node.line),)

    def kills(self, node: Node, fact: PendingSet) -> Set[str]:
        # any consuming load discharges the obligation: `stage.end()`
        # reads the handle, and passing it to a callee (`span=stage`)
        # adopts it — the callee now owns closing the stage
        killed = set(consuming_loads(node))
        var = _single_name_target(node.stmt)
        if var is not None:
            killed.add(var)
        if isinstance(node.stmt, ast.Delete):
            killed.update(
                t.id for t in node.stmt.targets if isinstance(t, ast.Name)
            )
        return killed


class SpanHygieneRule(Rule):
    """Invariant:
        Every span handle acquired from ``<recorder>.root(...)`` or
        ``<span>.begin(...)`` must be ended or adopted (passed on to a
        callee) on every path that completes normally; only raising
        paths are excused.  A leaked span never closes: its root tree
        never completes, the flight recorder stops capturing it, and
        the critical-path decomposition silently loses that stage's
        time.

    Example violation::

        stage = span.begin("shard_put")   # stage opened
        result = shard.put(name, data)
        return result                     # ...stage never ended

    Paper:
        §4.4/§4.7 — the prototype's latency breakdowns (log write vs
        destage vs barrier FLUSH) are only additive if every stage
        interval closes; an open interval under-reports exactly the
        slow path being measured.
    """

    code = "LSVD015"
    name = "span-hygiene"
    summary = (
        "a span handle is discarded, overwritten, or reaches a normal "
        "exit without being ended or adopted"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        key = config.module_key(ctx.path)
        if "/" in key and not config.module_in_dirs(ctx.path, config.span_dirs):
            return
        allowed, whole = config.scoped_allow(ctx.path, config.span_allow)
        if whole:
            return
        for _qualname, func, cfg in iter_function_cfgs(ctx.tree):
            if func.name in allowed:
                continue
            yield from self._check_function(ctx, config, cfg)

    def _check_function(
        self, ctx: ModuleContext, config: LintConfig, cfg: CFG
    ) -> Iterator[Diagnostic]:
        interesting = False
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            # a begin whose result is discarded opened a stage nobody
            # can ever close
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and _begin_call(stmt.value, config)
            ):
                yield self.diag(
                    ctx,
                    stmt,
                    "span handle discarded: begin()/root() opens a stage "
                    "that must be ended or adopted",
                    "bind the handle and call .end() on it (or pass it to "
                    "the callee that finishes the stage); allowlist "
                    "deliberate cases via span-allow",
                )
            elif isinstance(stmt, ast.Assign) and _begin_call(
                stmt.value, config
            ):
                interesting = True
        if not interesting:
            return

        solution = solve(cfg, _SpanAnalysis(config))
        reported: Set[int] = set()

        def report(
            pendings: Iterable[Pending], why: str
        ) -> Iterator[Diagnostic]:
            by_origin: Dict[int, Pending] = {}
            for p in pendings:
                by_origin.setdefault(p.origin, p)
            for p in by_origin.values():
                if p.origin in reported:
                    continue
                reported.add(p.origin)
                origin = cfg.nodes[p.origin].stmt or cfg.func
                yield self.diag(
                    ctx,
                    origin,
                    f"open span {p.key!r} {why}",
                    "end the span on every non-raising path (`stage.end()`"
                    ") or adopt it by passing it to the callee that ends "
                    "it; allowlist the function via span-allow",
                )

        # leaks at normal exit
        exit_fact = solution.before.get(cfg.exit.index, frozenset())
        yield from report(
            exit_fact, "may reach a normal exit without being ended or adopted"
        )
        # leaks by overwrite/delete: the old handle is unrecoverable
        for node in cfg.stmt_nodes():
            before = solution.before.get(node.index, frozenset())
            if not before:
                continue
            var = _single_name_target(node.stmt)
            doomed: List[Pending] = []
            if var is not None and var not in consuming_loads(node):
                doomed = [p for p in before if p.key == var]
            elif isinstance(node.stmt, ast.Delete):
                dropped = {
                    t.id
                    for t in node.stmt.targets
                    if isinstance(t, ast.Name)
                }
                doomed = [p for p in before if p.key in dropped]
            if doomed:
                yield from report(
                    doomed,
                    f"is overwritten at line {node.line} before being "
                    "ended",
                )
