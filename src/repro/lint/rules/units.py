"""LSVD005 — LBA-denominated and byte-denominated values must not mix.

The map layers translate between 512-byte virtual LBAs, 4 KiB cache
blocks and byte offsets inside objects; the classic log-structured-store
bug is adding an LBA to a byte offset and reading garbage that still
CRCs (the CRC covers the *object*, not the *addressing*).  Two checks:

* a function whose parameters span both families (``*lba*`` and
  ``*byte*``/``*off*``) must annotate those parameters, so reviewers and
  mypy can see the units;
* an ``lba``-named operand may never be directly added to or subtracted
  from a ``byte``/``off``-named operand — multiply through ``BLOCK``
  (or a named conversion helper) first.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.framework import ModuleContext, Rule


def _family(name: str, markers: Sequence[str]) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in markers)


def _operand_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


class UnitConfusionRule(Rule):
    """Invariant:
        LBA-denominated and byte-denominated values never mix without
        an explicit conversion; functions taking both must annotate
        their parameters.

    Example violation::

        def read(lba, nbytes):
            end = lba + nbytes      # adds sectors to bytes

    Paper:
        §3.1 — the virtual disk is addressed in sectors but the log
        and object layer in bytes; a silent 512x error corrupts the
        extent map.
    """

    code = "LSVD005"
    name = "unit-confusion"
    summary = (
        "functions mixing lba- and byte/offset-named parameters need "
        "annotations; lba +/- byte arithmetic needs an explicit conversion"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_signature(ctx, config, node)
            elif isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                yield from self._check_mix(ctx, config, node)

    def _check_signature(
        self,
        ctx: ModuleContext,
        config: LintConfig,
        node: ast.FunctionDef,
    ) -> Iterator[Diagnostic]:
        args: List[ast.arg] = [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ]
        lba_args = [a for a in args if _family(a.arg, config.lba_markers)]
        byte_args = [a for a in args if _family(a.arg, config.byte_markers)]
        if not lba_args or not byte_args:
            return
        missing = [a for a in (*lba_args, *byte_args) if a.annotation is None]
        for arg in missing:
            yield self.diag(
                ctx,
                arg,
                f"function {node.name!r} mixes LBA- and byte-denominated "
                f"parameters but {arg.arg!r} is unannotated",
                "annotate every lba/byte/offset parameter (plain `int` is "
                "enough) so the unit mix is visible to reviewers and mypy",
            )

    def _check_mix(
        self,
        ctx: ModuleContext,
        config: LintConfig,
        node: ast.BinOp,
    ) -> Iterator[Diagnostic]:
        pair = self._mixed_operands(node, config)
        if pair is None:
            return
        lba_name, byte_name = pair
        op = "+" if isinstance(node.op, ast.Add) else "-"
        yield self.diag(
            ctx,
            node,
            f"direct {lba_name!r} {op} {byte_name!r} mixes LBA and byte units; "
            "the result addresses garbage that still passes CRC checks",
            "convert explicitly first (e.g. lba * BLOCK, or a named "
            "helper) so both operands share a unit",
        )

    @staticmethod
    def _mixed_operands(
        node: ast.BinOp, config: LintConfig
    ) -> Optional[Tuple[str, str]]:
        left, right = _operand_name(node.left), _operand_name(node.right)
        for a, b in ((left, right), (right, left)):
            if (
                a
                and b
                and _family(a, config.lba_markers)
                and not _family(a, config.byte_markers)
                and _family(b, config.byte_markers)
                and not _family(b, config.lba_markers)
            ):
                return a, b
        return None
