"""LSVD008 — shard placement is owned by the shard router.

A sharded volume stays recoverable only while every writer and reader
agree on which shard owns a given object name, forever.  That mapping is
a *persisted contract* (the ``shard-layout.json`` manifest), so a second
module computing ``seq % n_shards`` on its own — or spelling out a
``shard-NN`` name by hand — is the sharded-store equivalent of the
seq-collision bug LSVD002 guards against: it works until the layouts
drift, then objects silently land on (or are read from) the wrong
backend.  All placement must go through
:class:`repro.shard.router.ShardRouter`; only ``repro/shard/`` computes
it directly.

Two patterns are flagged outside the allowlisted modules:

* modulo arithmetic whose operand names a shard count
  (``n_shards``, ``num_shards``, ``shard_count``);
* construction of a shard *name* by string formatting — an f-string,
  ``str.format`` or ``%`` template whose literal part pairs ``shard-``
  with a substituted value.  Fixed literals such as ``"shard-status"``
  (a CLI verb) are fine: without a substitution no placement decision
  is being made.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic
from repro.lint.framework import ModuleContext, Rule

#: identifier shapes that denote a shard count: ``n_shards``,
#: ``self.num_shards``, ``shard_count``...
SHARD_COUNT_RE = re.compile(r"(^|_)n_?shards$|(^|_)num_shards$|(^|_)shard_count$")

#: literal fragments that smell like a shard-name template when they sit
#: next to a substitution: ``f"shard-{i}"``, ``"shard-{}".format(i)``,
#: ``"shard-%02d" % i``
_TEMPLATE_MARKS = ("shard-{", "shard-%")


def _shard_count_identifier(node: ast.expr) -> Optional[str]:
    """The matched identifier when ``node`` names a shard count."""
    name = ""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name and SHARD_COUNT_RE.search(name.lower()):
        return name
    return None


def _formats_shard_name(node: ast.AST) -> bool:
    """True for string-formatting constructs that build a shard name."""
    if isinstance(node, ast.JoinedStr):
        # f-string: a literal part ending in "shard-" directly followed
        # by a formatted value
        parts = node.values
        for i, part in enumerate(parts[:-1]):
            if (
                isinstance(part, ast.Constant)
                and isinstance(part.value, str)
                and part.value.endswith("shard-")
                and isinstance(parts[i + 1], ast.FormattedValue)
            ):
                return True
        return False
    if isinstance(node, ast.Call):
        # "shard-{}".format(...)
        fn = node.func
        return (
            isinstance(fn, ast.Attribute)
            and fn.attr == "format"
            and isinstance(fn.value, ast.Constant)
            and isinstance(fn.value.value, str)
            and any(mark in fn.value.value for mark in _TEMPLATE_MARKS)
        )
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        # "shard-%02d" % i
        left = node.left
        return (
            isinstance(left, ast.Constant)
            and isinstance(left.value, str)
            and any(mark in left.value for mark in _TEMPLATE_MARKS)
        )
    return False


class ShardOwnershipRule(Rule):
    """Invariant:
        The shard router owns the name->shard mapping and its persisted
        layout; placement computed anywhere else can diverge from the
        manifest and route reads to the wrong backend.

    Example violation::

        idx = hash(name) % len(self.backends)   # ad-hoc placement

    Paper:
        §3.6 — striping across backends must be stable across mounts;
        recovery's global LIST assumes one authoritative layout.
    """

    code = "LSVD008"
    name = "shard-ownership"
    summary = (
        "shard placement computed outside repro/shard; the router owns the "
        "name->shard mapping and its persisted layout"
    )

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        if config.module_allowed(ctx.path, config.shard_allow) or config.module_in_dirs(
            ctx.path, config.shard_allow
        ):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                name = _shard_count_identifier(node.right) or _shard_count_identifier(
                    node.left
                )
                if name is not None:
                    yield self.diag(
                        ctx,
                        node,
                        f"modulo arithmetic on shard count {name!r} outside the "
                        "shard router; placement must stay consistent with the "
                        "persisted layout",
                        "route through ShardRouter.shard_of_seq / shard_of_name "
                        "instead of computing placement locally",
                    )
                    continue
            if _formats_shard_name(node):
                yield self.diag(
                    ctx,
                    node,
                    "shard name constructed outside the shard router; "
                    "only repro/shard may spell out shard-NN names",
                    "use ShardRouter.shard_name(index) (or shard_names()) "
                    "so naming follows the persisted layout",
                )
