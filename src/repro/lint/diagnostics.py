"""Diagnostic records produced by lint rules."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple


class Severity(enum.Enum):
    """How seriously a finding should be taken.

    ``ERROR`` findings fail the gate; ``WARNING`` findings are reported
    but do not affect the exit status unless ``--strict`` is given.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code anchored to a source location.

    ``fixit`` is a short, imperative hint telling the author how to
    bring the code back inside the invariant (or how to justify an
    exemption) — every rule must provide one.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    fixit: str
    severity: Severity = Severity.ERROR

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        """``file:line:col: CODE message (fix: ...)`` — one line."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"{self.message} (fix: {self.fixit})"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "fixit": self.fixit,
            "severity": self.severity.value,
        }


def parse_error(path: str, line: int, message: str, detail: Optional[str] = None) -> Diagnostic:
    """Uniform diagnostic for files the checker cannot parse at all."""
    text = message if detail is None else f"{message}: {detail}"
    return Diagnostic(
        path=path,
        line=max(line, 1),
        col=1,
        code="LSVD000",
        message=text,
        fixit="fix the syntax error so the invariant checker can parse the file",
    )
