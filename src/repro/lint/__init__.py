"""repro.lint — static enforcement of LSVD's global invariants.

The correctness argument of a log-structured virtual disk rests on a
handful of repo-wide properties (PAPER.md §3.1–3.3) that no unit test
can pin down locally:

* backend objects are immutable once PUT, and only the block-store
  layer may mutate the object stream (LSVD001);
* object / record sequence numbers are allocated in exactly one place
  and are strictly monotone (LSVD002);
* everything under ``core/``, ``sim/``, ``gcsim/``, ``workloads/`` and
  ``devices/`` is deterministic — simulated clock and seeded RNG only
  (LSVD003);
* recovery code never swallows an exception it cannot classify
  (LSVD004);
* LBA-denominated and byte-denominated quantities never mix silently
  (LSVD005);
* ``struct`` wire formats stay in lock-step with the header dataclasses
  that describe them (LSVD006).

This package parses the source tree with :mod:`ast` and checks those
properties.  Run it as ``python -m repro.lint [paths]`` or via the
``repro-lint`` console script; a tier-1 pytest (``tests/test_lint_clean.py``)
keeps the real tree clean.

Per-line opt-outs use ``# lint: disable=CODE[,CODE...]`` comments;
module allowlists live in :mod:`repro.lint.config` and may be extended
from ``pyproject.toml`` under ``[tool.repro-lint]``.
"""

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.framework import LintRunner, ModuleContext, Rule, run_lint
from repro.lint.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "LintConfig",
    "LintRunner",
    "ModuleContext",
    "Rule",
    "Severity",
    "run_lint",
]
