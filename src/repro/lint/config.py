"""Configuration for the invariant checker.

Defaults encode the repo's actual layering contract; projects embedding
the checker (or future PRs that add legitimate call sites) extend the
allowlists from ``pyproject.toml``::

    [tool.repro-lint]
    ignore = ["LSVD005"]
    immutability-allow = ["core/new_destager.py"]
    sequence-allow = ["core/new_destager.py"]
    store-receivers = ["remote_store"]

Module paths are matched as *suffixes* of the path after the ``repro``
package directory, so ``core/block_store.py`` matches
``src/repro/core/block_store.py`` wherever the tree is checked out.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Set, Tuple

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback
    tomllib = None  # type: ignore[assignment]

#: package directory used to anchor relative module keys
PACKAGE_MARKER = "repro"

#: modules allowed to call ObjectStore.put/.delete directly: the block
#: store itself, its checkpoint/replication helpers, the object-store
#: implementations, and the timed runtime model of the destage daemon.
DEFAULT_IMMUTABILITY_ALLOW: Tuple[str, ...] = (
    "core/block_store.py",
    "core/replication.py",
    "core/checkpoint.py",
    "cluster/layouts.py",
    "objstore/s3.py",
    "objstore/directory.py",
    "objstore/simulated.py",
    "runtime/backend.py",
    "runtime/lsvd.py",
    "runtime/sharded.py",
    "shard/store.py",
)

#: receiver names that identify an object-store handle at a call site
DEFAULT_STORE_RECEIVERS: Tuple[str, ...] = (
    "store",
    "object_store",
    "objstore",
    "backend",
    "target",
    "source_store",
    "inner",
)

#: modules that own sequence-number arithmetic: the wire format, the
#: backend object allocator, and the cache-log allocator.
DEFAULT_SEQUENCE_ALLOW: Tuple[str, ...] = (
    "core/log.py",
    "core/block_store.py",
    "core/write_cache.py",
)

#: directories whose code must be deterministic (simulated clock +
#: seeded RNG only) for experiments to be replayable (§4)
DEFAULT_DETERMINISM_DIRS: Tuple[str, ...] = (
    "core/",
    "sim/",
    "gcsim/",
    "workloads/",
    "devices/",
    "crash/",
    "obs/",
    "shard/",
    "fleet/",
)

#: modules that may compute shard placement / spell out shard names —
#: the LSVD008 ownership boundary.  A directory prefix covers the whole
#: package.
DEFAULT_SHARD_ALLOW: Tuple[str, ...] = ("shard/",)

#: directories whose stat counters / reporting must go through repro.obs
DEFAULT_OBS_DIRS: Tuple[str, ...] = (
    "core/",
    "runtime/",
    "fleet/",
)

#: modules exempt from LSVD007: the user-facing reporting surfaces.  The
#: CLI and the analysis/lint reporters print by design; they *consume*
#: the registry rather than feeding it.
DEFAULT_OBS_ALLOW: Tuple[str, ...] = (
    "cli.py",
    "analysis/report.py",
    "lint/reporters.py",
)

#: attribute-name substrings that mark an ad-hoc stat counter when
#: incremented as a public ``self.<name> += ...``
DEFAULT_STAT_MARKERS: Tuple[str, ...] = (
    "hits",
    "misses",
    "bytes",
    "writes",
    "reads",
    "puts",
    "gets",
    "deletes",
    "barriers",
    "flushes",
    "evicted",
    "evictions",
    "rounds",
    "count",
)

#: data-plane modules held to hot-path hygiene (LSVD009): no O(n) list
#: shuffles or per-extent ``bytes()`` copies outside blessed helpers
DEFAULT_HOTPATH_MODULES: Tuple[str, ...] = (
    "core/extent_map.py",
    "core/volume.py",
    "core/batch.py",
    "core/log.py",
)

#: blessed fast-path helpers: ``module.py::function`` entries exempt one
#: function (the extent map's bounded-chunk mutators, where the shifted
#: list is a chunk, not the whole map); a bare module suffix exempts the
#: file.  Cold-path exemptions (recovery decode, checkpoint restore) are
#: added from pyproject via ``hotpath-allow``.
DEFAULT_HOTPATH_BLESSED: Tuple[str, ...] = (
    "core/extent_map.py::_leaf_insert",
    "core/extent_map.py::_split_chunk",
    "core/extent_map.py::_replace_run",
    "core/extent_map.py::_maybe_fold",
)

#: directories where exception handlers must not swallow errors
DEFAULT_RECOVERY_DIRS: Tuple[str, ...] = (
    "core/",
    "crash/",
)

#: call names that count as "recording" an error inside a handler
DEFAULT_ERROR_RECORDING: Tuple[str, ...] = (
    "append",
    "add_error",
    "record_error",
    "warning",
    "error",
    "exception",
    "critical",
    "fail",
)

#: identifier substrings marking LBA-denominated values
DEFAULT_LBA_MARKERS: Tuple[str, ...] = ("lba",)

#: identifier substrings marking byte-denominated values
DEFAULT_BYTE_MARKERS: Tuple[str, ...] = ("byte", "off")

#: struct constant -> header dataclass pairs that must stay in lock-step,
#: keyed by module suffix
DEFAULT_STRUCT_DATACLASS_MAP: Dict[str, Dict[str, str]] = {
    "core/log.py": {"_OBJ_EXT": "ObjectExtent"},
}

# -- flow rules (LSVD010-LSVD013) -------------------------------------------

#: directories whose PUT handles are settlement-tracked (LSVD010)
DEFAULT_SETTLEMENT_DIRS: Tuple[str, ...] = (
    "core/",
    "shard/",
    "objstore/",
    "runtime/",
    "obs/",
    "fleet/",
)

#: method names whose return value is an in-flight-write handle
DEFAULT_FLOW_PUT_METHODS: Tuple[str, ...] = ("put",)

#: receiver names whose ``.put()`` yields a trackable handle; matched as
#: the exact name or a ``_``-separated suffix (``dst_shard`` -> ``shard``)
DEFAULT_FLOW_PUT_RECEIVERS: Tuple[str, ...] = DEFAULT_STORE_RECEIVERS + ("shard",)

#: modules holding completion/ack call sites (LSVD011) — the write path,
#: its settlement ledger, replication, and the timed destage pipeline
DEFAULT_DURABILITY_MODULES: Tuple[str, ...] = (
    "core/volume.py",
    "core/write_cache.py",
    "core/block_store.py",
    "core/replication.py",
    "runtime/lsvd.py",
)

#: calls that complete/acknowledge client-visible state: releasing cache
#: log space, retiring superseded checkpoints, deleting GC victims
DEFAULT_DURABILITY_ACK_CALLS: Tuple[str, ...] = (
    "release_through",
    "retire_old_checkpoints",
    "_advance_release_frontier",
    "delete_victims",
    "_release_space",
)

#: calls whose completion is durability evidence dominating an ack
DEFAULT_DURABILITY_EVIDENCE_CALLS: Tuple[str, ...] = (
    "settle",
    "settle_put",
    "settle_all",
    "flush",
    "barrier",
    "recover",
)

#: calls that count as evidence only when awaited/yielded — in the timed
#: model ``yield backend.put(...)`` resumes when the PUT settles
DEFAULT_DURABILITY_YIELD_EVIDENCE: Tuple[str, ...] = (
    "put",
    "write",
    "flush",
    "barrier",
)

#: function-name substrings marking recovery/GC code paths (LSVD012)
DEFAULT_RECOVERY_FUNCTION_MARKERS: Tuple[str, ...] = (
    "recover",
    "replay",
    "restore",
    "mount",
    "load",
    "open",
    "clean",
    "gc",
    "victim",
)

#: ``self.<attr>`` substrings naming recovery-critical in-memory state
DEFAULT_RECOVERY_STATE_MARKERS: Tuple[str, ...] = (
    "map",
    "omap",
    "record",
    "snapshot",
    "seq",
    "epoch",
    "super",
    "ckpt",
    "checkpoint",
    "history",
    "frontier",
    "batch",
)

#: method names that mutate a container attribute in place
DEFAULT_STATE_MUTATORS: Tuple[str, ...] = (
    "update",
    "add",
    "add_object",
    "remove",
    "discard",
    "pop",
    "popleft",
    "append",
    "appendleft",
    "extend",
    "clear",
    "insert",
    "apply_extent",
    "apply_gc_extent",
    "restore",
    "trim",
    "drop_object",
    "setdefault",
)

#: calls that persist state durably (checked against durable receivers)
DEFAULT_DURABLE_WRITE_CALLS: Tuple[str, ...] = (
    "put",
    "write",
    "flush",
    "barrier",
    "write_checkpoint",
    "write_super",
    "checkpoint",
    "delete",
)

#: receiver names that address durable media (stores, plus the cache
#: image/device and the layered write-path objects)
DEFAULT_DURABLE_RECEIVERS: Tuple[str, ...] = DEFAULT_STORE_RECEIVERS + (
    "image",
    "device",
    "bs",
    "wc",
)

#: directories the async-cancellation rule (LSVD013) watches
DEFAULT_ASYNC_DIRS: Tuple[str, ...] = (
    "core/",
    "shard/",
    "objstore/",
    "runtime/",
    "fleet/",
)

#: ``self.<attr>`` substrings naming settlement-coupled state an async
#: function must not leave dangling across an await point
DEFAULT_ASYNC_STATE_MARKERS: Tuple[str, ...] = (
    "map",
    "pending",
    "batch",
    "record",
    "seq",
    "head",
    "frontier",
    "ledger",
    "settled",
    "dirty",
    "inflight",
    "in_flight",
    "copied",
)

#: calls that settle/register the pending mutation, closing the window
DEFAULT_ASYNC_SETTLE_CALLS: Tuple[str, ...] = (
    "settle",
    "settle_put",
    "settle_all",
    "release",
    "release_through",
    "barrier",
    "flush",
    "commit",
    "checkpoint",
    "succeed",
)

# -- span hygiene (LSVD015) -------------------------------------------------

#: repro-package directories whose span handles are hygiene-tracked;
#: files outside any ``repro`` package (benchmarks, examples) are always
#: in scope — span misuse there corrupts the very latency attributions
#: the benchmarks gate on
DEFAULT_SPAN_DIRS: Tuple[str, ...] = (
    "core/",
    "runtime/",
    "shard/",
    "objstore/",
    "obs/",
    "crash/",
    "fleet/",
)

#: receiver names whose ``.root()`` / ``.begin()`` yields a span handle;
#: matched as the exact name or a ``_``-separated suffix
DEFAULT_SPAN_RECEIVERS: Tuple[str, ...] = (
    "span",
    "spans",
    "root",
    "parent",
    "child",
)

#: method names that open a span (the recorder's ``root`` and a span's
#: ``begin``)
DEFAULT_SPAN_BEGIN_METHODS: Tuple[str, ...] = ("root", "begin")

# -- barrier coalescing (LSVD014) -------------------------------------------

#: modules whose commit-barrier paths are checked for coalescing safety
DEFAULT_BARRIER_MODULES: Tuple[str, ...] = (
    "core/write_cache.py",
    "core/volume.py",
    "runtime/lsvd.py",
    "runtime/bcache.py",
)

#: function-name substrings marking a commit-barrier / group-commit path
DEFAULT_BARRIER_FUNCTION_MARKERS: Tuple[str, ...] = (
    "barrier",
    "group_commit",
    "commit_worker",
)

#: receiver names of the completion events a barrier settles; matched as
#: the exact name or a ``_``-separated suffix (``first_done`` -> ``done``)
DEFAULT_BARRIER_SETTLE_RECEIVERS: Tuple[str, ...] = (
    "done",
    "waiter",
    "barrier",
    "event",
)

#: calls whose completion is the covering-FLUSH evidence; in a coroutine
#: the call must be yielded/awaited (a bare ``ssd.flush()`` there returns
#: an unwaited Event — fire-and-forget, not evidence)
DEFAULT_BARRIER_EVIDENCE_CALLS: Tuple[str, ...] = ("flush",)

# -- tenant isolation (LSVD016) ---------------------------------------------

#: modules allowed to construct QoS enforcement machinery and hold
#: cross-tenant rate state: the fleet control plane itself
DEFAULT_FLEET_ALLOW: Tuple[str, ...] = ("fleet/",)

#: class names whose construction is confined to ``fleet_allow`` —
#: declaring limits (QoSLimits) is fine anywhere; *enforcing* them is not
DEFAULT_FLEET_BUCKET_CLASSES: Tuple[str, ...] = (
    "QoSTokenBucket",
    "TenantThrottle",
    "ThrottleSet",
    "CoreAdmission",
)

#: ``self.<attr>`` names holding cross-tenant mutable state; touching
#: them outside the fleet package couples tenants behind the QoS layer
DEFAULT_FLEET_STATE_MARKERS: Tuple[str, ...] = (
    "_tenants",
    "_throttles",
)

#: modules whose volume I/O entry points must pass admission before
#: forwarding to a shared resource (the flow half of the rule)
DEFAULT_FLEET_MODULES: Tuple[str, ...] = (
    "fleet/",
    "core/volume.py",
    "runtime/lsvd.py",
)

#: function-name substrings marking a volume I/O entry point
DEFAULT_FLEET_ENTRY_MARKERS: Tuple[str, ...] = (
    "write",
    "read",
    "submit",
)

#: receiver names that address a shared resource at a forward site
DEFAULT_FLEET_FORWARD_RECEIVERS: Tuple[str, ...] = (
    "wc",
    "ssd",
    "volume",
    "vol",
    "runtime",
    "device",
)

#: method names that forward an I/O into the data plane
DEFAULT_FLEET_FORWARD_METHODS: Tuple[str, ...] = (
    "append",
    "write",
    "writev",
    "read",
    "submit",
)

#: calls that count as admission evidence on a path
DEFAULT_FLEET_ADMISSION_CALLS: Tuple[str, ...] = (
    "admit",
    "admit_io",
    "_admission",
    "reserve",
)

#: identifier substrings marking a QoS handle in a branch test — the
#: false side of ``self.qos is not None`` (no tenant attached) is a
#: legitimate admission-free path
DEFAULT_FLEET_QOS_MARKERS: Tuple[str, ...] = (
    "qos",
    "throttle",
    "admission",
)


# -- placement confinement (LSVD017) ----------------------------------------

#: the one module that owns temperature classification
DEFAULT_PLACEMENT_ALLOW: Tuple[str, ...] = ("core/placement.py",)

#: concrete policy classes whose construction is confined — everyone
#: else goes through ``make_policy``
DEFAULT_PLACEMENT_POLICY_CLASSES: Tuple[str, ...] = (
    "SepBitPolicy",
    "SingleClassPolicy",
)

#: private classifier state; touching it outside the policy forks the
#: invalidation-time metadata
DEFAULT_PLACEMENT_STATE_MARKERS: Tuple[str, ...] = (
    "_page_temp",
    "_page_last",
    "_life_sum",
    "_life_n",
)

#: class constants arithmetic on which counts as ad-hoc classification
DEFAULT_PLACEMENT_TEMP_CONSTANTS: Tuple[str, ...] = (
    "TEMP_HOT",
    "TEMP_WARM",
    "TEMP_COLD",
    "NUM_TEMPS",
)

#: placement-consuming modules held to the relocation-flow check
DEFAULT_PLACEMENT_MODULES: Tuple[str, ...] = (
    "core/block_store.py",
    "core/gc.py",
    "gcsim/simulator.py",
)

#: calls that emit a GC relocation object (``gc=`` keyword, when
#: present, must be the constant True to count)
DEFAULT_PLACEMENT_RELOC_CALLS: Tuple[str, ...] = (
    "seal_gc_batch",
    "_store_object",
)

#: calls that count as classifier evidence dominating a relocation write
DEFAULT_PLACEMENT_CLASSIFIER_CALLS: Tuple[str, ...] = (
    "plan_relocation",
    "split_relocation",
    "on_write",
)


@dataclass(frozen=True)
class LintConfig:
    """Immutable checker configuration; see module docstring."""

    select: Optional[Tuple[str, ...]] = None
    ignore: Tuple[str, ...] = ()
    immutability_allow: Tuple[str, ...] = DEFAULT_IMMUTABILITY_ALLOW
    store_receivers: Tuple[str, ...] = DEFAULT_STORE_RECEIVERS
    sequence_allow: Tuple[str, ...] = DEFAULT_SEQUENCE_ALLOW
    shard_allow: Tuple[str, ...] = DEFAULT_SHARD_ALLOW
    determinism_dirs: Tuple[str, ...] = DEFAULT_DETERMINISM_DIRS
    recovery_dirs: Tuple[str, ...] = DEFAULT_RECOVERY_DIRS
    error_recording_names: Tuple[str, ...] = DEFAULT_ERROR_RECORDING
    lba_markers: Tuple[str, ...] = DEFAULT_LBA_MARKERS
    byte_markers: Tuple[str, ...] = DEFAULT_BYTE_MARKERS
    obs_dirs: Tuple[str, ...] = DEFAULT_OBS_DIRS
    obs_allow: Tuple[str, ...] = DEFAULT_OBS_ALLOW
    stat_markers: Tuple[str, ...] = DEFAULT_STAT_MARKERS
    hotpath_modules: Tuple[str, ...] = DEFAULT_HOTPATH_MODULES
    hotpath_blessed: Tuple[str, ...] = DEFAULT_HOTPATH_BLESSED
    struct_dataclass_map: Mapping[str, Mapping[str, str]] = field(
        default_factory=lambda: dict(DEFAULT_STRUCT_DATACLASS_MAP)
    )
    # flow rules (LSVD010-LSVD013)
    settlement_dirs: Tuple[str, ...] = DEFAULT_SETTLEMENT_DIRS
    settlement_allow: Tuple[str, ...] = ()
    flow_put_methods: Tuple[str, ...] = DEFAULT_FLOW_PUT_METHODS
    flow_put_receivers: Tuple[str, ...] = DEFAULT_FLOW_PUT_RECEIVERS
    durability_modules: Tuple[str, ...] = DEFAULT_DURABILITY_MODULES
    durability_allow: Tuple[str, ...] = ()
    durability_ack_calls: Tuple[str, ...] = DEFAULT_DURABILITY_ACK_CALLS
    durability_evidence_calls: Tuple[str, ...] = DEFAULT_DURABILITY_EVIDENCE_CALLS
    durability_yield_evidence: Tuple[str, ...] = DEFAULT_DURABILITY_YIELD_EVIDENCE
    recovery_order_allow: Tuple[str, ...] = ()
    recovery_function_markers: Tuple[str, ...] = DEFAULT_RECOVERY_FUNCTION_MARKERS
    recovery_state_markers: Tuple[str, ...] = DEFAULT_RECOVERY_STATE_MARKERS
    state_mutators: Tuple[str, ...] = DEFAULT_STATE_MUTATORS
    durable_write_calls: Tuple[str, ...] = DEFAULT_DURABLE_WRITE_CALLS
    durable_receivers: Tuple[str, ...] = DEFAULT_DURABLE_RECEIVERS
    async_dirs: Tuple[str, ...] = DEFAULT_ASYNC_DIRS
    async_allow: Tuple[str, ...] = ()
    async_state_markers: Tuple[str, ...] = DEFAULT_ASYNC_STATE_MARKERS
    async_settle_calls: Tuple[str, ...] = DEFAULT_ASYNC_SETTLE_CALLS
    # span hygiene (LSVD015)
    span_dirs: Tuple[str, ...] = DEFAULT_SPAN_DIRS
    span_allow: Tuple[str, ...] = ()
    span_receivers: Tuple[str, ...] = DEFAULT_SPAN_RECEIVERS
    span_begin_methods: Tuple[str, ...] = DEFAULT_SPAN_BEGIN_METHODS
    # barrier coalescing (LSVD014)
    barrier_modules: Tuple[str, ...] = DEFAULT_BARRIER_MODULES
    barrier_allow: Tuple[str, ...] = ()
    barrier_function_markers: Tuple[str, ...] = DEFAULT_BARRIER_FUNCTION_MARKERS
    barrier_settle_receivers: Tuple[str, ...] = DEFAULT_BARRIER_SETTLE_RECEIVERS
    barrier_evidence_calls: Tuple[str, ...] = DEFAULT_BARRIER_EVIDENCE_CALLS
    # tenant isolation (LSVD016)
    fleet_allow: Tuple[str, ...] = DEFAULT_FLEET_ALLOW
    fleet_admission_allow: Tuple[str, ...] = ()
    fleet_bucket_classes: Tuple[str, ...] = DEFAULT_FLEET_BUCKET_CLASSES
    fleet_state_markers: Tuple[str, ...] = DEFAULT_FLEET_STATE_MARKERS
    fleet_modules: Tuple[str, ...] = DEFAULT_FLEET_MODULES
    fleet_entry_markers: Tuple[str, ...] = DEFAULT_FLEET_ENTRY_MARKERS
    fleet_forward_receivers: Tuple[str, ...] = DEFAULT_FLEET_FORWARD_RECEIVERS
    fleet_forward_methods: Tuple[str, ...] = DEFAULT_FLEET_FORWARD_METHODS
    fleet_admission_calls: Tuple[str, ...] = DEFAULT_FLEET_ADMISSION_CALLS
    fleet_qos_markers: Tuple[str, ...] = DEFAULT_FLEET_QOS_MARKERS
    # placement confinement (LSVD017)
    placement_allow: Tuple[str, ...] = DEFAULT_PLACEMENT_ALLOW
    placement_flow_allow: Tuple[str, ...] = ()
    placement_policy_classes: Tuple[str, ...] = DEFAULT_PLACEMENT_POLICY_CLASSES
    placement_state_markers: Tuple[str, ...] = DEFAULT_PLACEMENT_STATE_MARKERS
    placement_temp_constants: Tuple[str, ...] = DEFAULT_PLACEMENT_TEMP_CONSTANTS
    placement_modules: Tuple[str, ...] = DEFAULT_PLACEMENT_MODULES
    placement_reloc_calls: Tuple[str, ...] = DEFAULT_PLACEMENT_RELOC_CALLS
    placement_classifier_calls: Tuple[str, ...] = (
        DEFAULT_PLACEMENT_CLASSIFIER_CALLS
    )

    # -- code filtering --------------------------------------------------
    def code_enabled(self, code: str) -> bool:
        if code in self.ignore:
            return False
        if self.select is not None and code not in self.select:
            return False
        return True

    # -- module addressing ----------------------------------------------
    @staticmethod
    def module_key(path: str) -> str:
        """Path of a module relative to the ``repro`` package directory.

        Files outside any ``repro`` directory (test fixtures, scratch
        trees) key on their bare filename, which matches no allowlist —
        i.e. fixtures are checked with no exemptions unless they are laid
        out as ``.../repro/<subdir>/<file>.py``.
        """
        parts = pathlib.PurePath(path).parts
        for i in range(len(parts) - 1, -1, -1):
            if parts[i] == PACKAGE_MARKER:
                return "/".join(parts[i + 1 :])
        return parts[-1] if parts else path

    def module_allowed(self, path: str, allow: Sequence[str]) -> bool:
        key = self.module_key(path)
        return any(key == entry or key.endswith("/" + entry) for entry in allow)

    def module_in_dirs(self, path: str, dirs: Sequence[str]) -> bool:
        key = self.module_key(path)
        return any(key.startswith(d) for d in dirs)

    def scoped_allow(
        self, path: str, entries: Sequence[str]
    ) -> Tuple[FrozenSet[str], bool]:
        """Per-function exemptions for one module.

        Entries take the form ``core/volume.py::_finish_gc_round`` (one
        function) or a bare module suffix (the whole file).  Returns
        ``(exempt function names, whole-module exemption)``.
        """
        key = self.module_key(path)
        names: Set[str] = set()
        whole = False
        for entry in entries:
            module, sep, func = entry.partition("::")
            if key != module and not key.endswith("/" + module):
                continue
            if sep and func:
                names.add(func)
            else:
                whole = True
        return frozenset(names), whole

    # -- pyproject integration ------------------------------------------
    @classmethod
    def from_pyproject(cls, pyproject: pathlib.Path) -> "LintConfig":
        """Defaults merged with the ``[tool.repro-lint]`` table, if any."""
        base = cls()
        if tomllib is None or not pyproject.is_file():
            return base
        with open(pyproject, "rb") as fh:
            data = tomllib.load(fh)
        table = data.get("tool", {}).get("repro-lint", {})
        if not isinstance(table, dict):
            return base

        def _extend(current: Tuple[str, ...], key: str) -> Tuple[str, ...]:
            extra = table.get(key, [])
            if not isinstance(extra, list):
                return current
            return current + tuple(str(item) for item in extra)

        select = table.get("select")
        return replace(
            base,
            select=tuple(str(c) for c in select) if isinstance(select, list) else None,
            ignore=_extend(base.ignore, "ignore"),
            immutability_allow=_extend(base.immutability_allow, "immutability-allow"),
            store_receivers=_extend(base.store_receivers, "store-receivers"),
            sequence_allow=_extend(base.sequence_allow, "sequence-allow"),
            shard_allow=_extend(base.shard_allow, "shard-allow"),
            obs_allow=_extend(base.obs_allow, "obs-allow"),
            stat_markers=_extend(base.stat_markers, "stat-markers"),
            hotpath_blessed=_extend(base.hotpath_blessed, "hotpath-allow"),
            settlement_allow=_extend(base.settlement_allow, "settlement-allow"),
            flow_put_receivers=_extend(
                base.flow_put_receivers, "flow-put-receivers"
            ),
            durability_allow=_extend(base.durability_allow, "durability-allow"),
            durability_ack_calls=_extend(
                base.durability_ack_calls, "durability-ack-calls"
            ),
            durability_evidence_calls=_extend(
                base.durability_evidence_calls, "durability-evidence-calls"
            ),
            recovery_order_allow=_extend(
                base.recovery_order_allow, "recovery-order-allow"
            ),
            recovery_state_markers=_extend(
                base.recovery_state_markers, "recovery-state-markers"
            ),
            async_allow=_extend(base.async_allow, "async-allow"),
            async_state_markers=_extend(
                base.async_state_markers, "async-state-markers"
            ),
            async_settle_calls=_extend(
                base.async_settle_calls, "async-settle-calls"
            ),
            span_allow=_extend(base.span_allow, "span-allow"),
            span_receivers=_extend(base.span_receivers, "span-receivers"),
            barrier_modules=_extend(base.barrier_modules, "barrier-modules"),
            barrier_allow=_extend(base.barrier_allow, "barrier-allow"),
            barrier_settle_receivers=_extend(
                base.barrier_settle_receivers, "barrier-settle-receivers"
            ),
            fleet_allow=_extend(base.fleet_allow, "fleet-allow"),
            fleet_admission_allow=_extend(
                base.fleet_admission_allow, "fleet-admission-allow"
            ),
            fleet_bucket_classes=_extend(
                base.fleet_bucket_classes, "fleet-bucket-classes"
            ),
            fleet_state_markers=_extend(
                base.fleet_state_markers, "fleet-state-markers"
            ),
            fleet_forward_receivers=_extend(
                base.fleet_forward_receivers, "fleet-forward-receivers"
            ),
            placement_allow=_extend(base.placement_allow, "placement-allow"),
            placement_flow_allow=_extend(
                base.placement_flow_allow, "placement-flow-allow"
            ),
        )


def discover_config(start: pathlib.Path) -> LintConfig:
    """Find the nearest ``pyproject.toml`` at or above ``start``."""
    probe = start if start.is_dir() else start.parent
    for candidate in [probe, *probe.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return LintConfig.from_pyproject(pyproject)
    return LintConfig()
