"""Text and JSON renderings of a diagnostic list."""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Sequence

from repro.lint.diagnostics import Diagnostic

#: bumped when the JSON shape changes; consumers should check it
JSON_SCHEMA_VERSION = 1


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """One ``file:line:col: CODE message`` line per finding plus a tally."""
    lines = [d.render() for d in diagnostics]
    if diagnostics:
        by_code = Counter(d.code for d in diagnostics)
        tally = ", ".join(f"{code}×{n}" for code, n in sorted(by_code.items()))
        lines.append(f"{len(diagnostics)} finding(s): {tally}")
    else:
        lines.append("clean: all LSVD invariants hold")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    return json.dumps(json_document(diagnostics), indent=2, sort_keys=True)


def json_document(diagnostics: Sequence[Diagnostic]) -> Dict[str, Any]:
    by_code: Dict[str, int] = dict(Counter(d.code for d in diagnostics))
    payload: List[Dict[str, Any]] = [d.as_dict() for d in diagnostics]
    return {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "repro-lint",
        "diagnostics": payload,
        "summary": {
            "total": len(diagnostics),
            "by_code": by_code,
            "clean": not diagnostics,
        },
    }
