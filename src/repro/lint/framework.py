"""Shared visitor framework: file discovery, parsing, suppressions.

Suppression comments are line-scoped and name the codes they silence::

    seq += 1  # lint: disable=LSVD002 -- event-heap tiebreaker, not an object seq

Only the listed codes are silenced, and only on that physical line.
Comments are extracted with :mod:`tokenize`, so a ``# lint:`` inside a
string literal is never treated as a suppression.
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Union

from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic, parse_error

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*disable=([A-Z][A-Z0-9]*(?:\s*,\s*[A-Z][A-Z0-9]*)*)")


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> codes disabled on that line."""
    table: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            table.setdefault(tok.start[0], set()).update(codes)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # the AST parse will report the real problem
    return table


class ImportMap:
    """Resolve local names back to the modules/objects they were bound to.

    ``import random as rnd`` binds ``rnd -> random``; ``from time import
    monotonic as mono`` binds ``mono -> time.monotonic``.  Rules use this
    to recognise forbidden calls regardless of aliasing.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.bindings: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.bindings[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.bindings[local] = f"{node.module}.{alias.name}"

    def qualified(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute expression, if import-rooted.

        ``rnd.Random`` -> ``random.Random`` when ``rnd`` aliases
        :mod:`random`; plain local names resolve through ``from`` imports.
        Returns None for expressions not rooted in an import binding.
        """
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        root = self.bindings.get(cur.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    path: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    _imports: Optional[ImportMap] = None

    @property
    def imports(self) -> ImportMap:
        if self._imports is None:
            self._imports = ImportMap(self.tree)
        return self._imports

    def suppressed(self, line: int, code: str) -> bool:
        return code in self.suppressions.get(line, set())


class Rule:
    """Base class for one rule family.

    Subclasses set ``code``/``name``/``summary`` and implement
    :meth:`check`, yielding diagnostics; the runner applies suppression
    and select/ignore filtering centrally.
    """

    code: str = "LSVD000"
    name: str = "abstract"
    summary: str = ""

    def check(self, ctx: ModuleContext, config: LintConfig) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        message: str,
        fixit: str,
    ) -> Diagnostic:
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            fixit=fixit,
        )


def iter_python_files(paths: Sequence[Union[str, pathlib.Path]]) -> Iterator[pathlib.Path]:
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py":
            yield path


class LintRunner:
    """Parse each file once and run every enabled rule over it."""

    def __init__(self, rules: Iterable[Rule], config: Optional[LintConfig] = None) -> None:
        self.rules = [r for r in rules]
        self.config = config or LintConfig()

    def check_source(self, path: str, source: str) -> List[Diagnostic]:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [parse_error(path, exc.lineno or 1, "cannot parse file", exc.msg)]
        ctx = ModuleContext(
            path=path,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )
        findings: List[Diagnostic] = []
        for rule in self.rules:
            if not self.config.code_enabled(rule.code):
                continue
            for diag in rule.check(ctx, self.config):
                if not ctx.suppressed(diag.line, diag.code):
                    findings.append(diag)
        return findings

    def check_paths(self, paths: Sequence[Union[str, pathlib.Path]]) -> List[Diagnostic]:
        findings: List[Diagnostic] = []
        for file_path in iter_python_files(paths):
            try:
                source = file_path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                findings.append(parse_error(str(file_path), 1, "cannot read file", str(exc)))
                continue
            findings.extend(self.check_source(str(file_path), source))
        findings.sort(key=Diagnostic.sort_key)
        return findings


def run_lint(
    paths: Sequence[Union[str, pathlib.Path]],
    config: Optional[LintConfig] = None,
    rules: Optional[Iterable[Rule]] = None,
) -> List[Diagnostic]:
    """Convenience entry point used by tests and the CLI."""
    from repro.lint.rules import ALL_RULES

    chosen = list(rules) if rules is not None else [cls() for cls in ALL_RULES]
    return LintRunner(chosen, config).check_paths(paths)
