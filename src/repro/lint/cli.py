"""Command-line front end: ``python -m repro.lint`` / ``repro-lint``.

Exit status: 0 clean, 1 findings, 2 usage error.  ``--format json``
emits the machine-readable document described in
:mod:`repro.lint.reporters`.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.lint.config import LintConfig, discover_config
from repro.lint.framework import run_lint
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import ALL_RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Check the LSVD tree against its global invariants "
        "(LSVD001-LSVD006).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        default=None,
        help="comma-separated codes to skip",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="skip pyproject.toml discovery; use built-in defaults only",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its summary and exit",
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [c.strip().upper() for c in raw.split(",") if c.strip()]


def list_rules() -> str:
    lines = []
    for cls in ALL_RULES:
        lines.append(f"{cls.code}  {cls.name}")
        lines.append(f"        {cls.summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0

    first = pathlib.Path(args.paths[0]).resolve()
    if not first.exists():
        print(f"repro-lint: no such path: {args.paths[0]}", file=sys.stderr)
        return 2
    config = LintConfig() if args.no_config else discover_config(first)

    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    known = {cls.code for cls in ALL_RULES}
    unknown = [c for c in (select or []) + (ignore or []) if c not in known]
    if unknown:
        print(
            f"repro-lint: unknown code(s): {', '.join(unknown)} "
            f"(see --list-rules)",
            file=sys.stderr,
        )
        return 2
    if select is not None or ignore is not None:
        from dataclasses import replace

        config = replace(
            config,
            select=tuple(select) if select is not None else config.select,
            ignore=config.ignore + tuple(ignore or ()),
        )

    diagnostics = run_lint(args.paths, config)
    report = render_json(diagnostics) if args.format == "json" else render_text(diagnostics)
    print(report)
    return 1 if diagnostics else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
