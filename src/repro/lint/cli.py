"""Command-line front end: ``python -m repro.lint`` / ``repro-lint``.

Exit status: 0 clean, 1 findings, 2 usage error.  ``--format json``
emits the machine-readable document described in
:mod:`repro.lint.reporters`.  ``--explain`` (optionally with ``--rule
LSVD0NN``) prints each rule's invariant, example violation, and paper
section, parsed live from the rule class docstrings so the help text
can never drift from the implementation.
"""

from __future__ import annotations

import argparse
import inspect
import pathlib
import re
import sys
import textwrap
from typing import Dict, List, Optional, Type

from repro.lint.config import LintConfig, discover_config
from repro.lint.framework import Rule, run_lint
from repro.lint.reporters import render_json, render_text
from repro.lint.rules import ALL_RULES

#: docstring section headers recognised by --explain (``::`` starts an
#: RST literal block for the example snippet)
_SECTION_RE = re.compile(r"^(Invariant|Example violation|Paper)::?$")


def rule_sections(cls: Type[Rule]) -> Dict[str, str]:
    """Parse the ``Invariant:`` / ``Example violation:`` / ``Paper:``
    sections out of a rule class docstring."""
    doc = inspect.cleandoc(cls.__doc__ or "")
    sections: Dict[str, List[str]] = {}
    current: Optional[str] = None
    for line in doc.splitlines():
        match = _SECTION_RE.match(line.strip())
        if match:
            current = match.group(1)
            sections[current] = []
        elif current is not None:
            sections[current].append(line)
    return {
        key: textwrap.dedent("\n".join(lines)).strip("\n")
        for key, lines in sections.items()
    }


def explain_rules(codes: Optional[List[str]] = None) -> str:
    chunks: List[str] = []
    for cls in ALL_RULES:
        if codes is not None and cls.code not in codes:
            continue
        sections = rule_sections(cls)
        lines = [f"{cls.code} · {cls.name}", f"  {cls.summary}"]
        for header in ("Invariant", "Example violation", "Paper"):
            body = sections.get(header)
            if not body:
                continue
            lines.append(f"{header}:")
            lines.extend(f"  {ln}" if ln else "" for ln in body.splitlines())
        chunks.append("\n".join(lines))
    return "\n\n".join(chunks)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Check the LSVD tree against its global invariants "
        "(LSVD001-LSVD013).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        default=None,
        help="comma-separated codes to skip",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="skip pyproject.toml discovery; use built-in defaults only",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its summary and exit",
    )
    parser.add_argument(
        "--rule",
        metavar="CODE",
        default=None,
        help="restrict the run (or --explain) to one rule code",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print each rule's invariant, example violation, and paper "
        "section (from the rule docstrings) and exit",
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [c.strip().upper() for c in raw.split(",") if c.strip()]


def list_rules() -> str:
    lines = []
    for cls in ALL_RULES:
        lines.append(f"{cls.code}  {cls.name}")
        lines.append(f"        {cls.summary}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0

    known = {cls.code for cls in ALL_RULES}
    rule = args.rule.strip().upper() if args.rule else None
    if rule is not None and rule not in known:
        print(
            f"repro-lint: unknown code: {rule} (see --list-rules)",
            file=sys.stderr,
        )
        return 2
    if args.explain:
        print(explain_rules([rule] if rule is not None else None))
        return 0

    first = pathlib.Path(args.paths[0]).resolve()
    if not first.exists():
        print(f"repro-lint: no such path: {args.paths[0]}", file=sys.stderr)
        return 2
    config = LintConfig() if args.no_config else discover_config(first)

    select = _split_codes(args.select)
    ignore = _split_codes(args.ignore)
    if rule is not None:
        select = [rule] if select is None else [c for c in select if c == rule]
    unknown = [c for c in (select or []) + (ignore or []) if c not in known]
    if unknown:
        print(
            f"repro-lint: unknown code(s): {', '.join(unknown)} "
            f"(see --list-rules)",
            file=sys.stderr,
        )
        return 2
    if select is not None or ignore is not None:
        from dataclasses import replace

        config = replace(
            config,
            select=tuple(select) if select is not None else config.select,
            ignore=config.ignore + tuple(ignore or ()),
        )

    diagnostics = run_lint(args.paths, config)
    report = render_json(diagnostics) if args.format == "json" else render_text(diagnostics)
    print(report)
    return 1 if diagnostics else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
