"""Pure, in-memory S3-like object stores.

These implement the minimal S3 semantics LSVD depends on: PUTs are atomic
and objects immutable-by-convention; LIST returns lexicographically sorted
names; ranged GETs are cheap.  The :class:`UnsettledObjectStore` wrapper
adds the failure behaviour of real object stores that §3.3 is written
against: concurrent PUTs complete out of order, and a client crash loses
any PUT that has not completed.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterable, List


class NoSuchKeyError(KeyError):
    """GET/DELETE of a missing object (S3 NoSuchKey)."""


@dataclass
class ObjectStoreStats:
    """Operation counters, used for backend-load accounting."""

    puts: int = 0
    gets: int = 0
    range_gets: int = 0
    deletes: int = 0
    lists: int = 0
    copies: int = 0
    bytes_put: int = 0
    bytes_got: int = 0

    def add(self, other: "ObjectStoreStats") -> None:
        """Accumulate ``other`` into this instance (per-shard merging)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    @classmethod
    def merged(cls, parts: Iterable["ObjectStoreStats"]) -> "ObjectStoreStats":
        total = cls()
        for part in parts:
            total.add(part)
        return total

    def publish(self, obs, prefix: str = "objstore") -> None:
        """Mirror the counters into a :class:`repro.obs.Registry`.

        Called at reporting time (``repro stats``) so per-store counters
        land in the same snapshot as the stack's own metrics.
        """
        for f in fields(self):
            obs.counter(f"{prefix}.{f.name}").set(getattr(self, f.name))


class ObjectStore:
    """Abstract S3-ish interface (see module docstring)."""

    def put(self, name: str, data: bytes) -> None:
        raise NotImplementedError

    def get(self, name: str) -> bytes:
        raise NotImplementedError

    def get_range(self, name: str, offset: int, length: int) -> bytes:
        raise NotImplementedError

    def delete(self, name: str) -> None:
        raise NotImplementedError

    def list(self, prefix: str = "") -> List[str]:
        raise NotImplementedError

    def exists(self, name: str) -> bool:
        raise NotImplementedError

    def size(self, name: str) -> int:
        raise NotImplementedError

    def copy(self, src: str, dst: str) -> None:
        """Server-side copy (the replication primitive of §4.8)."""
        self.put(dst, self.get(src))


class InMemoryObjectStore(ObjectStore):
    """Immediate in-memory store: every operation completes synchronously."""

    def __init__(self) -> None:
        self._objects: Dict[str, bytes] = {}
        self.stats = ObjectStoreStats()

    def put(self, name: str, data: bytes) -> None:
        self._objects[name] = bytes(data)
        self.stats.puts += 1
        self.stats.bytes_put += len(data)

    def get(self, name: str) -> bytes:
        try:
            data = self._objects[name]
        except KeyError:
            raise NoSuchKeyError(name) from None
        self.stats.gets += 1
        self.stats.bytes_got += len(data)
        return data

    def get_range(self, name: str, offset: int, length: int) -> bytes:
        try:
            data = self._objects[name]
        except KeyError:
            raise NoSuchKeyError(name) from None
        if offset < 0 or length < 0:
            raise ValueError("negative range")
        piece = data[offset : offset + length]
        self.stats.range_gets += 1
        self.stats.bytes_got += len(piece)
        return piece

    def delete(self, name: str) -> None:
        if name not in self._objects:
            raise NoSuchKeyError(name)
        del self._objects[name]
        self.stats.deletes += 1

    def list(self, prefix: str = "") -> List[str]:
        self.stats.lists += 1
        return sorted(n for n in self._objects if n.startswith(prefix))

    def exists(self, name: str) -> bool:
        return name in self._objects

    def size(self, name: str) -> int:
        try:
            return len(self._objects[name])
        except KeyError:
            raise NoSuchKeyError(name) from None

    def copy(self, src: str, dst: str) -> None:
        if src not in self._objects:
            raise NoSuchKeyError(src)
        self._objects[dst] = self._objects[src]
        self.stats.copies += 1

    def total_bytes(self, prefix: str = "") -> int:
        return sum(len(d) for n, d in self._objects.items() if n.startswith(prefix))


@dataclass
class _PendingPut:
    name: str
    data: bytes


class UnsettledObjectStore(ObjectStore):
    """Holds PUTs in flight until :meth:`settle`; crash drops the rest.

    Models multiple overlapped PUTs completing out of order over the
    network: object N+1 can become visible while object N is still in
    flight, producing exactly the "stranded write" streams (e.g. objects
    99, 100, 102 present but 101 lost) that LSVD's prefix-rule recovery
    must clean up (§3.3).
    """

    def __init__(self, inner: ObjectStore, obs=None):
        self.inner = inner
        #: optional repro.obs Registry; crash() records a trace event in it
        self.obs = obs
        # Share the inner store's counters so wrapping is transparent to
        # accounting: ``repro stats`` sees PUT/GET/copy traffic whether or
        # not the store was wrapped for fault injection.
        self.stats = getattr(inner, "stats", None) or ObjectStoreStats()
        self._pending: Dict[int, _PendingPut] = {}
        self._next_handle = 0

    # -- in-flight control ------------------------------------------------
    def put(self, name: str, data: bytes) -> int:
        """Start a PUT; returns a handle. NOT visible until settled."""
        handle = self._next_handle
        self._next_handle += 1
        self._pending[handle] = _PendingPut(name, bytes(data))
        return handle

    def settle(self, handle: int) -> None:
        """Complete one in-flight PUT (any order)."""
        put = self._pending.pop(handle)
        self.inner.put(put.name, put.data)

    def settle_all(self) -> None:
        for handle in sorted(self._pending):
            self.settle(handle)

    def crash(self) -> List[str]:
        """Client crash: in-flight PUTs vanish; returns their names."""
        lost = [p.name for p in self._pending.values()]
        self._pending.clear()
        if self.obs is not None:
            self.obs.trace.emit("crash", lost_puts=len(lost))
        return lost

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def pending_handles(self) -> List[int]:
        """Handles of every in-flight PUT, oldest first."""
        return sorted(self._pending)

    # -- reads pass through (only settled objects are visible) ------------
    def get(self, name: str) -> bytes:
        return self.inner.get(name)

    def get_range(self, name: str, offset: int, length: int) -> bytes:
        return self.inner.get_range(name, offset, length)

    def delete(self, name: str) -> None:
        self.inner.delete(name)

    def list(self, prefix: str = "") -> List[str]:
        return self.inner.list(prefix)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def size(self, name: str) -> int:
        return self.inner.size(name)

    def copy(self, src: str, dst: str) -> None:
        """Server-side copy, delegated to the inner store.

        The base-class fallback (``put(dst, get(src))``) would enqueue an
        in-flight PUT whose handle nobody holds — the copy would silently
        vanish at the next :meth:`crash`.  Real server-side copies do not
        travel through the client, so they settle immediately.
        """
        self.inner.copy(src, dst)
