"""A filesystem-backed object store: one file per object.

Lets the examples and tools persist LSVD volumes across process runs
without any external service — handy for poking at object streams with
standard tools, and a template for wiring a real S3 client (the API is
the same five operations).

Object names are percent-encoded into file names so arbitrary keys are
safe on any filesystem.
"""

from __future__ import annotations

import os
import tempfile
import urllib.parse
from pathlib import Path
from typing import List

from repro.objstore.s3 import NoSuchKeyError, ObjectStore, ObjectStoreStats


def _encode(name: str) -> str:
    return urllib.parse.quote(name, safe="._-")


def _decode(filename: str) -> str:
    return urllib.parse.unquote(filename)


class DirectoryObjectStore(ObjectStore):
    """Objects as files under a directory; PUTs are atomic via rename."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = ObjectStoreStats()

    def _path(self, name: str) -> Path:
        return self.root / _encode(name)

    def _write_atomic(self, name: str, data: bytes) -> None:
        # write-then-rename gives the atomic PUT semantics LSVD relies on
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, self._path(name))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def put(self, name: str, data: bytes) -> None:
        self._write_atomic(name, data)
        self.stats.puts += 1
        self.stats.bytes_put += len(data)

    def get(self, name: str) -> bytes:
        try:
            data = self._path(name).read_bytes()
        except FileNotFoundError:
            raise NoSuchKeyError(name) from None
        self.stats.gets += 1
        self.stats.bytes_got += len(data)
        return data

    def get_range(self, name: str, offset: int, length: int) -> bytes:
        if offset < 0 or length < 0:
            raise ValueError("negative range")
        try:
            with open(self._path(name), "rb") as fh:
                fh.seek(offset)
                piece = fh.read(length)
        except FileNotFoundError:
            raise NoSuchKeyError(name) from None
        self.stats.range_gets += 1
        self.stats.bytes_got += len(piece)
        return piece

    def delete(self, name: str) -> None:
        try:
            os.unlink(self._path(name))
        except FileNotFoundError:
            raise NoSuchKeyError(name) from None
        self.stats.deletes += 1

    def list(self, prefix: str = "") -> List[str]:
        self.stats.lists += 1
        names = []
        for entry in self.root.iterdir():
            if entry.name.startswith(".tmp-") or not entry.is_file():
                continue
            name = _decode(entry.name)
            if name.startswith(prefix):
                names.append(name)
        return sorted(names)

    def exists(self, name: str) -> bool:
        return self._path(name).is_file()

    def size(self, name: str) -> int:
        try:
            return self._path(name).stat().st_size
        except FileNotFoundError:
            raise NoSuchKeyError(name) from None

    def copy(self, src: str, dst: str) -> None:
        """Server-side copy: bytes never leave the store, only ``copies``
        is charged (the replication primitive of §4.8)."""
        try:
            data = self._path(src).read_bytes()
        except FileNotFoundError:
            raise NoSuchKeyError(src) from None
        self._write_atomic(dst, data)
        self.stats.copies += 1

    def total_bytes(self, prefix: str = "") -> int:
        return sum(self.size(n) for n in self.list(prefix))
