"""S3-like object stores.

LSVD needs only five operations from its backend (§3): atomic PUT of an
immutable object, GET, ranged GET, DELETE, and prefix LIST — plus
server-side COPY for the asynchronous-replication experiment (§4.8).

* :class:`~repro.objstore.s3.ObjectStore` — the abstract interface.
* :class:`~repro.objstore.s3.InMemoryObjectStore` — immediate, pure store
  used by all functional/consistency tests.
* :class:`~repro.objstore.s3.UnsettledObjectStore` — wrapper that holds
  PUTs "in flight" until explicitly settled, in any order, and drops
  un-settled ones at a crash; this produces the stranded/holey object
  streams whose recovery §3.3 describes.
* :class:`~repro.objstore.simulated.SimulatedObjectStore` — timed facade
  used by :mod:`repro.runtime`: charges network transfer and backend
  cluster device time for every operation.
"""

from repro.objstore.s3 import (
    InMemoryObjectStore,
    NoSuchKeyError,
    ObjectStore,
    ObjectStoreStats,
    UnsettledObjectStore,
)

__all__ = [
    "InMemoryObjectStore",
    "NoSuchKeyError",
    "ObjectStore",
    "ObjectStoreStats",
    "UnsettledObjectStore",
]
