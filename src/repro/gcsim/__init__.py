"""Fast trace-driven batching + garbage-collection simulator (§4.6, Table 5)."""

from repro.gcsim.simulator import GCSimReport, GCSimulator

__all__ = ["GCSimReport", "GCSimulator"]
