"""Page-granular simulator of LSVD write batching and greedy GC.

This is the tool behind Table 5: it replays a block trace through the
LSVD batching pipeline (32 MiB batches, intra-batch coalescing) and the
greedy garbage collector (70 % start / 75 % stop utilisation thresholds),
reporting write amplification, merge ratio, and the final extent-map size
with and without the hole-plugging defragmentation of §4.6.

The full :mod:`repro.core` stack stores real bytes and would not scale to
hundreds of gigabytes of trace; this simulator keeps only the *mapping*
state, in numpy arrays at 4 KiB page granularity:

* ``page_obj[page]`` — object id currently holding the page (-1 = unmapped)
* ``page_off[page]`` — page's position inside that object

which is sufficient for every statistic Table 5 reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

PAGE = 4096


@dataclass
class GCSimReport:
    """Result of one simulation run."""

    client_bytes: int
    merged_bytes: int  # eliminated by intra-batch coalescing
    backend_bytes: int  # data objects + GC relocation writes
    gc_bytes: int
    extent_count: int
    holes_plugged: int
    objects_written: int
    objects_deleted: int

    @property
    def waf(self) -> float:
        """Write amplification: backend bytes per client byte."""
        if self.client_bytes == 0:
            return 0.0
        return self.backend_bytes / self.client_bytes

    @property
    def merge_ratio(self) -> float:
        """Fraction of client data eliminated by write coalescing."""
        if self.client_bytes == 0:
            return 0.0
        return self.merged_bytes / self.client_bytes


class GCSimulator:
    """Replay a write trace through batching + greedy GC."""

    def __init__(
        self,
        volume_size: int,
        batch_size: int = 32 << 20,
        gc_low: float = 0.70,
        gc_high: float = 0.75,
        merge: bool = True,
        defrag_hole_pages: int = 0,
        gc_window: int = 8,
    ):
        if volume_size % PAGE:
            raise ValueError("volume_size must be page aligned")
        self.n_pages = volume_size // PAGE
        self.batch_pages = max(1, batch_size // PAGE)
        self.gc_low = gc_low
        self.gc_high = gc_high
        self.merge = merge
        self.defrag_hole_pages = defrag_hole_pages
        self.gc_window = gc_window

        self.page_obj = np.full(self.n_pages, -1, dtype=np.int64)
        self.page_off = np.zeros(self.n_pages, dtype=np.int64)
        self.obj_pages: Dict[int, np.ndarray] = {}  # creation page lists
        self.obj_size: Dict[int, int] = {}  # pages at creation
        self.obj_live: Dict[int, int] = {}
        self._next_obj = 0
        self._batch: List[int] = []  # page numbers in arrival order

        self.client_pages = 0
        self.merged_pages = 0
        self.backend_pages = 0
        self.gc_pages = 0
        self.holes_plugged = 0
        self.objects_written = 0
        self.objects_deleted = 0

    # ------------------------------------------------------------------
    def write(self, offset: int, length: int) -> None:
        """One client write (page-aligned; partial pages round up)."""
        first = offset // PAGE
        last = (offset + length + PAGE - 1) // PAGE
        for page in range(first, min(last, self.n_pages)):
            self._batch.append(page)
            self.client_pages += 1
        while len(self._batch) >= self.batch_pages:
            self._flush_batch(self._batch[: self.batch_pages])
            self._batch = self._batch[self.batch_pages :]

    def replay(self, writes: Iterable[Tuple[int, int]]) -> None:
        for offset, length in writes:
            self.write(offset, length)

    def flush_batch(self) -> bool:
        """Seal and store the accumulating partial batch, if any.

        The public face of the batcher for out-of-band seals: the timed
        runtime's idle flusher (batch-timeout expiry) and its commit
        barriers (a flushed log should not strand a half-built object)
        both route through here, as does :meth:`finish`.  Returns True
        when a batch was written, False when there was nothing pending.
        """
        if not self._batch:
            return False
        batch, self._batch = self._batch, []
        self._flush_batch(batch)
        return True

    # ------------------------------------------------------------------
    def _flush_batch(self, pages: List[int]) -> None:
        if self.merge:
            # last occurrence wins; preserve order of survivors
            seen = set()
            unique_rev = []
            for page in reversed(pages):
                if page not in seen:
                    seen.add(page)
                    unique_rev.append(page)
            survivors = unique_rev[::-1]
            self.merged_pages += len(pages) - len(survivors)
        else:
            survivors = pages
        arr = np.asarray(survivors, dtype=np.int64)
        self._store_object(arr, gc=False)
        self._maybe_gc()

    def _store_object(self, pages: np.ndarray, gc: bool) -> int:
        obj = self._next_obj
        self._next_obj += 1
        # displace previous owners
        prev = self.page_obj[pages]
        for prev_obj in prev[prev >= 0]:
            self.obj_live[int(prev_obj)] -= 1
        self.page_obj[pages] = obj
        self.page_off[pages] = np.arange(len(pages), dtype=np.int64)
        self.obj_pages[obj] = pages
        self.obj_size[obj] = len(pages)
        self.obj_live[obj] = len(pages)
        self.backend_pages += len(pages)
        if gc:
            self.gc_pages += len(pages)
        self.objects_written += 1
        return obj

    # ------------------------------------------------------------------
    def utilization(self) -> float:
        total = sum(self.obj_size.values())
        if total == 0:
            return 1.0
        return sum(self.obj_live.values()) / total

    def _maybe_gc(self) -> None:
        if self.utilization() >= self.gc_low:
            return
        while self.utilization() < self.gc_high:
            # never clean objects at or above the stop watermark: freeing
            # their few dead pages costs almost a whole object of copies
            # and cannot raise overall utilisation.
            victims = sorted(
                (
                    o
                    for o in self.obj_size
                    if self.obj_size[o] > 0
                    and self.obj_live[o] / self.obj_size[o] < self.gc_high
                ),
                key=lambda o: self.obj_live[o] / self.obj_size[o],
            )[: self.gc_window]
            if not victims:
                break
            self._clean(victims)

    def _clean(self, victims: List[int]) -> None:
        live_pages: List[np.ndarray] = []
        for victim in victims:
            pages = self.obj_pages[victim]
            still = pages[self.page_obj[pages] == victim]
            if len(still):
                live_pages.append(np.unique(still))
        if live_pages:
            pages = np.unique(np.concatenate(live_pages))
            pages = self._plug_holes(pages)
            # relocate in chunks of batch size
            for start in range(0, len(pages), self.batch_pages):
                self._store_object(pages[start : start + self.batch_pages], gc=True)
        for victim in victims:
            del self.obj_pages[victim], self.obj_size[victim], self.obj_live[victim]
            self.objects_deleted += 1

    def _plug_holes(self, pages: np.ndarray) -> np.ndarray:
        """§4.6 defrag: copy small mapped gaps along with the live data."""
        limit = self.defrag_hole_pages
        if limit <= 0 or len(pages) < 2:
            return pages
        gaps = []
        diffs = np.diff(pages)
        for idx in np.nonzero((diffs > 1) & (diffs <= limit + 1))[0]:
            candidate = np.arange(pages[idx] + 1, pages[idx + 1])
            mapped = candidate[self.page_obj[candidate] >= 0]
            if len(mapped) == len(candidate):  # only plug fully mapped gaps
                gaps.append(mapped)
        if not gaps:
            return pages
        plug = np.concatenate(gaps)
        self.holes_plugged += len(plug)
        # plugged pages are read from their current objects and rewritten
        return np.unique(np.concatenate([pages, plug]))

    # ------------------------------------------------------------------
    def finish(self) -> GCSimReport:
        """Flush the partial batch and report final statistics."""
        self.flush_batch()
        return GCSimReport(
            client_bytes=self.client_pages * PAGE,
            merged_bytes=self.merged_pages * PAGE,
            backend_bytes=self.backend_pages * PAGE,
            gc_bytes=self.gc_pages * PAGE,
            extent_count=self.extent_count(),
            holes_plugged=self.holes_plugged,
            objects_written=self.objects_written,
            objects_deleted=self.objects_deleted,
        )

    def extent_count(self) -> int:
        """Number of map extents: maximal runs contiguous in both the
        address space and the object space."""
        mapped = self.page_obj >= 0
        if not mapped.any():
            return 0
        same_obj = self.page_obj[1:] == self.page_obj[:-1]
        contig_off = self.page_off[1:] == self.page_off[:-1] + 1
        both_mapped = mapped[1:] & mapped[:-1]
        joins = same_obj & contig_off & both_mapped
        # each mapped page starts an extent unless joined to its predecessor
        starts = mapped.copy()
        starts[1:] &= ~joins
        return int(starts.sum())
