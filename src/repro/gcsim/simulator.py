"""Page-granular simulator of LSVD write batching and GC.

This is the tool behind Table 5: it replays a block trace through the
LSVD batching pipeline (32 MiB batches, intra-batch coalescing) and the
garbage collector (70 % start / 75 % stop utilisation thresholds),
reporting write amplification, merge ratio, and the final extent-map size
with and without the hole-plugging defragmentation of §4.6.

The full :mod:`repro.core` stack stores real bytes and would not scale to
hundreds of gigabytes of trace; this simulator keeps only the *mapping*
state, in numpy arrays at 4 KiB page granularity:

* ``page_obj[page]`` — object id currently holding the page (-1 = unmapped)
* ``page_off[page]`` — page's position inside that object

which is sufficient for every statistic Table 5 reports.

Data placement is delegated to the *same* policy objects the full stack
uses (:mod:`repro.core.placement`): writes are classified per operation
into one open batch per temperature class, GC victims are ordered by the
shared :func:`~repro.core.placement.select_victims`, and relocated
survivors re-enter the classifier through the shared
:func:`~repro.core.placement.plan_relocation` — so a placement change
validated here is, by construction, the behaviour of the real stack
(the differential test in ``tests/test_placement_differential.py`` holds
the two engines to identical class decisions and relocation counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.placement import (
    PlacementPolicy,
    make_policy,
    plan_relocation,
    select_victims,
)

PAGE = 4096


@dataclass
class GCSimReport:
    """Result of one simulation run."""

    client_bytes: int
    merged_bytes: int  # eliminated by intra-batch coalescing
    backend_bytes: int  # data objects + GC relocation writes
    gc_bytes: int
    extent_count: int
    holes_plugged: int
    objects_written: int
    objects_deleted: int

    @property
    def waf(self) -> float:
        """Write amplification: backend bytes per client byte."""
        if self.client_bytes == 0:
            return 0.0
        return self.backend_bytes / self.client_bytes

    @property
    def merge_ratio(self) -> float:
        """Fraction of client data eliminated by write coalescing."""
        if self.client_bytes == 0:
            return 0.0
        return self.merged_bytes / self.client_bytes


class GCSimulator:
    """Replay a write trace through batching + GC."""

    def __init__(
        self,
        volume_size: int,
        batch_size: int = 32 << 20,
        gc_low: float = 0.70,
        gc_high: float = 0.75,
        merge: bool = True,
        defrag_hole_pages: int = 0,
        gc_window: int = 8,
        policy: Optional[PlacementPolicy] = None,
        gc_policy: str = "greedy",
    ):
        if volume_size % PAGE:
            raise ValueError("volume_size must be page aligned")
        self.n_pages = volume_size // PAGE
        self.batch_pages = max(1, batch_size // PAGE)
        self.gc_low = gc_low
        self.gc_high = gc_high
        self.merge = merge
        self.defrag_hole_pages = defrag_hole_pages
        self.gc_window = gc_window
        #: placement policy shared with the full stack; the default keeps
        #: the single-stream legacy behaviour
        self.policy = policy if policy is not None else make_policy("legacy")
        self.gc_policy = gc_policy

        self.page_obj = np.full(self.n_pages, -1, dtype=np.int64)
        self.page_off = np.zeros(self.n_pages, dtype=np.int64)
        self.obj_pages: Dict[int, np.ndarray] = {}  # creation page lists
        self.obj_size: Dict[int, int] = {}  # pages at creation
        self.obj_live: Dict[int, int] = {}
        self.obj_temp: Dict[int, int] = {}
        self._next_obj = 0
        #: one open batch per temperature class: page numbers in arrival order
        self._batches: Dict[int, List[int]] = {}
        #: which class batch holds the newest buffered version of a page;
        #: the page-granular analogue of WriteBatch.discard — a rewrite
        #: landing in a different class disowns the stale buffered copy
        self._pending_owner: Dict[int, int] = {}

        self.client_pages = 0
        self.merged_pages = 0
        self.backend_pages = 0
        self.gc_pages = 0
        self.class_pages: Dict[int, int] = {}  # backend pages per class
        self.holes_plugged = 0
        self.objects_written = 0
        self.objects_deleted = 0

    # ------------------------------------------------------------------
    def write(self, offset: int, length: int) -> None:
        """One client write (page-aligned; partial pages round up)."""
        temp = self.policy.on_write(offset, length)
        batch = self._batches.setdefault(temp, [])
        first = offset // PAGE
        last = (offset + length + PAGE - 1) // PAGE
        for page in range(first, min(last, self.n_pages)):
            batch.append(page)
            self._pending_owner[page] = temp
            self.client_pages += 1
        if len(batch) >= self.batch_pages:
            # lockstep group seal, mirroring BlockStore._seal_group: when
            # any class batch fills, *all* open class batches seal together
            # (ascending temperature — the record-free ordering of the full
            # stack), so the durable record set stays a contiguous prefix
            # of the client stream and cross-class rewrites can never
            # strand a discarded predecessor behind its own seal
            self.flush_batch()

    def replay(self, writes: Iterable[Tuple[int, int]]) -> None:
        for offset, length in writes:
            self.write(offset, length)

    def flush_batch(self) -> bool:
        """Seal and store the accumulating partial batches, if any.

        Every seal routes through here: the in-band group seal when one
        class batch fills (see :meth:`write`), the timed runtime's idle
        flusher (batch-timeout expiry) and its commit barriers (a flushed
        log should not strand a half-built object), and :meth:`finish`.
        Classes flush hottest-first, matching the record-free ordering of
        the full stack's ``seal_all`` / ``_seal_group``.  Returns True
        when anything was written.
        """
        flushed = False
        for temp in sorted(self._batches):
            batch = self._batches[temp]
            if not batch:
                continue
            self._batches[temp] = []
            self._flush_batch(batch, temp)
            flushed = True
        return flushed

    # ------------------------------------------------------------------
    def _flush_batch(self, pages: List[int], temp: int) -> None:
        if self.merge:
            # last occurrence wins; preserve order of survivors; pages
            # disowned by a rewrite into another class batch drop out here
            seen = set()
            unique_rev = []
            for page in reversed(pages):
                if page not in seen and self._pending_owner.get(page) == temp:
                    seen.add(page)
                    unique_rev.append(page)
            survivors = unique_rev[::-1]
            self.merged_pages += len(pages) - len(survivors)
        else:
            survivors = [p for p in pages if self._pending_owner.get(p) == temp]
            self.merged_pages += len(pages) - len(survivors)
        for page in survivors:
            # pop, not del: with merge disabled a page may appear twice
            # in one batch's survivor list
            self._pending_owner.pop(page, None)
        # a sealed WriteBatch gathers its data in map order (ascending
        # LBA), not arrival order; mirror that layout so page_off models
        # the real object and GC live runs merge identically across the
        # engines (the differential test holds them to it)
        arr = np.asarray(sorted(survivors), dtype=np.int64)
        self._store_object(arr, gc=False, temp=temp)
        self._maybe_gc()

    def _store_object(self, pages: np.ndarray, gc: bool, temp: int = 0) -> int:
        obj = self._next_obj
        self._next_obj += 1
        # displace previous owners
        prev = self.page_obj[pages]
        for prev_obj in prev[prev >= 0]:
            self.obj_live[int(prev_obj)] -= 1
        self.page_obj[pages] = obj
        self.page_off[pages] = np.arange(len(pages), dtype=np.int64)
        self.obj_pages[obj] = pages
        self.obj_size[obj] = len(pages)
        self.obj_live[obj] = len(pages)
        self.obj_temp[obj] = temp
        self.backend_pages += len(pages)
        self.class_pages[temp] = self.class_pages.get(temp, 0) + len(pages)
        if gc:
            self.gc_pages += len(pages)
        self.objects_written += 1
        return obj

    # ------------------------------------------------------------------
    def utilization(self) -> float:
        total = sum(self.obj_size.values())
        if total == 0:
            return 1.0
        return sum(self.obj_live.values()) / total

    def occupancy_by_class(self) -> Dict[int, Tuple[int, int]]:
        """Per-class (live pages, total pages), mirroring the full stack's
        ``BlockStore.occupancy_by_class`` for side-by-side reporting."""
        out: Dict[int, List[int]] = {}
        for obj, size in self.obj_size.items():
            slot = out.setdefault(self.obj_temp.get(obj, 0), [0, 0])
            slot[0] += self.obj_live[obj]
            slot[1] += size
        return {t: (live, total) for t, (live, total) in sorted(out.items())}

    def _maybe_gc(self) -> None:
        if self.utilization() >= self.gc_low:
            return
        while self.utilization() < self.gc_high:
            victims = select_victims(
                [
                    (o, self.obj_live[o], self.obj_size[o])
                    for o in self.obj_size
                    if self.obj_size[o] > 0
                ],
                policy=self.gc_policy,
                window=self.gc_window,
                high_watermark=self.gc_high,
            )
            if not victims:
                break
            self._clean(victims)

    def _clean(self, victims: List[int]) -> None:
        live_pages: List[np.ndarray] = []
        for victim in victims:
            pages = self.obj_pages[victim]
            still = pages[self.page_obj[pages] == victim]
            if len(still):
                live_pages.append(np.unique(still))
        if live_pages:
            pages = np.unique(np.concatenate(live_pages))
            pages = self._plug_holes(pages)
            # survivors re-enter the classifier through the shared
            # relocation planner; pieces mirror the full stack's map
            # extents (maximal runs contiguous in address space, object,
            # and object offset) so the two engines chunk identically
            for temp, chunk in plan_relocation(
                self._live_runs(pages), self.policy, self.batch_pages * PAGE
            ):
                chunk_pages = np.concatenate(
                    [
                        np.arange(lba // PAGE, lba // PAGE + length // PAGE)
                        for lba, length, _src, _payload in chunk
                    ]
                )
                self._store_object(chunk_pages, gc=True, temp=temp)
        for victim in victims:
            del self.obj_pages[victim], self.obj_size[victim], self.obj_live[victim]
            self.obj_temp.pop(victim, None)
            self.objects_deleted += 1

    def _live_runs(
        self, pages: np.ndarray
    ) -> List[Tuple[int, int, int, None]]:
        """Group relocated pages into (lba, length, src_obj, None) pieces.

        Runs break wherever the address space, the owning object, or the
        in-object offset breaks — exactly the merge rule of the full
        stack's extent map, so piece boundaries (and therefore relocation
        chunk cuts) agree across the engines.
        """
        runs: List[Tuple[int, int, int, None]] = []
        if not len(pages):
            return runs
        start = prev = int(pages[0])
        for page_ in pages[1:]:
            page = int(page_)
            contiguous = (
                page == prev + 1
                and self.page_obj[page] == self.page_obj[prev]
                and self.page_off[page] == self.page_off[prev] + 1
            )
            if not contiguous:
                runs.append(
                    (start * PAGE, (prev - start + 1) * PAGE, int(self.page_obj[start]), None)
                )
                start = page
            prev = page
        runs.append(
            (start * PAGE, (prev - start + 1) * PAGE, int(self.page_obj[start]), None)
        )
        return runs

    def _plug_holes(self, pages: np.ndarray) -> np.ndarray:
        """§4.6 defrag: copy small mapped gaps along with the live data."""
        limit = self.defrag_hole_pages
        if limit <= 0 or len(pages) < 2:
            return pages
        gaps = []
        diffs = np.diff(pages)
        for idx in np.nonzero((diffs > 1) & (diffs <= limit + 1))[0]:
            candidate = np.arange(pages[idx] + 1, pages[idx + 1])
            mapped = candidate[self.page_obj[candidate] >= 0]
            if len(mapped) == len(candidate):  # only plug fully mapped gaps
                gaps.append(mapped)
        if not gaps:
            return pages
        plug = np.concatenate(gaps)
        self.holes_plugged += len(plug)
        # plugged pages are read from their current objects and rewritten
        return np.unique(np.concatenate([pages, plug]))

    # ------------------------------------------------------------------
    def finish(self) -> GCSimReport:
        """Flush the partial batches and report final statistics."""
        self.flush_batch()
        return GCSimReport(
            client_bytes=self.client_pages * PAGE,
            merged_bytes=self.merged_pages * PAGE,
            backend_bytes=self.backend_pages * PAGE,
            gc_bytes=self.gc_pages * PAGE,
            extent_count=self.extent_count(),
            holes_plugged=self.holes_plugged,
            objects_written=self.objects_written,
            objects_deleted=self.objects_deleted,
        )

    def extent_count(self) -> int:
        """Number of map extents: maximal runs contiguous in both the
        address space and the object space."""
        mapped = self.page_obj >= 0
        if not mapped.any():
            return 0
        same_obj = self.page_obj[1:] == self.page_obj[:-1]
        contig_off = self.page_off[1:] == self.page_off[:-1] + 1
        both_mapped = mapped[1:] & mapped[:-1]
        joins = same_obj & contig_off & both_mapped
        # each mapped page starts an extent unless joined to its predecessor
        starts = mapped.copy()
        starts[1:] &= ~joins
        return int(starts.sum())
