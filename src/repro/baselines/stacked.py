"""The bcache-over-RBD stack the paper benchmarks against (§4.1)."""

from __future__ import annotations

from typing import Tuple

from repro.baselines.bcache import BCache
from repro.baselines.rbd import RBDVolume
from repro.devices.image import DiskImage


def make_bcache_rbd(
    name: str,
    volume_size: int,
    cache_size: int,
) -> Tuple[BCache, RBDVolume, DiskImage]:
    """Build the paper's comparison stack: bcache in write-back mode over
    a triple-replicated RBD volume.  Returns (cache, backing, cache image)."""
    backing = RBDVolume(name, volume_size)
    cache_image = DiskImage(cache_size, name=f"bcache-{name}")
    cache = BCache(cache_image, backing, writeback=True)
    return cache, backing, cache_image
