"""A bcache-like write-back SSD cache baseline (§4.1, §5).

Behaviours the paper contrasts with LSVD, all modelled here:

* **update-in-place cache blocks** indexed by a B-tree: cache writes land
  wherever the allocator points, not in a log, so small random client
  writes stay random at the device;
* **metadata persistence on every commit barrier**: dirty B-tree nodes
  must be written out before the flush completes — the extra I/Os that
  make bcache up to 4x slower on sync-heavy workloads (§4.2.2);
* **write-back throttling**: under client load, write-back is paused
  entirely (the paper observed no destaging until the benchmark ended,
  Figure 11), and destaging proceeds in *LBA order*, not arrival order;
* **no ordering contract with the backing device**: if the cache device
  dies, the backing image contains an arbitrary subset of writes —
  possibly violating prefix consistency, which is how Table 4's
  unmountable filesystem happens.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from repro.baselines.rbd import RBDVolume
from repro.core.extent_map import ExtentMap
from repro.devices.image import DiskImage

BLOCK = 4096


@dataclass
class BCacheStats:
    client_writes: int = 0
    client_reads: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    metadata_writes: int = 0  # B-tree node writes (on barriers)
    destaged_writes: int = 0
    destaged_bytes: int = 0
    barriers: int = 0


@dataclass
class _DirtyBlock:
    lba: int
    cache_offset: int
    arrival: int  # global arrival index (to demonstrate reordering)


class BCache:
    """Write-back cache over a backing volume, bcache-style."""

    #: approximate number of extents indexed per 4 KiB B-tree node
    EXTENTS_PER_BTREE_NODE = 128

    def __init__(
        self,
        cache_image: DiskImage,
        backing: RBDVolume,
        writeback: bool = True,
    ):
        self.cache = cache_image
        self.backing = backing
        self.writeback = writeback
        self.map = ExtentMap()  # vLBA -> ("cache", cache offset)
        self._by_offset: Dict[int, int] = {}  # cache offset -> block lba
        self.dirty: Dict[int, _DirtyBlock] = {}  # keyed by lba
        self._alloc = 0
        self._arrival = 0
        self._dirty_btree_nodes: set = set()
        self._meta_region = self._meta_size()
        self.stats = BCacheStats()

    def _meta_size(self) -> int:
        # reserve ~1/64 of the cache device for B-tree nodes
        return max(BLOCK * 16, self.cache.size // 64 // BLOCK * BLOCK)

    @property
    def data_size(self) -> int:
        return (self.cache.size - self._meta_region) // BLOCK * BLOCK

    # ------------------------------------------------------------------
    # client operations
    # ------------------------------------------------------------------
    def write(self, offset: int, data: bytes) -> None:
        """Cache the write; durable mapping only after a barrier."""
        self._check(offset, len(data))
        self.stats.client_writes += 1
        pos = 0
        while pos < len(data):
            take = min(BLOCK - (offset + pos) % BLOCK, len(data) - pos)
            self._write_block(offset + pos, data[pos : pos + take])
            pos += take

    def _write_block(self, lba: int, data: bytes) -> None:
        block_lba = lba // BLOCK * BLOCK
        existing = [e for e in self.map.lookup(block_lba, BLOCK)]
        if existing and existing[0].lba == block_lba and existing[0].length == BLOCK:
            cache_off = existing[0].offset
        else:
            cache_off = self._allocate(block_lba)
        # read-modify-write within the 4K cache block
        current = bytearray(self.cache.read(cache_off, BLOCK))
        current[lba - block_lba : lba - block_lba + len(data)] = data
        self.cache.write(cache_off, bytes(current))
        self.map.update(block_lba, BLOCK, "cache", cache_off)
        self._by_offset[cache_off] = block_lba
        entry = self.dirty.get(block_lba)
        if entry is None:
            self.dirty[block_lba] = _DirtyBlock(block_lba, cache_off, self._arrival)
        else:
            entry.cache_offset = cache_off
        self._arrival += 1
        self._dirty_btree_nodes.add(block_lba // (BLOCK * self.EXTENTS_PER_BTREE_NODE))

    def _allocate(self, block_lba: int) -> int:
        """Bump allocator over the data area; evicts clean blocks."""
        for _ in range(self.data_size // BLOCK):
            offset = self._meta_region + self._alloc
            self._alloc = (self._alloc + BLOCK) % self.data_size
            victim_lba = self._by_offset.get(offset)
            if victim_lba is not None and victim_lba in self.dirty:
                continue  # cannot evict dirty blocks
            if victim_lba is not None:
                self.map.remove(victim_lba, BLOCK)
                del self._by_offset[offset]
            return offset
        raise RuntimeError("cache full of dirty data; write-back required")

    def read(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        self.stats.client_reads += 1
        out = bytearray(length)
        cursor = offset
        for start, piece_len, ext in self.map.lookup_with_gaps(offset, length):
            if ext is not None:
                self.stats.cache_hits += 1
                data = self.cache.read(
                    ext.offset + (start - ext.lba), piece_len
                )
            else:
                self.stats.cache_misses += 1
                data, _ops = self.backing.read(start, piece_len)
                self._insert_clean(start, data)
            out[start - offset : start - offset + piece_len] = data
        return bytes(out)

    def _insert_clean(self, lba: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            block_lba = (lba + pos) // BLOCK * BLOCK
            if block_lba >= lba and block_lba + BLOCK <= lba + len(data):
                off = self._allocate(block_lba)
                self.cache.write(off, data[block_lba - lba : block_lba - lba + BLOCK])
                self.map.update(block_lba, BLOCK, "cache", off)
                self._by_offset[off] = block_lba
            pos += BLOCK

    def flush(self) -> int:
        """Commit barrier: persist dirty B-tree nodes, then flush.

        Returns the number of metadata writes performed — the extra cost
        LSVD's pure log avoids (§4.2.2).
        """
        meta_writes = len(self._dirty_btree_nodes)
        for node in sorted(self._dirty_btree_nodes):
            node_off = (node * BLOCK) % self._meta_region
            self.cache.write(node_off, b"\xb7" * BLOCK)  # btree node image
            self.stats.metadata_writes += 1
        self._dirty_btree_nodes.clear()
        self.cache.flush()
        self.stats.barriers += 1
        return meta_writes

    # ------------------------------------------------------------------
    # write-back
    # ------------------------------------------------------------------
    def writeback_step(self, max_blocks: int = 64, under_load: bool = False) -> int:
        """Destage up to ``max_blocks`` dirty blocks to the backing volume.

        bcache throttles write-back under client load — with ``under_load``
        nothing is destaged (Figure 11's red curve).  Destaging proceeds in
        **LBA order** (bcache scans its B-tree), not arrival order, which
        is precisely why the backing image is not prefix-consistent.
        """
        if under_load or not self.writeback:
            return 0
        destaged = 0
        for lba in sorted(self.dirty):
            if destaged >= max_blocks:
                break
            entry = self.dirty.pop(lba)
            data = self.cache.read(entry.cache_offset, BLOCK)
            self.backing.write(lba, data)
            self.stats.destaged_writes += 1
            self.stats.destaged_bytes += BLOCK
            destaged += 1
        return destaged

    @property
    def dirty_blocks(self) -> int:
        return len(self.dirty)

    @property
    def dirty_bytes(self) -> int:
        return len(self.dirty) * BLOCK

    # ------------------------------------------------------------------
    # failure
    # ------------------------------------------------------------------
    def lose_cache(self) -> None:
        """Cache device dies: all cached-but-not-destaged data is gone.

        The backing volume is left with whatever arbitrary subset of
        writes happened to be destaged — the unmountable-filesystem
        scenario of Table 4.
        """
        self.cache.lose()
        self.map.clear()
        self._by_offset.clear()
        self.dirty.clear()
        self._dirty_btree_nodes.clear()

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or offset + length > self.backing.size:
            raise ValueError("I/O beyond end of volume")
