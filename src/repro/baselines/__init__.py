"""Baseline systems the paper compares against (§4.1, §5).

* :class:`~repro.baselines.rbd.RBDVolume` — a Ceph-RBD-like virtual disk:
  the image is split into mutable 4 MiB objects, every write is performed
  immediately at three replicas with a journal entry each (6 device I/Os
  per client write).
* :class:`~repro.baselines.bcache.BCache` — a bcache-like write-back SSD
  cache: B-tree-indexed cache blocks, metadata persisted only on commit
  barriers, write-back paused under load, and **no ordering guarantee**
  between cache and backing device — losing the cache can leave the
  backing image unrecoverable (Table 4).
* :func:`~repro.baselines.stacked.make_bcache_rbd` — the combined
  bcache-over-RBD stack used as the paper's main comparison point.
"""

from repro.baselines.bcache import BCache, BCacheStats
from repro.baselines.rbd import BackendWrite, RBDVolume
from repro.baselines.stacked import make_bcache_rbd

__all__ = ["BCache", "BCacheStats", "BackendWrite", "RBDVolume", "make_bcache_rbd"]
