"""A Ceph-RBD-like baseline virtual disk (§2.1, §5).

The disk image is striped over mutable, fixed-size (4 MiB) objects placed
by consistent hashing; every client write is applied synchronously and
replicated, pairing a write-ahead-journal append with the data write at
each replica.  The pure class keeps the image content (for correctness
checks) and emits :class:`BackendWrite` descriptors describing the device
I/O each operation generates; the timed runtime replays those descriptors
against the cluster simulator.

RBD acknowledges a write only after all replicas persist it, so — unlike
a write-back cache — a bare RBD volume is always crash-consistent, just
slow for small writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.devices.image import DiskImage

MiB = 1 << 20


@dataclass(frozen=True)
class BackendWrite:
    """One logical backend operation (pre-replication)."""

    object_key: str
    offset: int  # offset within the object
    nbytes: int
    io_class: str  # "data" | "journal" | "read"


@dataclass
class RBDStats:
    client_writes: int = 0
    client_reads: int = 0
    client_bytes_written: int = 0
    client_bytes_read: int = 0


class RBDVolume:
    """Replicated mutable-object virtual disk."""

    def __init__(self, name: str, size: int, object_size: int = 4 * MiB):
        if size <= 0 or object_size <= 0:
            raise ValueError("size and object_size must be positive")
        self.name = name
        self.size = size
        self.object_size = object_size
        self.image = DiskImage(size, name=f"rbd-{name}")
        self.stats = RBDStats()

    # ------------------------------------------------------------------
    def object_key(self, index: int) -> str:
        return f"{self.name}.obj{index:08d}"

    def _split(self, offset: int, length: int) -> List[Tuple[int, int, int]]:
        """Split a range into (object index, offset in object, length)."""
        out = []
        while length > 0:
            index = offset // self.object_size
            obj_off = offset % self.object_size
            take = min(length, self.object_size - obj_off)
            out.append((index, obj_off, take))
            offset += take
            length -= take
        return out

    # ------------------------------------------------------------------
    def write(self, offset: int, data: bytes) -> List[BackendWrite]:
        """Apply a client write; returns the backend ops it generates.

        The returned descriptors are per-replica-set: the layout multiplies
        them by the replica count and adds the journal copies.
        """
        self._check(offset, len(data))
        self.image.write(offset, data)
        self.image.flush()  # replicated+journaled: durable on ack
        self.stats.client_writes += 1
        self.stats.client_bytes_written += len(data)
        ops = []
        pos = 0
        for index, obj_off, take in self._split(offset, len(data)):
            ops.append(BackendWrite(self.object_key(index), obj_off, take, "data"))
            pos += take
        return ops

    def read(self, offset: int, length: int) -> Tuple[bytes, List[BackendWrite]]:
        self._check(offset, length)
        self.stats.client_reads += 1
        self.stats.client_bytes_read += length
        ops = [
            BackendWrite(self.object_key(index), obj_off, take, "read")
            for index, obj_off, take in self._split(offset, length)
        ]
        return self.image.read(offset, length), ops

    def flush(self) -> List[BackendWrite]:
        """Commit barrier: a no-op, RBD writes are durable when acked."""
        return []

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or offset + length > self.size:
            raise ValueError("I/O beyond end of volume")
