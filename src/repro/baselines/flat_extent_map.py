"""The seed flat-list extent map, preserved as a benchmark baseline.

This is the original ``repro.core.extent_map.ExtentMap`` implementation:
parallel sorted lists with per-update ``list.insert``/``del`` — O(n) per
mutation, quadratic under random-write workloads.  The live map was
replaced by the chunked B+-tree-style structure (see DESIGN.md "Chunked
extent map"); this copy exists so ``benchmarks/perf_smoke.py`` can
measure the speedup *in-repo*, against the very code the rework replaced,
rather than against a number in a commit message.

Do not use this in the data path — it exists to lose benchmarks.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Hashable, Iterator, List, Optional, Tuple

from repro.core.extent_map import Extent


class FlatExtentMap:
    """The seed O(n)-mutation extent map (flat parallel sorted lists)."""

    def __init__(self) -> None:
        # parallel arrays sorted by lba; kept non-overlapping at all times
        self._lbas: List[int] = []
        self._exts: List[Extent] = []

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._exts)

    def __iter__(self) -> Iterator[Extent]:
        return iter(self._exts)

    def lookup(self, lba: int, length: int) -> List[Extent]:
        """Mapped pieces overlapping [lba, lba+length), clipped, in order."""
        if length <= 0:
            return []
        out: List[Extent] = []
        idx = bisect_right(self._lbas, lba) - 1
        if idx < 0:
            idx = 0
        end = lba + length
        while idx < len(self._exts):
            ext = self._exts[idx]
            if ext.lba >= end:
                break
            if ext.end > lba:
                out.append(ext.slice(lba, length))
            idx += 1
        return out

    def mapped_bytes(self) -> int:
        return sum(ext.length for ext in self._exts)

    def bounds(self) -> Tuple[int, int]:
        if not self._exts:
            return (0, 0)
        return (self._exts[0].lba, self._exts[-1].end)

    # -- mutation ----------------------------------------------------------
    def update(
        self, lba: int, length: int, target: Hashable, offset: int = 0
    ) -> List[Extent]:
        """Map [lba, lba+length) to target[offset:]; return displaced pieces."""
        displaced = self._carve(lba, length)
        new = Extent(lba, length, target, offset)
        idx = bisect_right(self._lbas, lba)
        self._insert_coalescing(idx, new)
        return displaced

    def remove(self, lba: int, length: int) -> List[Extent]:
        return self._carve(lba, length)

    def clear(self) -> None:
        self._lbas.clear()
        self._exts.clear()

    # -- internals -----------------------------------------------------
    def _carve(self, lba: int, length: int) -> List[Extent]:
        if length <= 0:
            raise ValueError("length must be positive")
        end = lba + length
        displaced: List[Extent] = []
        idx = bisect_right(self._lbas, lba) - 1
        if idx < 0:
            idx = 0
        while idx < len(self._exts) and self._exts[idx].end <= lba:
            idx += 1
        while idx < len(self._exts) and self._exts[idx].lba < end:
            ext = self._exts[idx]
            displaced.append(ext.slice(lba, length))
            left: Optional[Extent] = None
            right: Optional[Extent] = None
            if ext.lba < lba:
                left = Extent(ext.lba, lba - ext.lba, ext.target, ext.offset)
            if ext.end > end:
                right = Extent(
                    end, ext.end - end, ext.target, ext.offset + (end - ext.lba)
                )
            # replace ext with surviving fragments: the O(n) shuffle under
            # measurement here
            del self._lbas[idx], self._exts[idx]
            for frag in (left, right):
                if frag is not None:
                    self._lbas.insert(idx, frag.lba)
                    self._exts.insert(idx, frag)
                    idx += 1
        return displaced

    def _insert_coalescing(self, idx: int, new: Extent) -> None:
        prev = self._exts[idx - 1] if idx > 0 else None
        if (
            prev is not None
            and prev.end == new.lba
            and prev.target == new.target
            and prev.offset + prev.length == new.offset
        ):
            new = Extent(prev.lba, prev.length + new.length, new.target, prev.offset)
            idx -= 1
            del self._lbas[idx], self._exts[idx]
        nxt = self._exts[idx] if idx < len(self._exts) else None
        if (
            nxt is not None
            and new.end == nxt.lba
            and nxt.target == new.target
            and new.offset + new.length == nxt.offset
        ):
            new = Extent(new.lba, new.length + nxt.length, new.target, new.offset)
            del self._lbas[idx], self._exts[idx]
        self._lbas.insert(idx, new.lba)
        self._exts.insert(idx, new)

    # -- (de)serialisation ------------------------------------------------
    def entries(self) -> List[Tuple[int, int, Any, int]]:
        return [(e.lba, e.length, e.target, e.offset) for e in self._exts]

    @classmethod
    def from_entries(cls, entries) -> "FlatExtentMap":
        m = cls()
        for lba, length, target, offset in entries:
            m._lbas.append(lba)
            m._exts.append(Extent(lba, length, target, offset))
        for a, b in zip(m._exts, m._exts[1:]):
            if b.lba < a.end:
                raise ValueError("entries overlap or are unsorted")
        return m
