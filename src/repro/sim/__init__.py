"""Discrete-event simulation engine underlying all timed LSVD experiments.

The engine is a small, dependency-free cousin of SimPy: processes are
Python generators that ``yield`` events (timeouts, resource requests,
completions of other processes) and are resumed when those events fire.

The paper's prototype is a kernel module driving a real NVMe drive; a pure
Python block device cannot sustain the 50K+ IOPS the evaluation measures,
so every performance experiment in this reproduction instead runs on this
simulator with calibrated device service-time models (see DESIGN.md).
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import Resource, Store, TokenBucket

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
    "TokenBucket",
]
