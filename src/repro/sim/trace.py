"""Lightweight event tracing for the simulator.

Useful when debugging a runtime: attach a :class:`Tracer` to record
(time, tag, detail) tuples from instrumented components, then dump or
summarise them.  Kept separate from the engine so tracing costs nothing
when unused.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.sim.engine import Simulator


@dataclass
class Tracer:
    """Append-only trace of (time, tag, detail)."""

    sim: Simulator
    max_events: int = 1_000_000
    events: List[Tuple[float, str, Any]] = field(default_factory=list)
    dropped: int = 0

    def record(self, tag: str, detail: Any = None) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append((self.sim.now, tag, detail))

    def counts(self) -> Counter:
        return Counter(tag for _t, tag, _d in self.events)

    def between(self, start: float, end: float) -> List[Tuple[float, str, Any]]:
        return [e for e in self.events if start <= e[0] < end]

    def rate(self, tag: str, window: Optional[Tuple[float, float]] = None) -> float:
        """Events per second carrying ``tag`` over a window (or the run)."""
        if window is None:
            if not self.events:
                return 0.0
            window = (self.events[0][0], max(self.sim.now, self.events[0][0] + 1e-12))
        start, end = window
        if end <= start:
            return 0.0
        n = sum(1 for t, tg, _d in self.events if tg == tag and start <= t < end)
        return n / (end - start)

    def timeline(self, tag: str, bucket: float) -> List[Tuple[float, int]]:
        """Histogram of ``tag`` occurrences into ``bucket``-second bins."""
        bins: dict = {}
        for t, tg, _d in self.events:
            if tg == tag:
                key = int(t / bucket)
                bins[key] = bins.get(key, 0) + 1
        return [(k * bucket, v) for k, v in sorted(bins.items())]
