"""Core discrete-event simulation engine.

Time is a float in **seconds**.  The :class:`Simulator` owns an event heap;
:class:`Process` objects are generator-driven coroutines that yield
:class:`Event` instances and resume when they trigger.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a", 2.0))
>>> _ = sim.process(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double trigger, bad yield)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event moves through three states: *pending* -> *triggered* ->
    *processed*.  ``succeed``/``fail`` trigger it; the simulator then runs
    its callbacks at the current simulation time.

    ``background`` marks daemon activity (periodic pollers): an
    unbounded :meth:`Simulator.run` stops once only background events
    remain, the way a program exits when only daemon threads are left.
    """

    __slots__ = (
        "sim", "callbacks", "_value", "_ok", "_triggered", "_processed",
        "background",
    )

    def __init__(self, sim: "Simulator", background: bool = False):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        self.background = background

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._queue_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._queue_event(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event is processed."""
        if self.callbacks is None:
            # Already processed: run immediately (still inside sim step).
            fn(self)
        else:
            self.callbacks.append(fn)

    def _process(self) -> None:
        self._processed = True
        callbacks, self.callbacks = self.callbacks, None
        for fn in callbacks or ():
            fn(self)


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: Any = None,
        background: bool = False,
    ):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(sim, background=background)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule_at(sim.now + delay, self)


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The generator must yield :class:`Event` instances.  When a yielded
    event succeeds the generator is resumed with its value; when it fails
    the exception is thrown into the generator.
    """

    __slots__ = ("gen", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        boot = Event(sim)
        self._waiting_on: Optional[Event] = boot
        boot.add_callback(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        poke = Event(self.sim)
        poke.add_callback(lambda ev: self._throw(Interrupt(cause)))
        poke.succeed()

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if event is not self._waiting_on:
            # Stale wake-up: the process was interrupted while waiting on
            # this event and has already moved on.
            return
        self._waiting_on = None
        if event._ok:
            self._step(lambda: self.gen.send(event._value))
        else:
            self._step(lambda: self.gen.throw(event._value))

    def _throw(self, exc: BaseException) -> None:
        if not self.is_alive:
            return
        self._waiting_on = None
        self._step(lambda: self.gen.throw(exc))

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            self.fail(exc)
            return
        except BaseException as exc:
            if self.sim.strict:
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        self._waiting_on = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value = list of values."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Fires when the first child event fires; value = (event, value)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if event._ok:
            self.succeed((event, event._value))
        else:
            self.fail(event._value)


class Simulator:
    """Event loop with a monotonically advancing virtual clock."""

    def __init__(self, strict: bool = False):
        #: current simulation time in seconds
        self.now: float = 0.0
        #: re-raise process exceptions instead of failing the process event
        self.strict = strict
        self._heap: list = []  # (time, seq, event)
        self._seq = 0
        self._queue: list = []  # events triggered at `now`, FIFO
        self._foreground = 0  # scheduled non-background events

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(
        self, delay: float, value: Any = None, background: bool = False
    ) -> Timeout:
        return Timeout(self, delay, value, background=background)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule_at(self, when: float, event: Event) -> None:
        self._seq += 1  # lint: disable=LSVD002 -- event-heap tiebreaker, not a log seq
        heapq.heappush(self._heap, (when, self._seq, event))
        if not event.background:
            self._foreground += 1

    def _queue_event(self, event: Event) -> None:
        self._queue.append(event)
        if not event.background:
            self._foreground += 1

    # -- execution ---------------------------------------------------------
    def step(self) -> bool:
        """Process one event; return False when nothing remains."""
        if self._queue:
            event = self._queue.pop(0)
            if not event.background:
                self._foreground -= 1
            event._process()
            return True
        if not self._heap:
            return False
        when, _seq, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        if not event.background:
            self._foreground -= 1
        event._process()
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue drains or ``until`` seconds pass.

        With no ``until``, the run ends once only *background* (daemon)
        events remain — periodic pollers never hold the simulation open.
        """
        if until is None:
            while self._foreground > 0 and self.step():
                pass
            return
        while True:
            if self._queue:
                event = self._queue.pop(0)
                if not event.background:
                    self._foreground -= 1
                event._process()
                continue
            if not self._heap or self._heap[0][0] > until:
                break
            self.step()
        self.now = max(self.now, until)

    def run_until_event(self, event: Event, limit: float = float("inf")) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises the event's exception if it failed, or
        :class:`SimulationError` if the queue drains first.
        """
        while not event.processed:
            if self.now > limit:
                raise SimulationError(f"event not triggered by t={limit}")
            if not self.step():
                raise SimulationError("simulation ended before event fired")
        if not event._ok:
            raise event._value
        return event._value

    @property
    def queue_size(self) -> int:
        return len(self._heap) + len(self._queue)
