"""Shared-resource primitives for the simulation engine.

These model contention points in the storage stack: device queues and
channels (:class:`Resource`), producer/consumer hand-off between the write
path and the destage/GC daemons (:class:`Store`), and link or device
bandwidth (:class:`TokenBucket`).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Event, Simulator


class Resource:
    """A counted resource (e.g. device channels) with a FIFO wait queue.

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            ... hold the resource ...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()
        # busy-time accounting (for utilisation reports)
        self._busy_since: Optional[float] = None
        self.busy_time = 0.0

    def request(self) -> Event:
        """Return an event that fires when a unit is granted."""
        ev = self.sim.event()
        if self.in_use < self.capacity:
            self._grant(ev)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return one unit; grants the oldest waiter if any."""
        if self.in_use <= 0:
            raise RuntimeError("release() without matching request()")
        self.in_use -= 1
        if self._waiters:
            self._grant(self._waiters.popleft())
        elif self.in_use == 0 and self._busy_since is not None:
            self.busy_time += self.sim.now - self._busy_since
            self._busy_since = None

    def _grant(self, ev: Event) -> None:
        if self.in_use == 0 and self._busy_since is None:
            self._busy_since = self.sim.now
        self.in_use += 1
        ev.succeed(self)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time at least one unit was held."""
        busy = self.busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        span = elapsed if elapsed is not None else self.sim.now
        return busy / span if span > 0 else 0.0

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class Store:
    """Unbounded FIFO queue of items with blocking ``get``.

    ``put`` never blocks (capacity limits in the storage stack are modelled
    explicitly by the components, not by this primitive).
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = self.sim.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def drain(self) -> list:
        """Take every queued item without blocking.

        The group-commit pattern: a consumer that woke up for one item
        absorbs everything else already queued, so one expensive action
        (a device FLUSH) settles the whole batch.  Returns the items in
        FIFO order; empty list when nothing is queued.
        """
        items = list(self._items)
        self._items.clear()
        return items

    def __len__(self) -> int:
        return len(self._items)


class TokenBucket:
    """A rate limiter modelling bandwidth (bytes/second).

    ``consume(nbytes)`` returns an event that fires when the transfer slot
    ends; back-to-back consumers serialise, so sustained throughput equals
    ``rate``.  This models a full-duplex link direction or a device's
    internal transfer engine.
    """

    def __init__(self, sim: Simulator, rate: float):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.rate = rate
        self._free_at = 0.0
        self.total_bytes = 0

    def consume(self, nbytes: int) -> Event:
        start = max(self.sim.now, self._free_at)
        duration = nbytes / self.rate
        self._free_at = start + duration
        self.total_bytes += nbytes
        return self.sim.timeout(self._free_at - self.sim.now)

    def busy_until(self) -> float:
        return self._free_at
