"""Exception hierarchy for the LSVD core."""


class LSVDError(Exception):
    """Base class for all LSVD errors."""


class CacheFullError(LSVDError):
    """The write-back cache log has no room; destage must run first."""


class CorruptRecordError(LSVDError):
    """A log record or object failed CRC / magic / sequence validation."""


class RecoveryError(LSVDError):
    """Recovery could not reconstruct a consistent volume state."""


class SnapshotInUseError(LSVDError):
    """Operation would destroy data still referenced by a snapshot."""


class VolumeExistsError(LSVDError):
    """Attempt to create a volume whose object stream already exists."""


class VolumeNotFoundError(LSVDError):
    """The named volume has no superblock in the object store."""
