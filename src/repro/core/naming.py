"""Object-name formatting and parsing for LSVD backend streams.

One volume's backend state is a set of S3 keys with a tiny grammar
(§3.1): the ordered stream of immutable objects ``{volume}.{seq:08d}``
— where the zero-padded decimal suffix encodes log order so a prefix
LIST returns the stream sorted — plus a small mutable superblock
``{volume}.super``.  Every layer that touches keys (the block store,
recovery, the replicator, ``lsvdtool``, the shard router) must agree on
this grammar, so it lives here and nowhere else.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

#: width of the zero-padded decimal sequence suffix
SEQ_DIGITS = 8

#: suffix of the (mutable) per-volume superblock key
SUPER_SUFFIX = "super"


def object_name(volume: str, seq: int) -> str:
    """Stream object name: order is encoded in the name (§3.1)."""
    return f"{volume}.{seq:0{SEQ_DIGITS}d}"


def super_name(volume: str) -> str:
    """The volume's superblock key."""
    return f"{volume}.{SUPER_SUFFIX}"


def stream_prefix(volume: str) -> str:
    """LIST prefix covering the volume's stream objects and superblock."""
    return f"{volume}."


def parse_object_name(name: str) -> Tuple[str, int]:
    """Inverse of :func:`object_name`; raises ValueError for non-stream keys."""
    volume, _, seq = name.rpartition(".")
    if not volume or not seq.isdigit():
        raise ValueError(f"not a stream object name: {name!r}")
    return volume, int(seq)


def stream_seq(name: str, volume: str) -> Optional[int]:
    """Sequence number of ``name`` if it is a stream object of ``volume``.

    Returns None for the superblock, other volumes' keys, and anything
    else that does not match the grammar.
    """
    prefix = stream_prefix(volume)
    if not name.startswith(prefix):
        return None
    suffix = name[len(prefix):]
    if not suffix.isdigit():
        return None
    return int(suffix)


def stream_seqs(names: Iterable[str], volume: str) -> List[int]:
    """Sorted sequence numbers of ``volume``'s stream objects in ``names``.

    The one LIST-decoding primitive recovery needs: with a sharded store
    the listing is already the union of every shard's keys, so the
    longest consecutive run of this result *is* the globally consistent
    prefix (§3.3).
    """
    seqs = []
    for name in names:
        seq = stream_seq(name, volume)
        if seq is not None:
            seqs.append(seq)
    return sorted(seqs)


def is_stream_object(name: str) -> bool:
    """True when ``name`` parses as some volume's stream object."""
    try:
        parse_object_name(name)
    except ValueError:
        return False
    return True
