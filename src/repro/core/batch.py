"""Write batching for the log-structured block store (§3.1-3.2).

Client writes accumulate into a :class:`WriteBatch`; once the configured
batch size is reached the batch is *sealed* into one immutable backend
object.  Within a batch, overlapping writes may be coalesced — the object
is written atomically, so intra-batch reordering cannot violate prefix
consistency — but coalescing never crosses a batch boundary (footnote 8 of
the paper: cross-batch coalescing would break the ordering guarantee).

The *merge ratio* (fraction of written bytes eliminated by coalescing) is
tracked per batch and aggregated; Table 5 reports it per trace.

Each sealed batch also records *why* it sealed (``reason``): ``"size"``
when the accumulation threshold was reached, or a forced reason
(``"drain"``, ``"backpressure"``) when a barrier or cache pressure cut
the batch short.  Forced seals emit small, padding-heavy objects — the
pure-model counterpart of the per-barrier FLUSHes that the timed
pipeline's group commit coalesces away — so the split is surfaced as
``store.size_seals`` / ``store.forced_seals``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.extent_map import ExtentMap
from repro.core.log import KIND_DATA, KIND_GC, ObjectExtent, ObjectHeader, encode_object
from repro.core.sgio import Buffer, concat, copy_out, gather
from repro.obs import NULL_SPAN


@dataclass
class SealedBatch:
    """An immutable batch ready to be PUT as one backend object."""

    seq: int
    payload: bytes  # full object bytes (header + data)
    extents: List[ObjectExtent]
    data_len: int
    last_record_seq: int
    bytes_in: int  # client bytes that entered the batch
    bytes_out: int  # bytes surviving coalescing
    kind: int = KIND_DATA
    reason: str = "size"  # what sealed it: "size" or a forced cut
    temp: int = 0  # temperature class (hot/warm/cold stream separation)

    @property
    def merged_bytes(self) -> int:
        return self.bytes_in - self.bytes_out

    @property
    def forced(self) -> bool:
        """True when something other than the size threshold sealed it."""
        return self.reason != "size"


class WriteBatch:
    """Accumulates writes, coalescing overlaps, until sealed."""

    def __init__(self, batch_size: int, temp: int = 0):
        self.batch_size = batch_size
        self.temp = temp  # the class stream this batch accumulates
        self._map = ExtentMap()  # vLBA -> offset into self._buffer
        self._buffer = bytearray()
        self.bytes_in = 0
        self.last_record_seq = 0
        self.first_record_seq = 0  # lowest record seq added since last seal

    def add(self, lba: int, data: Buffer, record_seq: int = 0) -> None:
        """Append one client write (newer data shadows older overlaps)."""
        if not data:
            raise ValueError("empty write")
        offset = len(self._buffer)
        self._buffer.extend(data)
        self._map.update(lba, len(data), "buf", offset)
        self.bytes_in += len(data)  # lint: disable=LSVD007 -- batch payload accounting, sealed into the object header, not a stat
        if record_seq:
            if not self.first_record_seq:
                self.first_record_seq = record_seq
            self.last_record_seq = record_seq

    def discard(self, lba: int, length: int) -> None:
        """Drop any buffered version of a range shadowed by a newer write.

        With one open batch per temperature class, a rewrite may land in
        a *different* batch than the version it replaces; the stale copy
        must be unmapped here so seal order across class batches cannot
        resurrect old data.  The buffer bytes stay (they still count
        toward the size threshold, like any coalesced overlap).
        """
        self._map.remove(lba, length)

    @property
    def live_bytes(self) -> int:
        """Bytes that would survive coalescing right now."""
        return self._map.mapped_bytes()

    @property
    def buffered_bytes(self) -> int:
        """Raw bytes accumulated (pre-coalescing), drives the seal check."""
        return len(self._buffer)

    @property
    def is_empty(self) -> bool:
        return not self._buffer

    def should_seal(self) -> bool:
        return self.buffered_bytes >= self.batch_size

    def seal(
        self, seq: int, uuid: bytes, reason: str = "size", span=NULL_SPAN
    ) -> SealedBatch:
        """Freeze into an object payload; the batch becomes reusable-empty.

        The surviving extents are gathered out of the accumulation buffer
        into one pre-sized assembly (see :mod:`repro.core.sgio`) — the
        only copy the seal makes besides the final payload encode.
        ``reason`` records what cut the batch (size threshold vs a forced
        drain/backpressure seal) for the accounting split in StoreStats,
        and is carried on the ``batch_seal`` span too.
        """
        stage = span.begin("batch_seal", reason=reason, seq=seq)
        extents: List[ObjectExtent] = []
        ranges: List[Tuple[int, int]] = []
        for ext in self._map:
            extents.append(ObjectExtent(lba=ext.lba, length=ext.length, src_seq=0))
            ranges.append((ext.offset, ext.length))
        data = gather(self._buffer, ranges)
        header = ObjectHeader(
            kind=KIND_DATA,
            uuid=uuid,
            seq=seq,
            last_record_seq=self.last_record_seq,
            extents=extents,
            data_len=len(data),
            temp=self.temp,
        )
        sealed = SealedBatch(
            seq=seq,
            payload=encode_object(header, data),
            extents=extents,
            data_len=len(data),
            last_record_seq=self.last_record_seq,
            bytes_in=self.bytes_in,
            bytes_out=len(data),
            reason=reason,
            temp=self.temp,
        )
        self._map.clear()
        self._buffer = bytearray()
        self.bytes_in = 0
        self.last_record_seq = 0
        self.first_record_seq = 0
        stage.end(bytes=sealed.data_len)
        return sealed

    def read(self, lba: int, length: int) -> List[Tuple[int, int, bytes]]:
        """Serve reads of not-yet-sealed data: (lba, length, data) pieces.

        Returns immutable copies (via the blessed ``copy_out``): the
        accumulation buffer is recycled on seal, so views would dangle.
        """
        out = []
        for ext in self._map.lookup(lba, length):
            out.append((ext.lba, ext.length, copy_out(self._buffer, ext.offset, ext.length)))
        return out


def seal_gc_batch(
    seq: int,
    uuid: bytes,
    pieces: List[Tuple[int, int, int, Buffer]],
    last_record_seq: int,
    temp: int = 0,
) -> SealedBatch:
    """Build a KIND_GC object from (lba, length, src_seq, data) live pieces.

    GC extents carry their source object's sequence number so that crash
    replay applies them only where the map still points at the victim
    (newer client writes always win; see block_store recovery).  Piece
    data may be memoryviews over fetched blobs; they are concatenated
    into one assembly here.
    """
    extents = [ObjectExtent(lba, length, src_seq) for lba, length, src_seq, _d in pieces]
    data = concat(d for _l, _n, _s, d in pieces)
    header = ObjectHeader(
        kind=KIND_GC,
        uuid=uuid,
        seq=seq,
        last_record_seq=last_record_seq,
        extents=extents,
        data_len=len(data),
        temp=temp,
    )
    return SealedBatch(
        seq=seq,
        payload=encode_object(header, data),
        extents=extents,
        data_len=len(data),
        last_record_seq=last_record_seq,
        bytes_in=len(data),
        bytes_out=len(data),
        kind=KIND_GC,
        temp=temp,
    )
