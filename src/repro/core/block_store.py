"""Log-structured block store over an object store (Figures 3-4, §3.1-3.3).

Client writes are batched and stored in an ordered stream of immutable
objects named ``{volume}.{seq:08d}``; the name encodes log order.  The
stream carries three object kinds:

* ``KIND_DATA`` — a sealed write batch,
* ``KIND_GC`` — live data relocated by the garbage collector (each extent
  records the victim object it came from, so crash replay applies it only
  where the map still points at that victim — newer writes always win),
* ``KIND_CHECKPOINT`` — a serialised object map + GC/snapshot metadata,
  bounding replay time.

A small mutable ``{volume}.super`` object holds volume identity, the clone
base chain, the snapshot list, and a hint to the newest checkpoint; losing
an update to it is harmless because recovery can rediscover everything by
listing and reading stream headers.

Recovery (§3.3) finds the newest checkpoint at or below the mount point,
restores the map, replays the consecutive run of objects after it, and
deletes any stranded objects beyond the first hole — in-flight PUTs that
completed out of order before the crash.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core import checkpoint as ckpt
from repro.core.batch import SealedBatch, WriteBatch
from repro.core.config import LSVDConfig
from repro.core.errors import (
    CorruptRecordError,
    RecoveryError,
    SnapshotInUseError,
    VolumeExistsError,
    VolumeNotFoundError,
)
from repro.core.log import (
    KIND_CHECKPOINT,
    KIND_DATA,
    KIND_GC,
    ObjectHeader,
    decode_object,
    decode_object_header,
    encode_object,
    object_name,
)
from repro.core.naming import stream_prefix, stream_seqs, super_name
from repro.core.object_map import ObjectMap
from repro.core.placement import NUM_TEMPS, make_policy
from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    NULL_SPAN,
    Registry,
    bind_metrics,
    gauge_field,
    metric_field,
)
from repro.objstore.s3 import NoSuchKeyError, ObjectStore


class StoreStats:
    """Aggregate write-amplification accounting (Table 5, §4.2.2).

    Registry-backed (``store.*`` group); the derived ratios stay plain
    properties so existing call sites read them unchanged.
    """

    client_bytes = metric_field("store.client_bytes")  # bytes entering batches
    merged_bytes = metric_field("store.merged_bytes")  # intra-batch coalescing
    data_bytes = metric_field("store.data_bytes")  # payload in DATA objects
    gc_bytes = metric_field("store.gc_bytes")  # payload in GC objects
    ckpt_bytes = metric_field("store.ckpt_bytes")
    objects_put = metric_field("store.objects_put")
    objects_deleted = metric_field("store.objects_deleted")
    size_seals = metric_field("store.size_seals")  # threshold-driven
    forced_seals = metric_field("store.forced_seals")  # barrier/backpressure cuts
    # per-temperature-class destage / relocation payload (hot/warm/cold
    # stream separation; classes 0/1/2 as defined by core.placement)
    class_hot_bytes = metric_field("store.class_hot.bytes")
    class_warm_bytes = metric_field("store.class_warm.bytes")
    class_cold_bytes = metric_field("store.class_cold.bytes")
    class_hot_gc_bytes = metric_field("store.class_hot.gc_bytes")
    class_warm_gc_bytes = metric_field("store.class_warm.gc_bytes")
    class_cold_gc_bytes = metric_field("store.class_cold.gc_bytes")
    # per-class occupancy, refreshed by BlockStore.occupancy_by_class
    class_hot_live = gauge_field("store.class_hot.live_bytes")
    class_warm_live = gauge_field("store.class_warm.live_bytes")
    class_cold_live = gauge_field("store.class_cold.live_bytes")
    class_hot_data = gauge_field("store.class_hot.data_bytes")
    class_warm_data = gauge_field("store.class_warm.data_bytes")
    class_cold_data = gauge_field("store.class_cold.data_bytes")

    _CLASS_DATA_ATTRS = ("class_hot_bytes", "class_warm_bytes", "class_cold_bytes")
    _CLASS_GC_ATTRS = ("class_hot_gc_bytes", "class_warm_gc_bytes", "class_cold_gc_bytes")
    _CLASS_LIVE_ATTRS = ("class_hot_live", "class_warm_live", "class_cold_live")
    _CLASS_OCC_ATTRS = ("class_hot_data", "class_warm_data", "class_cold_data")

    def __init__(self, obs: Optional[Registry] = None):
        self.obs = obs if obs is not None else Registry()
        bind_metrics(self)

    def add_class_data(self, temp: int, n: int) -> None:
        attr = self._CLASS_DATA_ATTRS[temp]
        setattr(self, attr, getattr(self, attr) + n)

    def add_class_gc(self, temp: int, n: int) -> None:
        attr = self._CLASS_GC_ATTRS[temp]
        setattr(self, attr, getattr(self, attr) + n)

    def class_data_bytes(self, temp: int) -> int:
        return int(getattr(self, self._CLASS_DATA_ATTRS[temp]))

    def class_gc_bytes(self, temp: int) -> int:
        return int(getattr(self, self._CLASS_GC_ATTRS[temp]))

    def set_class_occupancy(self, temp: int, live: int, total: int) -> None:
        setattr(self, self._CLASS_LIVE_ATTRS[temp], live)
        setattr(self, self._CLASS_OCC_ATTRS[temp], total)

    @property
    def backend_bytes(self) -> int:
        return self.data_bytes + self.gc_bytes + self.ckpt_bytes

    @property
    def write_amplification(self) -> float:
        if self.client_bytes == 0:
            return 0.0
        return self.backend_bytes / self.client_bytes

    @property
    def merge_ratio(self) -> float:
        if self.client_bytes == 0:
            return 0.0
        return self.merged_bytes / self.client_bytes


@dataclass
class RecoveredState:
    """What recovery learned (feeds cache rewind/replay, §3.3)."""

    last_seq: int  # newest object in the consistent prefix
    last_record_seq: int  # cache-log high-water mark in the backend
    stranded_deleted: List[str] = field(default_factory=list)


class BlockStore:
    """The log-structured block store for one volume (or clone)."""

    def __init__(
        self,
        store: ObjectStore,
        name: str,
        uuid: bytes,
        size: int,
        config: Optional[LSVDConfig] = None,
        base_chain: Optional[List[Tuple[str, int]]] = None,
        obs: Optional[Registry] = None,
    ):
        self.store = store
        self.name = name
        self.uuid = uuid
        self.size = size
        self.config = config or LSVDConfig()
        #: clone lineage: [(ancestor volume name, its last seq)], oldest first
        self.base_chain: List[Tuple[str, int]] = list(base_chain or [])
        self.omap = ObjectMap()
        #: the placement classifier: every destage write is assigned a
        #: temperature class; one open batch per class (created lazily)
        self.placement = make_policy(self.config)
        self.batches: Dict[int, WriteBatch] = {}
        #: sealed data objects whose commit() has not run yet: their
        #: sequence numbers are allocated, so a checkpoint taken now
        #: would postdate them and recovery would skip their writes —
        #: :attr:`checkpoint_due` stays False until this drops to zero
        self.sealed_uncommitted = 0
        self.next_seq = 1
        self.last_ckpt_seq = 0
        self.last_record_seq_destaged = 0
        self.snapshots: Dict[str, int] = {}
        #: deferred GC deletes: victim seq -> newest seq at GC time (§3.6)
        self.deferred_deletes: Dict[int, int] = {}
        self._ckpt_history: List[int] = []
        self._objects_since_ckpt = 0
        self._header_cache: Dict[int, ObjectHeader] = {}
        self.obs = obs if obs is not None else Registry()
        self.stats = StoreStats(self.obs)
        self._object_bytes = self.obs.histogram(
            "store.object_bytes", buckets=DEFAULT_SIZE_BUCKETS
        )
        #: host-wide shared-cache hookup (§6.3); see attach_shared
        self._shared_reader = None

    # ------------------------------------------------------------------
    # naming / clone chain
    # ------------------------------------------------------------------
    def name_for_seq(self, seq: int) -> str:
        """Resolve a sequence number across the clone base chain (§3.6)."""
        for base_name, base_last in self.base_chain:
            if seq <= base_last:
                return object_name(base_name, seq)
        return object_name(self.name, seq)

    @property
    def first_own_seq(self) -> int:
        """Lowest sequence number belonging to this volume (not a base)."""
        if self.base_chain:
            return self.base_chain[-1][1] + 1
        return 1

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def _batch_for(self, temp: int) -> WriteBatch:
        batch = self.batches.get(temp)
        if batch is None:
            batch = WriteBatch(self.config.batch_size, temp=temp)
            self.batches[temp] = batch
        return batch

    def add_write(
        self, lba: int, data: bytes, record_seq: int = 0, span=NULL_SPAN
    ) -> List[SealedBatch]:
        """Buffer one write; returns the sealed batches when size is reached.

        The placement policy assigns the write a temperature class, which
        picks the open batch it accumulates into; any older version of
        the range still buffered in *another* class batch is discarded so
        seal order across classes cannot resurrect stale data.

        Sealing is *lockstep*: when any class batch reaches the size
        threshold, every non-empty class batch seals together as one
        group.  Each group therefore covers a contiguous run of record
        sequence numbers, which keeps the backend an exact record prefix
        — the property the cache-lost crash guarantee (Table 4) rests
        on.  Per-class objects stay class-pure; the group merely aligns
        their cut points.  Callers must commit every returned batch, in
        order.
        """
        if lba < 0 or lba + len(data) > self.size:
            raise ValueError("write beyond volume bounds")
        temp = self.placement.on_write(lba, len(data))
        for other_temp, other in self.batches.items():
            if other_temp != temp and not other.is_empty:
                other.discard(lba, len(data))
        batch = self._batch_for(temp)
        batch.add(lba, data, record_seq)
        if batch.should_seal():
            return self._seal_group(batch, span=span)
        return []

    def _record_seq_cap(self, batch: WriteBatch) -> Optional[int]:
        """Highest record seq provably destaged once ``batch`` seals.

        With one open batch per class, records interleave across batches:
        a sealing batch may carry record N while an *older* record still
        sits in another open batch.  The object's ``last_record_seq``
        high-water mark must therefore stop just short of the oldest
        record still buffered elsewhere, or cache release / replay could
        skip undestaged acked writes.
        """
        cap = None
        for other in self.batches.values():
            if other is batch or other.is_empty or not other.first_record_seq:
                continue
            limit = other.first_record_seq - 1
            cap = limit if cap is None else min(cap, limit)
        return cap

    def _seal_batch(
        self, batch: WriteBatch, reason: str = "size", span=NULL_SPAN
    ) -> SealedBatch:
        cap = self._record_seq_cap(batch)
        if cap is not None and cap < batch.last_record_seq:
            batch.last_record_seq = cap
        self.sealed_uncommitted += 1
        return batch.seal(self._take_seq(), self.uuid, reason=reason, span=span)

    def _seal_group(self, trigger: WriteBatch, span=NULL_SPAN) -> List[SealedBatch]:
        """Seal every non-empty batch as one group, oldest records first.

        The triggering batch records reason ``"size"``; the batches that
        merely ride along in the group seal as ``"group"`` (they count
        toward ``store.forced_seals`` — the object-count overhead class
        separation pays for the crash-ordering guarantee).
        """
        out: List[SealedBatch] = []
        while True:
            open_batches = [b for b in self.batches.values() if not b.is_empty]
            if not open_batches:
                return out
            open_batches.sort(
                key=lambda b: (
                    b.first_record_seq if b.first_record_seq else float("inf"),
                    b.temp,
                )
            )
            batch = open_batches[0]
            reason = "size" if batch is trigger else "group"
            out.append(self._seal_batch(batch, reason=reason, span=span))

    def seal(self, reason: str = "size", span=NULL_SPAN) -> Optional[SealedBatch]:
        """Seal the fullest open batch (even partial); None when all empty.

        Callers that must flush *every* class stream (drain, close,
        backpressure sweeps) use :meth:`seal_all` instead.
        """
        open_batches = [b for b in self.batches.values() if not b.is_empty]
        if not open_batches:
            return None
        fullest = max(open_batches, key=lambda b: (b.buffered_bytes, -b.temp))
        return self._seal_batch(fullest, reason=reason, span=span)

    def seal_all(self, reason: str = "size", span=NULL_SPAN) -> Iterator[SealedBatch]:
        """Seal every non-empty class batch, oldest buffered records first.

        Sealing in first-record order lets each object carry the highest
        safe ``last_record_seq`` (see :meth:`_record_seq_cap`): the last
        batch sealed covers the full watermark.

        A *lazy* generator on purpose: each batch is sealed (allocating
        its sequence number) only when the caller asks for it, after
        committing the previous one.  Sealing everything up front would
        let a checkpoint triggered by an intermediate commit take a
        *later* sequence number than still-uncommitted batches — recovery
        would then start replay past them and lose their writes.
        """
        while True:
            open_batches = [b for b in self.batches.values() if not b.is_empty]
            if not open_batches:
                return
            open_batches.sort(
                key=lambda b: (
                    b.first_record_seq if b.first_record_seq else float("inf"),
                    b.temp,
                )
            )
            yield self._seal_batch(open_batches[0], reason=reason, span=span)

    def commit(self, sealed: SealedBatch, span=NULL_SPAN):
        """PUT the sealed object and update the map/accounting.

        Returns whatever ``store.put`` returned (a handle for unsettled
        stores, None for immediate ones); the caller decides when the
        cache may release the covered records.
        """
        name = object_name(self.name, sealed.seq)
        stage = span.begin(
            "backend_put",
            seq=sealed.seq,
            object_kind="gc" if sealed.kind == KIND_GC else "data",
            bytes=len(sealed.payload),
        )
        if getattr(self.store, "accepts_span", False):
            result = self.store.put(name, sealed.payload, span=stage)
        else:
            result = self.store.put(name, sealed.payload)
        stage.end()
        self.omap.add_object(
            sealed.seq, sealed.kind, sealed.data_len, sealed.extents, temp=sealed.temp
        )
        offset = 0
        for ext in sealed.extents:
            if sealed.kind == KIND_GC:
                self.omap.apply_gc_extent(sealed.seq, ext.lba, ext.length, offset, ext.src_seq)
            else:
                self.omap.apply_extent(sealed.seq, ext.lba, ext.length, offset)
            offset += ext.length
        self.stats.objects_put += 1
        if sealed.kind == KIND_DATA and self.sealed_uncommitted > 0:
            self.sealed_uncommitted -= 1
        if sealed.kind == KIND_DATA:
            if sealed.forced:
                self.stats.forced_seals += 1
            else:
                self.stats.size_seals += 1
            self.stats.client_bytes += sealed.bytes_in
            self.stats.merged_bytes += sealed.merged_bytes
            self.stats.data_bytes += sealed.data_len
            self.stats.add_class_data(sealed.temp, sealed.data_len)
        else:
            self.stats.gc_bytes += sealed.data_len
            self.stats.add_class_gc(sealed.temp, sealed.data_len)
        if sealed.last_record_seq:
            self.last_record_seq_destaged = max(
                self.last_record_seq_destaged, sealed.last_record_seq
            )
        if sealed.reason != "group":
            # riders of a lockstep group are fragments of one logical
            # group commit: counting each would scale checkpoint cadence
            # with the number of open classes instead of with data volume
            self._objects_since_ckpt += 1
        self._object_bytes.observe(len(sealed.payload))
        self.obs.trace.emit(
            "backend_put",
            seq=sealed.seq,
            kind="gc" if sealed.kind == KIND_GC else "data",
            bytes=len(sealed.payload),
        )
        return result

    @property
    def checkpoint_due(self) -> bool:
        """Enough stream objects since the last checkpoint.

        Checkpoints are *not* written from :meth:`commit`: the volume
        issues them only once all prior PUTs have settled, so a visible
        checkpoint always implies its whole prefix is visible — the
        invariant recovery's checkpoint selection relies on.  Sealed
        batches awaiting commit defer it too: a checkpoint must never
        take a sequence number past an uncommitted object.
        """
        return (
            self._objects_since_ckpt >= self.config.checkpoint_interval
            and self.sealed_uncommitted == 0
        )

    def _take_seq(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq

    @property
    def newest_seq(self) -> int:
        """Sequence of the newest allocated object.

        The accessor other layers (GC, snapshots) must use instead of
        computing ``next_seq - 1`` themselves: sequence arithmetic stays
        inside the log layer (LSVD002).
        """
        return self.next_seq - 1

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def lookup(self, lba: int, length: int):
        return self.omap.lookup(lba, length)

    def lookup_with_gaps(self, lba: int, length: int):
        return self.omap.lookup_with_gaps(lba, length)

    def fetch(self, seq: int, offset: int, length: int) -> bytes:
        """Ranged GET of object data (offset is into the *data* area).

        With a shared cache attached (§6.3) the attachment is consulted
        first; misses fall through to :meth:`fetch_direct` and populate
        the cache for every other attached volume.
        """
        if self._shared_reader is not None:
            return self._shared_reader.fetch(self, seq, offset, length)
        return self.fetch_direct(seq, offset, length)

    def fetch_direct(self, seq: int, offset: int, length: int) -> bytes:
        """The uncached ranged GET (shared-cache attachments call this)."""
        header = self.header_of(seq)
        name = self.name_for_seq(seq)
        return self.store.get_range(name, header.header_size + offset, length)

    def fetch_with_prefetch(
        self, seq: int, offset: int, length: int, request_lba: Optional[int] = None
    ) -> List[Tuple[int, memoryview]]:
        """Fetch a mapped extent plus temporally adjacent data (§3.2).

        Reads a window of up to ``config.prefetch_bytes`` around the
        requested data-range of the object and translates every byte that
        falls inside the window back to its vLBA using the object header.
        Because objects hold data in write order, this prefetches by
        *temporal* locality.  Returns (vLBA, data) pieces, the requested
        range guaranteed covered.  The pieces are zero-copy memoryviews
        over the single fetched blob; callers assemble or copy as needed.
        """
        header = self.header_of(seq)
        window = max(self.config.prefetch_bytes, length)
        start = max(0, offset - (window - length) // 2)
        end = min(header.data_len, start + window)
        blob = memoryview(self.fetch(seq, start, end - start))
        pieces: List[Tuple[int, memoryview]] = []
        data_off = 0
        for ext in header.extents:
            ext_start, ext_end = data_off, data_off + ext.length
            lo, hi = max(ext_start, start), min(ext_end, end)
            if lo < hi:
                vlba = ext.lba + (lo - ext_start)
                # only return ranges the map still assigns to this object
                # at these offsets: prefetched neighbours may have been
                # overwritten by newer objects and must not be surfaced.
                for live in self.omap.lookup(vlba, hi - lo):
                    if live.target != seq:
                        continue
                    if live.offset != lo + (live.lba - vlba):
                        continue
                    rel = live.offset - start
                    pieces.append((live.lba, blob[rel : rel + live.length]))
            data_off = ext_end
        if request_lba is not None:
            # de-duplicated aliases point at data the header attributes to
            # a *different* vLBA; the header translation above cannot find
            # them, so guarantee the caller's requested range explicitly
            covered = any(
                lba <= request_lba and lba + len(d) >= request_lba + length
                for lba, d in pieces
            )
            if not covered:
                rel = offset - start
                pieces.append((request_lba, blob[rel : rel + length]))
        return pieces

    def header_of(self, seq: int) -> ObjectHeader:
        """Object header, fetched lazily and cached (GC uses this, §3.5)."""
        header = self._header_cache.get(seq)
        if header is None and self._shared_reader is not None:
            return self._shared_reader.header_of(self, seq)
        if header is None:
            return self.header_of_direct(seq)
        return header

    def header_of_direct(self, seq: int) -> ObjectHeader:
        """Decode the header from the backend, bypassing any shared cache."""
        header = self._header_cache.get(seq)
        if header is None:
            name = self.name_for_seq(seq)
            blob = self.store.get_range(name, 0, 64 * 1024)
            header = decode_object_header(blob)
            self._header_cache[seq] = header
        return header

    def cache_header(self, seq: int, header: ObjectHeader) -> None:
        """Install a header decoded elsewhere (a shared-cache hit)."""
        self._header_cache[seq] = header

    # ------------------------------------------------------------------
    # shared-cache attachment (§6.3)
    # ------------------------------------------------------------------
    def attach_shared(self, reader) -> None:
        """Route ``fetch``/``header_of`` through a shared-cache reader.

        ``reader`` is a :class:`~repro.core.shared_cache.SharedCacheAttachment`
        (anything with ``fetch(bs, seq, offset, length)`` and
        ``header_of(bs, seq)``).  One attachment at a time; attaching
        replaces the previous reader.
        """
        self._shared_reader = reader

    def detach_shared(self, reader) -> None:
        if self._shared_reader is reader:
            self._shared_reader = None

    def object_data(self, seq: int) -> bytes:
        """Whole-object read (GC bulk path)."""
        name = self.name_for_seq(seq)
        header, data = decode_object(self.store.get(name))
        self._header_cache[seq] = header
        return data

    def delete_object(self, seq: int) -> None:
        if seq < self.first_own_seq:
            raise SnapshotInUseError("refusing to delete clone-base object")
        self.store.delete(object_name(self.name, seq))
        self._header_cache.pop(seq, None)
        self.stats.objects_deleted += 1

    # ------------------------------------------------------------------
    # snapshots (§3.6)
    # ------------------------------------------------------------------
    def create_snapshot(self, snap_name: str) -> int:
        """Designate the current stream head as a snapshot; returns its seq."""
        if snap_name in self.snapshots:
            raise VolumeExistsError(f"snapshot {snap_name!r} exists")
        seq = self.next_seq - 1
        self.snapshots[snap_name] = seq
        self.write_super()
        return seq

    def delete_snapshot(self, snap_name: str) -> List[int]:
        """Remove a snapshot and perform newly allowable deferred deletes."""
        if snap_name not in self.snapshots:
            raise VolumeNotFoundError(f"no snapshot {snap_name!r}")
        del self.snapshots[snap_name]
        self.write_super()
        return self.run_deferred_deletes()

    def snapshot_blocks_delete(self, victim_seq: int, newest_seq: int) -> bool:
        """Paper's §3.6 rule: defer the delete of victim N0 if a snapshot
        N_x intervenes (N0 <= N_x < N_gc): that snapshot still references
        the victim's data."""
        return any(
            victim_seq <= snap_seq < newest_seq
            for snap_seq in self.snapshots.values()
        )

    def run_deferred_deletes(self) -> List[int]:
        """Re-examine the deferred list after a snapshot deletion."""
        deleted = []
        for victim, gc_seq in sorted(self.deferred_deletes.items()):
            if not self.snapshot_blocks_delete(victim, gc_seq):
                self.delete_object(victim)
                deleted.append(victim)
        for victim in deleted:
            del self.deferred_deletes[victim]
        return deleted

    # ------------------------------------------------------------------
    # checkpoints & superblock
    # ------------------------------------------------------------------
    def write_checkpoint(self, span=NULL_SPAN):
        """Write a KIND_CHECKPOINT object into the stream.

        Returns ``(seq, put_result)``.  Callers must only invoke this when
        every prior PUT has settled (the volume enforces it), and must
        call :meth:`retire_old_checkpoints` only once this checkpoint's
        PUT itself has settled — otherwise a crash window exists with no
        visible checkpoint at all.
        """
        seq = self._take_seq()
        sections = {
            "meta": ckpt.pack_json(
                {
                    "next_seq": seq + 1,
                    "last_record_seq": self.last_record_seq_destaged,
                    "snapshots": self.snapshots,
                    "deferred": sorted(self.deferred_deletes.items()),
                    "ckpt_history": self._ckpt_history[-2:],
                    "stats": {
                        "client_bytes": self.stats.client_bytes,
                        "merged_bytes": self.stats.merged_bytes,
                        "data_bytes": self.stats.data_bytes,
                        "gc_bytes": self.stats.gc_bytes,
                        "class_data": [
                            self.stats.class_data_bytes(t) for t in range(NUM_TEMPS)
                        ],
                        "class_gc": [
                            self.stats.class_gc_bytes(t) for t in range(NUM_TEMPS)
                        ],
                    },
                }
            ),
            "map": ckpt.pack_rows("<QQQQ", self.omap.entries()),
            "objects": ckpt.pack_rows(
                "<QQQQQ",
                [
                    (seq_, kind, data, live, int(in_base))
                    for seq_, kind, data, live, in_base in self.omap.object_table()
                ],
            ),
        }
        payload = ckpt.encode_sections(sections)
        header = ObjectHeader(
            kind=KIND_CHECKPOINT,
            uuid=self.uuid,
            seq=seq,
            last_record_seq=self.last_record_seq_destaged,
        )
        stage = span.begin("checkpoint_put", seq=seq, bytes=len(payload))
        put_result = self.store.put(
            object_name(self.name, seq), encode_object(header, payload)
        )
        stage.end()
        self.stats.ckpt_bytes += len(payload)
        self.stats.objects_put += 1
        self._object_bytes.observe(len(payload))
        self.obs.trace.emit("checkpoint", seq=seq, bytes=len(payload))
        self._ckpt_history.append(seq)
        self.last_ckpt_seq = seq
        self._objects_since_ckpt = 0
        self.write_super()
        return seq, put_result

    def retire_old_checkpoints(self) -> List[int]:
        """Delete superseded checkpoints, keeping the newest two plus any
        checkpoint a snapshot mount still needs (the newest checkpoint at
        or below each snapshot's sequence number, §3.6).

        Only call after the newest checkpoint's PUT has settled.
        """
        pinned = set(self._ckpt_history[-2:])
        for snap_seq in self.snapshots.values():
            older = [c for c in self._ckpt_history if c <= snap_seq]
            if older:
                pinned.add(max(older))
        retired = []
        for old in list(self._ckpt_history[:-2]):
            if old in pinned or old < self.first_own_seq:
                continue
            try:
                self.delete_object(old)
                retired.append(old)
            except NoSuchKeyError:
                pass
            self._ckpt_history.remove(old)
        return retired

    def write_super(self) -> None:
        blob = ckpt.encode_sections(
            {
                "super": ckpt.pack_json(
                    {
                        "uuid": self.uuid.hex(),
                        "size": self.size,
                        "base_chain": self.base_chain,
                        "last_ckpt_seq": self.last_ckpt_seq,
                        "snapshots": self.snapshots,
                    }
                )
            }
        )
        self.store.put(super_name(self.name), blob)

    @staticmethod
    def read_super(store: ObjectStore, name: str) -> dict:
        try:
            blob = store.get(super_name(name))
        except NoSuchKeyError:
            raise VolumeNotFoundError(f"volume {name!r} has no superblock") from None
        sections = ckpt.decode_sections(blob)
        return ckpt.unpack_json(sections["super"])

    # ------------------------------------------------------------------
    # creation / recovery
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        store: ObjectStore,
        name: str,
        size: int,
        config: Optional[LSVDConfig] = None,
        uuid: Optional[bytes] = None,
        obs: Optional[Registry] = None,
    ) -> "BlockStore":
        if store.exists(super_name(name)) or store.list(stream_prefix(name)):
            raise VolumeExistsError(f"volume {name!r} already exists")
        bs = cls(store, name, uuid or os.urandom(16), size, config, obs=obs)
        bs.write_checkpoint()  # seq 1: recovery always finds a checkpoint
        return bs

    @classmethod
    def open(
        cls,
        store: ObjectStore,
        name: str,
        config: Optional[LSVDConfig] = None,
        upto: Optional[int] = None,
        read_only: bool = False,
        obs: Optional[Registry] = None,
    ) -> Tuple["BlockStore", RecoveredState]:
        """Mount an existing volume, running log recovery (§3.3)."""
        meta = cls.read_super(store, name)
        bs = cls(
            store,
            name,
            bytes.fromhex(meta["uuid"]),
            meta["size"],
            config,
            base_chain=[tuple(x) for x in meta.get("base_chain", [])],
            obs=obs,
        )
        bs.snapshots = dict(meta.get("snapshots", {}))
        state = bs._recover(
            super_ckpt_hint=meta.get("last_ckpt_seq", 0),
            upto=upto,
            read_only=read_only,
        )
        return bs, state

    def _listed_seqs(self) -> List[int]:
        """Every stream sequence number the store can currently see.

        ``store.list`` is the recovery oracle: with a single backend it
        is one LIST; with a :class:`~repro.shard.ShardedObjectStore` it
        is the scatter-gathered union of every shard's listing, so the
        consecutive-run rule below operates on the *global* sequence
        regardless of where individual objects landed.
        """
        return stream_seqs(self.store.list(stream_prefix(self.name)), self.name)

    def _recover(
        self, super_ckpt_hint: int, upto: Optional[int], read_only: bool
    ) -> RecoveredState:
        seqs = self._listed_seqs()
        if upto is not None:
            seqs = [s for s in seqs if s <= upto]
        if not seqs:
            raise RecoveryError(f"volume {self.name!r} has no stream objects")
        ckpt_seq = self._find_checkpoint(seqs, super_ckpt_hint)
        self._load_checkpoint(ckpt_seq)
        # replay the consecutive run after the checkpoint
        present = set(seqs)
        last = ckpt_seq
        last_record_seq = self.last_record_seq_destaged
        seq = ckpt_seq + 1
        while seq in present:
            header = self._read_full_header(seq)
            last_record_seq = max(last_record_seq, header.last_record_seq)
            self._replay_object(header)
            last = seq
            seq += 1
        self.next_seq = last + 1
        self.last_record_seq_destaged = last_record_seq
        # prune accounting entries for objects the GC deleted after the
        # checkpoint we loaded was written; a still-referenced missing
        # object means real data loss and must abort the mount.
        for obj_seq in sorted(self.omap.objects):
            info = self.omap.objects[obj_seq]
            if info.in_base or obj_seq in present:
                continue
            if info.live_bytes > 0:
                raise RecoveryError(
                    f"object {obj_seq} is referenced by the map but missing"
                )
            del self.omap.objects[obj_seq]
        # delete stranded objects beyond the first hole (§3.3) — unless we
        # are mounting a historical snapshot read-only.  The store routes
        # each delete to wherever the object lives (a sharded store sends
        # it to the owning shard), so one pass cleans every backend.
        stranded = []
        if not read_only and upto is None:
            for s in sorted(present):
                if s > last:
                    name = object_name(self.name, s)
                    self.store.delete(name)
                    stranded.append(name)
        return RecoveredState(
            last_seq=last,
            last_record_seq=last_record_seq,
            stranded_deleted=stranded,
        )

    def _find_checkpoint(self, seqs: List[int], hint: int) -> int:
        """Locate the newest checkpoint: try the superblock hint, else scan
        backwards from the newest object reading headers."""
        present = set(seqs)
        if hint in present and self._kind_of(hint) == KIND_CHECKPOINT:
            # a newer checkpoint may exist if the super update was lost
            newer = [s for s in seqs if s > hint]
            for s in sorted(newer, reverse=True):
                if self._kind_of(s) == KIND_CHECKPOINT and self._consecutive_from(
                    present, hint, s
                ):
                    return s
            return hint
        for s in sorted(seqs, reverse=True):
            if self._kind_of(s) == KIND_CHECKPOINT:
                return s
        raise RecoveryError(f"volume {self.name!r}: no checkpoint found")

    @staticmethod
    def _consecutive_from(present: set, start: int, end: int) -> bool:
        return all(s in present for s in range(start, end + 1))

    def _kind_of(self, seq: int) -> int:
        """Kind of object ``seq``; -1 when absent or unreadable.

        Recovery probes holes and torn objects on purpose here, so only
        the two expected failure shapes are absorbed — anything else
        (I/O errors, bugs) must surface (LSVD004).
        """
        try:
            return self.header_of(seq).kind
        except (NoSuchKeyError, CorruptRecordError):
            return -1

    def _read_full_header(self, seq: int) -> ObjectHeader:
        return self.header_of(seq)

    def _load_checkpoint(self, seq: int) -> None:
        name = self.name_for_seq(seq)
        header, payload = decode_object(self.store.get(name))
        if header.kind != KIND_CHECKPOINT:
            raise RecoveryError(f"object {seq} is not a checkpoint")
        sections = ckpt.decode_sections(payload)
        meta = ckpt.unpack_json(sections["meta"])
        map_entries = ckpt.unpack_rows("<QQQQ", sections["map"])
        object_table = [
            (s, kind, data, live, bool(in_base))
            for s, kind, data, live, in_base in ckpt.unpack_rows(
                "<QQQQQ", sections["objects"]
            )
        ]
        self.omap = ObjectMap.restore(map_entries, object_table, {})
        self.next_seq = meta["next_seq"]
        self.last_record_seq_destaged = meta["last_record_seq"]
        self.snapshots = dict(meta.get("snapshots", {}))
        self.deferred_deletes = {int(v): g for v, g in meta.get("deferred", [])}
        self._ckpt_history = list(meta.get("ckpt_history", [])) + [seq]
        self.last_ckpt_seq = seq
        stats = meta.get("stats", {})
        self.stats.client_bytes = stats.get("client_bytes", 0)
        self.stats.merged_bytes = stats.get("merged_bytes", 0)
        self.stats.data_bytes = stats.get("data_bytes", 0)
        self.stats.gc_bytes = stats.get("gc_bytes", 0)
        for temp, value in enumerate(stats.get("class_data", [])[:NUM_TEMPS]):
            self.stats.add_class_data(temp, value - self.stats.class_data_bytes(temp))
        for temp, value in enumerate(stats.get("class_gc", [])[:NUM_TEMPS]):
            self.stats.add_class_gc(temp, value - self.stats.class_gc_bytes(temp))

    def _replay_object(self, header: ObjectHeader) -> None:
        """Apply one stream object's header during recovery."""
        if header.kind == KIND_CHECKPOINT:
            # state already reflects everything <= this point, but the map
            # we restored may be older; reload to stay exact.
            self._load_checkpoint(header.seq)
            return
        if header.seq in self.omap.objects:
            return  # already reflected in the checkpoint we loaded
        self.omap.add_object(
            header.seq, header.kind, header.data_len, header.extents, temp=header.temp
        )
        offset = 0
        for ext in header.extents:
            if header.kind == KIND_GC:
                self.omap.apply_gc_extent(
                    header.seq, ext.lba, ext.length, offset, ext.src_seq
                )
            else:
                self.omap.apply_extent(header.seq, ext.lba, ext.length, offset)
            offset += ext.length

    # ------------------------------------------------------------------
    # clone creation (§3.6, Figure 5)
    # ------------------------------------------------------------------
    @classmethod
    def clone_from(
        cls,
        store: ObjectStore,
        base_name: str,
        clone_name: str,
        config: Optional[LSVDConfig] = None,
        at_snapshot: Optional[str] = None,
        obs: Optional[Registry] = None,
    ) -> "BlockStore":
        """Create a copy-on-write clone sharing the base's object prefix."""
        base_meta = cls.read_super(store, base_name)
        upto = None
        if at_snapshot is not None:
            snaps = base_meta.get("snapshots", {})
            if at_snapshot not in snaps:
                raise VolumeNotFoundError(
                    f"base {base_name!r} has no snapshot {at_snapshot!r}"
                )
            upto = snaps[at_snapshot]
        base, state = cls.open(store, base_name, config, upto=upto, read_only=True)
        if store.exists(super_name(clone_name)) or store.list(stream_prefix(clone_name)):
            raise VolumeExistsError(f"volume {clone_name!r} already exists")
        chain = base.base_chain + [(base_name, state.last_seq)]
        clone = cls(
            store,
            clone_name,
            os.urandom(16),
            base.size,
            config,
            base_chain=chain,
            obs=obs,
        )
        clone.omap = base.omap
        for info in clone.omap.objects.values():
            info.in_base = True  # the GC must never clean shared objects
        clone.next_seq = state.last_seq + 1
        clone.last_record_seq_destaged = 0
        clone.write_checkpoint()
        return clone

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def occupancy(self) -> Tuple[int, int]:
        """(live bytes, total data bytes) over cleanable objects (Fig 15)."""
        live = total = 0
        for info in self.omap.objects.values():
            if info.in_base or info.kind == KIND_CHECKPOINT:
                continue
            live += info.live_bytes
            total += info.data_bytes
        return live, total

    def occupancy_by_class(self) -> Dict[int, Tuple[int, int]]:
        """Per-temperature-class (live, total) occupancy over cleanable
        objects; refreshes the ``store.class_*`` gauges as a side effect
        so snapshots and dumps carry the split."""
        acc: Dict[int, List[int]] = {t: [0, 0] for t in range(NUM_TEMPS)}
        for info in self.omap.objects.values():
            if info.in_base or info.kind == KIND_CHECKPOINT:
                continue
            slot = acc.setdefault(info.temp, [0, 0])
            slot[0] += info.live_bytes
            slot[1] += info.data_bytes
        out: Dict[int, Tuple[int, int]] = {}
        for temp in range(NUM_TEMPS):
            live, total = acc[temp]
            self.stats.set_class_occupancy(temp, live, total)
            out[temp] = (live, total)
        return out
