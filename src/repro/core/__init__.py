"""The paper's primary contribution: the Log-Structured Virtual Disk.

Layout mirrors Figure 1 of the paper:

* :mod:`~repro.core.write_cache` — log-structured write-back cache on SSD
  (Figure 2: records = header {seq, CRC, LBA list} + data blocks).
* :mod:`~repro.core.read_cache` — FIFO read cache sharing the SSD.
* :mod:`~repro.core.block_store` — log-structured block store over an
  S3-like object store (Figures 3-4: batches become immutable numbered
  objects whose headers list contained extents).
* :mod:`~repro.core.gc` — greedy garbage collection with snapshot-aware
  deferred deletes and optional hole-plugging defragmentation.
* :mod:`~repro.core.volume` — the virtual-disk facade gluing it together,
  including crash recovery, snapshots, clones, and async replication.

All of this is *pure logic*: deterministic and synchronous, operating on
:class:`~repro.devices.image.DiskImage` content and an object-store
interface.  The timed behaviour (queue depths, background destage and GC)
is added by :mod:`repro.runtime` which drives the same code under the
discrete-event simulator.
"""

from repro.core.config import LSVDConfig
from repro.core.errors import (
    CacheFullError,
    CorruptRecordError,
    LSVDError,
    RecoveryError,
    SnapshotInUseError,
)
from repro.core.extent_map import Extent, ExtentMap
from repro.core.volume import LSVDVolume

__all__ = [
    "CacheFullError",
    "CorruptRecordError",
    "Extent",
    "ExtentMap",
    "LSVDConfig",
    "LSVDError",
    "LSVDVolume",
    "RecoveryError",
    "SnapshotInUseError",
]
