"""The object map: vLBA -> (object sequence, offset), plus GC accounting.

Beyond the translation itself, the map maintains the in-memory table §3.5
describes: per-object total size and remaining live bytes, enabling O(n)
selection of the least-utilised cleaning candidates and the overall
utilisation trigger (live / total below the low watermark starts GC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.extent_map import Extent, ExtentMap
from repro.core.log import ObjectExtent


@dataclass
class ObjectInfo:
    """Accounting entry for one backend object."""

    seq: int
    kind: int
    data_bytes: int  # payload data at creation (excl. header)
    live_bytes: int  # bytes still referenced by the map
    extents: List[ObjectExtent] = field(default_factory=list)
    in_base: bool = False  # belongs to a clone's immutable base image
    temp: int = 0  # temperature class recorded in the object header

    @property
    def utilization(self) -> float:
        if self.data_bytes == 0:
            return 1.0
        return self.live_bytes / self.data_bytes


class ObjectMap:
    """Extent map into the object stream with live-data accounting."""

    def __init__(self) -> None:
        self.map = ExtentMap()  # vLBA -> target=seq, offset=data offset
        self.objects: Dict[int, ObjectInfo] = {}

    # -- object lifecycle ---------------------------------------------------
    def add_object(
        self,
        seq: int,
        kind: int,
        data_bytes: int,
        extents: List[ObjectExtent],
        in_base: bool = False,
        temp: int = 0,
    ) -> None:
        if seq in self.objects:
            raise ValueError(f"object seq {seq} already tracked")
        self.objects[seq] = ObjectInfo(
            seq=seq,
            kind=kind,
            data_bytes=data_bytes,
            live_bytes=0,
            extents=extents,
            in_base=in_base,
            temp=temp,
        )

    def drop_object(self, seq: int) -> ObjectInfo:
        info = self.objects.pop(seq)
        return info

    # -- map updates ---------------------------------------------------
    def apply_extent(self, seq: int, lba: int, length: int, offset: int) -> None:
        """Point [lba, lba+length) at object ``seq`` data offset ``offset``."""
        displaced = self.map.update(lba, length, seq, offset)
        self._account(seq, length, displaced)

    def apply_gc_extent(
        self, seq: int, lba: int, length: int, offset: int, src_seq: int
    ) -> int:
        """Conditionally apply a GC-copied extent (crash replay path).

        Only the sub-ranges still mapped to ``src_seq`` move to the GC
        object; anything already overwritten by newer data stays.  Returns
        the number of bytes actually relocated.
        """
        moved = 0
        for piece in self.map.lookup(lba, length):
            if piece.target != src_seq:
                continue
            rel = piece.lba - lba
            displaced = self.map.update(piece.lba, piece.length, seq, offset + rel)
            self._account(seq, piece.length, displaced)
            moved += piece.length
        return moved

    def trim(self, lba: int, length: int) -> None:
        """Discard mappings (TRIM/unmap support)."""
        for old in self.map.remove(lba, length):
            self._decrement(old)

    def _account(self, seq: int, added: int, displaced: List[Extent]) -> None:
        info = self.objects.get(seq)
        if info is not None:
            info.live_bytes += added
        for old in displaced:
            self._decrement(old)

    def _decrement(self, old: Extent) -> None:
        prev = self.objects.get(old.target)
        if prev is not None:
            prev.live_bytes -= old.length
            if prev.live_bytes < 0:
                raise AssertionError(
                    f"object {old.target} live bytes went negative"
                )

    # -- reads ---------------------------------------------------------
    def lookup(self, lba: int, length: int):
        return self.map.lookup(lba, length)

    def lookup_with_gaps(self, lba: int, length: int):
        return self.map.lookup_with_gaps(lba, length)

    # -- GC support -----------------------------------------------------
    def utilization(self, cleanable_only: bool = True) -> float:
        """Overall live/total ratio over (cleanable) data+GC objects."""
        total = live = 0
        for info in self.objects.values():
            if cleanable_only and info.in_base:
                continue
            total += info.data_bytes
            live += info.live_bytes
        if total == 0:
            return 1.0
        return live / total

    def cleaning_candidates(
        self, exclude: Iterable[int] = (), max_seq: Optional[int] = None
    ) -> List[ObjectInfo]:
        """Cleanable objects sorted by utilisation (greedy policy, §3.5)."""
        skip = set(exclude)
        out = [
            info
            for info in self.objects.values()
            if not info.in_base
            and info.seq not in skip
            and (max_seq is None or info.seq < max_seq)
            and info.data_bytes > 0
        ]
        out.sort(key=lambda i: (i.utilization, i.seq))
        return out

    def live_extents_of(self, seq: int) -> List[Tuple[int, int, int]]:
        """Live pieces of object ``seq``: (vLBA, length, data offset).

        Per §3.5 we only re-examine the ranges listed in the object's
        creation-time header rather than scanning the whole map.
        """
        info = self.objects[seq]
        live: List[Tuple[int, int, int]] = []
        for ext in info.extents:
            for piece in self.map.lookup(ext.lba, ext.length):
                if piece.target != seq:
                    continue
                # re-join pieces split only by a header-extent boundary:
                # adjacent in the address space *and* in the object's
                # data (the extent map's own merge rule) — so GC sees
                # maximal runs and relocation chunk cuts land at the
                # same byte offsets as the page-granular simulator's
                if (
                    live
                    and live[-1][0] + live[-1][1] == piece.lba
                    and live[-1][2] + live[-1][1] == piece.offset
                ):
                    lba0, len0, off0 = live[-1]
                    live[-1] = (lba0, len0 + piece.length, off0)
                else:
                    live.append((piece.lba, piece.length, piece.offset))
        return live

    # -- checkpoint (de)serialisation -----------------------------------
    def entries(self):
        return self.map.entries()

    def object_table(self) -> List[Tuple[int, int, int, int, bool]]:
        # the temperature class shares the kind column's high byte, the
        # same packing the object wire header uses
        return [
            (i.seq, i.kind | (i.temp << 8), i.data_bytes, i.live_bytes, i.in_base)
            for i in sorted(self.objects.values(), key=lambda i: i.seq)
        ]

    @classmethod
    def restore(cls, map_entries, object_table, extent_lists) -> "ObjectMap":
        om = cls()
        om.map = ExtentMap.from_entries(map_entries)
        for (seq, kind, data_bytes, live_bytes, in_base) in object_table:
            om.objects[seq] = ObjectInfo(
                seq=seq,
                kind=kind & 0xFF,
                data_bytes=data_bytes,
                live_bytes=live_bytes,
                extents=extent_lists.get(seq, []),
                in_base=in_base,
                temp=kind >> 8,
            )
        return om
