"""Log-structured write-back cache (Figure 2, §3.1).

The cache occupies a region of the local SSD laid out as::

    [superblock 4K][checkpoint slot A][checkpoint slot B][ circular log ... ]

Client writes become log records — a block-aligned header listing the
(vLBA, length) extents followed by block-aligned data — appended at the
head.  Because the log is written sequentially, small random client writes
turn into fast sequential device writes, and a commit barrier needs only a
single device flush: no separate metadata blocks ever have to be persisted,
which is the source of LSVD's 4x advantage over bcache on sync-heavy
workloads (§4.2.2).

The head/tail pair are *virtual* (monotonic) byte offsets into the log
area; physical position is ``virt % area_size``.  A record never wraps
internally: when it would, the head skips to the next area boundary and
recovery follows the same rule.  The tail advances only when the volume
confirms that a record's data is safely inside a settled backend object
(:meth:`release_through`), so everything between tail and head is exactly
the data that crash recovery may need to replay to the backend (§3.3).

Checkpoints alternate between two slots; recovery picks the newest valid
one (by CRC and sequence), restores the map, then replays records forward
from the checkpointed head, stopping at the first invalid header — the
implicit end-of-log detection the paper describes.

Divergence from the paper: the prototype re-uses this implementation for
the read cache and persists the read map periodically; here the read-cache
map is persisted only on *clean* shutdown and dropped after a crash, which
is strictly safe (a stale persisted read-map could otherwise serve old
data for LBAs overwritten after the map was persisted).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core import checkpoint as ckpt
from repro.core.config import BLOCK
from repro.core.errors import CacheFullError, CorruptRecordError
from repro.core.extent_map import ExtentMap
from repro.core.log import CacheRecord, align_up, decode_record, encode_record, pack_record
from repro.devices.image import DiskImage
from repro.obs import NULL_SPAN, Registry, bind_metrics, metric_field

_SUPER = struct.Struct("<4sHHQQQQ")  # magic ver flags log_off log_size slot_size uuid_lo
_SUPER_MAGIC = b"LSWC"
_FLAG_CLEAN = 1

#: target identifier used in the write-cache extent map
WC_TARGET = "wc"


@dataclass
class RecordRef:
    """Index entry for one live log record."""

    seq: int
    virt: int  # virtual byte offset of the record header
    size: int  # total footprint (header + data)


class WriteCache:
    """The log-structured write-back cache over a DiskImage region."""

    # statistics (registry-backed; see repro.obs)
    bytes_logged = metric_field("wc.bytes_logged")
    client_bytes = metric_field("wc.client_bytes")
    barriers = metric_field("wc.barriers")
    barriers_coalesced = metric_field("wc.barriers_coalesced")
    device_flushes = metric_field("wc.device_flushes")

    def __init__(
        self,
        image: DiskImage,
        region_offset: int = 0,
        region_size: Optional[int] = None,
        ckpt_slot_size: int = 1 << 20,
        obs: Optional[Registry] = None,
    ):
        self.image = image
        self.region_offset = region_offset
        self.region_size = region_size if region_size is not None else image.size
        self.slot_size = align_up(ckpt_slot_size)
        meta = BLOCK + 2 * self.slot_size
        if self.region_size <= meta + 4 * BLOCK:
            raise ValueError("write cache region too small")
        self.log_offset = region_offset + meta
        self.log_size = (self.region_size - meta) // BLOCK * BLOCK

        self.map = ExtentMap()  # vLBA -> (WC_TARGET, absolute image offset)
        self.records: List[RecordRef] = []  # live records, oldest first
        self.head_virt = 0
        self.tail_virt = 0
        self.next_seq = 1
        #: recovery generation: records of a different epoch must never be
        #: resurrected during replay (they were rolled back by an earlier
        #: recovery, and clients may have observed their absence)
        self.epoch = 0
        self._ckpt_seq = 0
        self._ckpt_head = 0  # head position captured by the last checkpoint
        self._clean = False
        self.obs = obs if obs is not None else Registry()
        bind_metrics(self)
        self._occupancy = self.obs.gauge("wc.occupancy_bytes")

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def _phys(self, virt: int) -> int:
        return self.log_offset + (virt % self.log_size)

    @property
    def used_bytes(self) -> int:
        return self.head_virt - self.tail_virt

    @property
    def free_bytes(self) -> int:
        return self.log_size - self.used_bytes

    @property
    def dirty_bytes(self) -> int:
        """Bytes of not-yet-released (i.e. not safely destaged) records."""
        return self.used_bytes

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def append(self, writes: List[Tuple[int, bytes]], span=NULL_SPAN) -> CacheRecord:
        """Log a group of writes as one record; returns the record.

        Raises :class:`CacheFullError` when the log lacks space — the
        caller must destage and :meth:`release_through` first.  A failed
        append leaves its span child open; the retry (after the caller
        makes room) opens a fresh one.
        """
        stage = span.begin("wc_append")
        record = pack_record(self.next_seq, writes, epoch=self.epoch)
        encoded = encode_record(record)
        size = len(encoded)
        if size > self.log_size:
            raise CacheFullError("record larger than the entire cache log")
        # Recovery replays the record chain forward from the last
        # checkpoint's head.  If this append would wrap over that position
        # (possible once the records there were released), the chain would
        # no longer be decodable after a crash - so checkpoint first.
        start = self.head_virt
        if self.log_size - (start % self.log_size) < size:
            start += self.log_size - (start % self.log_size)
        if start + size > self._ckpt_head + self.log_size:
            self.checkpoint()
        virt = self._reserve(size)
        phys = self._phys(virt)
        self.image.write(phys, encoded)
        # map each extent to its data location on SSD; the stat update is
        # one batched delta after the loop (hot-path hygiene, LSVD009)
        data_phys = phys + record.header_size
        data_off = 0
        total = 0
        for lba, length in record.extents:
            self.map.update(lba, length, WC_TARGET, data_phys + data_off)
            data_off += align_up(length)
            total += length
        self.client_bytes += total
        self.records.append(RecordRef(record.seq, virt, size))
        self.next_seq += 1
        self.bytes_logged += size
        self._occupancy.set(self.used_bytes)
        self._clean = False
        stage.end(bytes=total, seq=record.seq)
        return record

    def _reserve(self, size: int) -> int:
        """Find space for ``size`` contiguous bytes, skipping wrap slack."""
        virt = self.head_virt
        room_to_edge = self.log_size - (virt % self.log_size)
        if room_to_edge < size:
            virt += room_to_edge  # dead space until the tail frees it
        if (virt + size) - self.tail_virt > self.log_size:
            raise CacheFullError(
                f"cache log full: need {size}, free {self.free_bytes}"
            )
        self.head_virt = virt + size
        return virt

    def barrier(self, span=NULL_SPAN) -> None:
        """Commit barrier: one flush makes all prior records durable.

        Group-commit elision: when the device has nothing in its volatile
        write buffer, every prior record is *already* durable and the
        barrier is a no-op — a back-to-back barrier burst (fsync storms)
        costs one device FLUSH for the whole group.  Safe by the device
        model itself: ``pending_writes == 0`` is exactly the condition
        under which a crash loses nothing.
        """
        self.barriers += 1
        if self.image.pending_writes == 0:
            self.barriers_coalesced += 1
            span.annotate(flush_elided=True)
            return
        stage = span.begin("device_flush")
        self.image.flush()
        stage.end()
        self.device_flushes += 1

    def resume_after(self, last_record_seq: int) -> None:
        """Restart sequence allocation just past a backend high-water mark.

        Mount-time recovery must never let a fresh record reuse a
        sequence the backend already destaged (it would be released as
        "already safe" and lost).  The cache log owns that arithmetic;
        callers hand in the backend's mark and nothing else (LSVD002).
        """
        self.next_seq = last_record_seq + 1

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read(self, lba: int, length: int, span=NULL_SPAN) -> List[Tuple[int, int, bytes]]:
        """Serve cached pieces of [lba, lba+length): (lba, length, data)."""
        stage = span.begin("wc_read")
        out = []
        for ext in self.map.lookup(lba, length):
            out.append((ext.lba, ext.length, self.image.read(ext.offset, ext.length)))
        stage.end(pieces=len(out))
        return out

    # ------------------------------------------------------------------
    # destage coupling
    # ------------------------------------------------------------------
    def release_through(self, record_seq: int) -> int:
        """Free records with seq <= record_seq (data settled in backend).

        Returns the number of bytes freed.  Map entries pointing into the
        freed records are dropped; later reads fall through to the read
        cache or the block store, both of which now hold the data.
        """
        freed = 0
        while self.records and self.records[0].seq <= record_seq:
            ref = self.records.pop(0)
            freed += ref.size
            self._drop_map_entries(ref)
            # advance tail to the next live record, swallowing wrap slack;
            # with no live records the tail catches up with the head.
            if self.records:
                self.tail_virt = self.records[0].virt
            else:
                self.tail_virt = self.head_virt
        if freed:
            self._occupancy.set(self.used_bytes)
        return freed

    def _drop_map_entries(self, ref: RecordRef) -> None:
        """Remove map entries that this record established and that still
        point at *its* data.

        The check must be exact (vLBA and offset both matching what the
        record wrote): after a log wrap, a stale record's physical range
        may have been reused by a newer record, and blindly dropping by
        physical range would destroy the newer record's mappings.
        """
        raw = self.image.read(self._phys(ref.virt), ref.size)
        record = decode_record(raw)
        if record is None or record.seq != ref.seq:
            return  # space already reused: nothing of ours is mapped
        data_phys = self._phys(ref.virt) + record.header_size
        for index, (lba, length) in enumerate(record.extents):
            base = data_phys + record.data_offset_of(index)
            for piece in self.map.lookup(lba, length):
                if piece.offset == base + (piece.lba - lba):
                    self.map.remove(piece.lba, piece.length)

    def records_after(self, record_seq: int) -> Iterator[Tuple[CacheRecord, RecordRef]]:
        """Decode live records with seq > record_seq (crash replay, §3.3).

        Iterates over a snapshot: consumers may trigger destage commits
        that release records (mutating ``self.records``) mid-iteration.
        """
        for ref in list(self.records):
            if ref.seq <= record_seq:
                continue
            raw = self.image.read(self._phys(ref.virt), ref.size)
            record = decode_record(raw)
            if record is None or record.seq != ref.seq:
                raise CorruptRecordError(f"live record seq={ref.seq} unreadable")
            yield record, ref

    def record_data(self, record: CacheRecord, index: int) -> bytes:
        """Payload bytes of one extent of a decoded record."""
        lba, length = record.extents[index]
        off = record.data_offset_of(index)
        return record.data[off : off + length]

    # ------------------------------------------------------------------
    # checkpoint / recovery
    # ------------------------------------------------------------------
    def format(self, uuid_lo: int = 0) -> None:
        """Initialise an empty cache region (mkfs equivalent)."""
        super_blob = _SUPER.pack(
            _SUPER_MAGIC, 1, 0, self.log_offset, self.log_size, self.slot_size, uuid_lo
        )
        self.image.write(self.region_offset, super_blob.ljust(BLOCK, b"\x00"))
        self.epoch = self._fresh_epoch()
        self.checkpoint()
        self.image.flush()

    @staticmethod
    def _fresh_epoch() -> int:
        import os as _os

        return int.from_bytes(_os.urandom(8), "little") or 1

    def checkpoint(self, extra_sections: Optional[dict] = None) -> None:
        """Persist map + record index to the next alternating slot."""
        self._ckpt_seq += 1
        sections = {
            "meta": ckpt.pack_json(
                {
                    "ckpt_seq": self._ckpt_seq,
                    "head": self.head_virt,
                    "tail": self.tail_virt,
                    "next_seq": self.next_seq,
                    "epoch": self.epoch,
                    "clean": bool(self._clean),
                }
            ),
            "map": ckpt.pack_rows(
                "<QQQ", [(e.lba, e.length, e.offset) for e in self.map]
            ),
            "records": ckpt.pack_rows(
                "<QQQ", [(r.seq, r.virt, r.size) for r in self.records]
            ),
        }
        if extra_sections:
            sections.update(extra_sections)
        blob = ckpt.encode_sections(sections)
        if len(blob) > self.slot_size:
            raise CacheFullError("checkpoint larger than slot")
        slot = self._ckpt_seq % 2
        offset = self.region_offset + BLOCK + slot * self.slot_size
        self.image.write(offset, blob)
        self.image.flush()
        self._ckpt_head = self.head_virt

    def close(self) -> None:
        """Clean shutdown: mark clean and checkpoint (enables warm maps)."""
        self._clean = True
        self.checkpoint()

    def recover(self) -> dict:
        """Rebuild state after restart/crash; returns the extra sections.

        Loads the newest valid checkpoint, then rolls the log forward from
        its head, stopping at the first invalid or out-of-sequence record.
        """
        best: Optional[dict] = None
        best_sections: Optional[dict] = None
        for slot in range(2):
            offset = self.region_offset + BLOCK + slot * self.slot_size
            blob = self.image.read(offset, self.slot_size)
            try:
                sections = ckpt.decode_sections(blob)
                meta = ckpt.unpack_json(sections["meta"])
            except (CorruptRecordError, KeyError, ValueError):
                continue
            if best is None or meta["ckpt_seq"] > best["ckpt_seq"]:
                best, best_sections = meta, sections
        if best is None:
            raise CorruptRecordError("no valid write-cache checkpoint")
        self._ckpt_seq = best["ckpt_seq"]
        self.head_virt = best["head"]
        self._ckpt_head = best["head"]
        self.tail_virt = best["tail"]
        self.next_seq = best["next_seq"]
        self.epoch = best.get("epoch", 0)
        self._clean = bool(best.get("clean"))
        self.map = ExtentMap()
        for lba, length, offset in ckpt.unpack_rows("<QQQ", best_sections["map"]):
            self.map.update(lba, length, WC_TARGET, offset)
        self.records = [
            RecordRef(seq, virt, size)
            for seq, virt, size in ckpt.unpack_rows("<QQQ", best_sections["records"])
        ]
        self._replay_from_head()
        self._rebuild_map()
        self._clean = False
        # start a new recovery generation and persist it before accepting
        # writes: replay after a future crash must be able to tell this
        # chain's records apart from any stale pre-crash ones
        self.epoch = self._fresh_epoch()
        self.checkpoint()
        return best_sections

    def _rebuild_map(self) -> None:
        """Re-derive the map purely from decodable live records.

        The checkpointed map and record list may be stale: records
        released (and physically overwritten) after the checkpoint would
        otherwise linger as zombies whose map entries point into space a
        newer record now owns.  Re-applying only records that still decode
        with the right sequence number, in order, is always exact.
        """
        self.map = ExtentMap()
        verified: List[RecordRef] = []
        for ref in self.records:  # ascending seq order
            raw = self.image.read(self._phys(ref.virt), ref.size)
            record = decode_record(raw)
            if record is None or record.seq != ref.seq:
                continue  # zombie: destaged before the crash, space reused
            data_phys = self._phys(ref.virt) + record.header_size
            for index, (lba, length) in enumerate(record.extents):
                self.map.update(
                    lba, length, WC_TARGET, data_phys + record.data_offset_of(index)
                )
            verified.append(ref)
        self.records = verified
        self.tail_virt = verified[0].virt if verified else self.head_virt

    def _replay_from_head(self) -> None:
        """Roll forward from the checkpointed head position.

        A record continues the chain only if its sequence number is the
        expected next one AND its epoch matches the checkpoint's: stale
        same-sequence records from before an earlier crash must never be
        resurrected (clients may have observed their rollback).
        """
        expected_seq = self.next_seq
        virt = self.head_virt
        while True:
            record, virt = self._try_decode_at(virt, expected_seq)
            if record is None:
                break
            size = len(encode_record(record))
            phys = self._phys(virt)
            data_phys = phys + record.header_size
            for index, (lba, length) in enumerate(record.extents):
                self.map.update(
                    lba, length, WC_TARGET, data_phys + record.data_offset_of(index)
                )
            self.records.append(RecordRef(record.seq, virt, size))
            virt += size
            expected_seq += 1
            self.head_virt = virt
            self.next_seq = expected_seq

    def _try_decode_at(
        self, virt: int, expected_seq: int
    ) -> Tuple[Optional[CacheRecord], int]:
        """Decode the record at ``virt``; handles the wrap-skip rule.

        The epoch check replaces any reliance on the checkpointed tail
        (which may be arbitrarily stale): CRC + exact sequence + exact
        epoch uniquely identify the genuine next record of this chain.
        """
        for candidate in self._wrap_candidates(virt):
            phys = self._phys(candidate)
            room = self.log_size - (candidate % self.log_size)
            raw = self.image.read(phys, min(room, self.log_size))
            record = decode_record(raw)
            if (
                record is not None
                and record.seq == expected_seq
                and record.epoch == self.epoch
            ):
                return record, candidate
        return None, virt

    def _wrap_candidates(self, virt: int) -> List[int]:
        """Positions a record starting at ``virt`` may legally occupy."""
        room = self.log_size - (virt % self.log_size)
        if room < self.log_size:
            return [virt, virt + room]  # in place, or skipped to boundary
        return [virt]
