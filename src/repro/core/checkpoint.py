"""Compact binary checkpoint codec.

Both the write cache (to a fixed SSD region) and the block store (to a
numbered backend object) periodically persist their maps so that recovery
replays only the log suffix after the newest checkpoint (§3.3).  The codec
is a CRC-protected container of named sections, each either a packed
struct array or a small JSON blob for irregular metadata.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.errors import CorruptRecordError

_MAGIC = b"LSCK"
_VERSION = 1
_HDR = struct.Struct("<4sHHI I")  # magic, version, n_sections, crc, total_len
_SEC = struct.Struct("<HI")  # name length, payload length


def encode_sections(sections: Dict[str, bytes]) -> bytes:
    """Serialise named sections with a whole-blob CRC."""
    body = bytearray()
    for name, payload in sections.items():
        encoded = name.encode("utf-8")
        body += _SEC.pack(len(encoded), len(payload))
        body += encoded
        body += payload
    body = bytes(body)
    crc = zlib.crc32(body) & 0xFFFFFFFF
    header = _HDR.pack(_MAGIC, _VERSION, len(sections), crc, len(body))
    return header + body


def decode_sections(buf: bytes) -> Dict[str, bytes]:
    """Parse a checkpoint container; raises CorruptRecordError on damage."""
    if len(buf) < _HDR.size:
        raise CorruptRecordError("checkpoint shorter than header")
    magic, version, n_sections, crc, total_len = _HDR.unpack_from(buf, 0)
    if magic != _MAGIC:
        raise CorruptRecordError("bad checkpoint magic")
    if version != _VERSION:
        raise CorruptRecordError(f"unsupported checkpoint version {version}")
    body = bytes(buf[_HDR.size : _HDR.size + total_len])
    if len(body) != total_len:
        raise CorruptRecordError("checkpoint truncated")
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise CorruptRecordError("checkpoint CRC mismatch")
    sections: Dict[str, bytes] = {}
    pos = 0
    for _ in range(n_sections):
        name_len, payload_len = _SEC.unpack_from(body, pos)
        pos += _SEC.size
        name = body[pos : pos + name_len].decode("utf-8")
        pos += name_len
        sections[name] = body[pos : pos + payload_len]
        pos += payload_len
    return sections


def pack_rows(fmt: str, rows: Iterable[Sequence[int]]) -> bytes:
    """Pack an iterable of equal-shape integer tuples."""
    packer = struct.Struct(fmt)
    return b"".join(packer.pack(*row) for row in rows)


def unpack_rows(fmt: str, blob: bytes) -> List[Tuple[int, ...]]:
    packer = struct.Struct(fmt)
    if len(blob) % packer.size:
        raise CorruptRecordError("section length not a row multiple")
    return [packer.unpack_from(blob, off) for off in range(0, len(blob), packer.size)]


def pack_json(obj) -> bytes:
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")


def unpack_json(blob: bytes):
    return json.loads(blob.decode("utf-8"))
