"""Wire formats for the cache log and backend objects.

Two serialised structures, both self-describing and CRC-protected so the
in-memory maps can always be rebuilt from the logs themselves (§3.3):

* **cache log record** (Figure 2): a 4 KiB-aligned header carrying magic,
  sequence number, CRC, and the list of (vLBA, length) extents, followed by
  the 4 KiB-aligned data blocks.  The CRC covers header and data, so
  recovery stops at the first torn or stale record.

* **backend object** (Figure 4): header with volume UUID, kind
  (data / GC / checkpoint / superblock), sequence number, the extent table
  — each entry optionally naming the *source* object a GC copy came from —
  and the cache-log high-water mark (``last_record_seq``) used to rewind
  and replay the cache after a crash.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.config import BLOCK
from repro.core.errors import CorruptRecordError
from repro.core.sgio import Buffer

# The key grammar lives in repro.core.naming; re-exported here because
# the wire format and the naming scheme are versioned together and most
# stream users import both from this module.
from repro.core.naming import object_name, parse_object_name

MAGIC = b"LSVD"
VERSION = 1

#: object / record kinds
KIND_DATA = 1
KIND_GC = 2
KIND_CHECKPOINT = 3
KIND_SUPERBLOCK = 4

_REC_HDR = struct.Struct("<4sHHQQIII")  # magic ver kind seq epoch crc n_ext data_len
_REC_EXT = struct.Struct("<QI")  # lba, length
_OBJ_HDR = struct.Struct("<4sHH16sQQIII")  # magic ver kind uuid seq last_rec n_ext data_len crc
_OBJ_EXT = struct.Struct("<QIQ")  # lba, length, src_seq (0 = fresh data)


def _crc(*chunks: Buffer) -> int:
    value = 0
    for chunk in chunks:
        value = zlib.crc32(chunk, value)
    return value & 0xFFFFFFFF


def align_up(n: int, granularity: int = BLOCK) -> int:
    return (n + granularity - 1) // granularity * granularity


# ---------------------------------------------------------------------------
# Cache log records
# ---------------------------------------------------------------------------


@dataclass
class CacheRecord:
    """One write-cache log record: a batch of write extents plus data.

    ``epoch`` is the cache's recovery generation: it changes on every
    recovery, so log replay can distinguish records of the current chain
    from stale same-sequence records surviving from before an earlier
    crash (which must never be resurrected — they were already rolled
    back once).
    """

    seq: int
    extents: List[Tuple[int, int]]  # (vLBA, length-in-bytes)
    data: bytes  # concatenated extent payloads, block-padded per extent
    epoch: int = 0

    @property
    def header_size(self) -> int:
        raw = _REC_HDR.size + _REC_EXT.size * len(self.extents)
        return align_up(raw)

    @property
    def size(self) -> int:
        """Total on-SSD footprint (header + block-aligned data)."""
        return self.header_size + len(self.data)

    def data_offset_of(self, index: int) -> int:
        """Offset of extent ``index``'s payload within ``data``."""
        off = 0
        for lba, length in self.extents[:index]:
            off += align_up(length)
        return off


def pack_record(
    seq: int, writes: List[Tuple[int, Buffer]], epoch: int = 0
) -> CacheRecord:
    """Build a cache record from (vLBA, payload) writes.

    Each payload is padded to the 4 KiB block grid — the space expansion
    for small writes the paper accepts as the price of a pure log (§3.1).
    The padded data area is assembled as one pre-sized buffer: the zero
    fill comes free with the allocation and each payload is copied exactly
    once, with no per-write ``data + padding`` temporaries.
    """
    extents = [(lba, len(data)) for lba, data in writes]
    blob = bytearray(sum(align_up(n) for _lba, n in extents))
    pos = 0
    for _lba, data in writes:
        blob[pos : pos + len(data)] = data
        pos += align_up(len(data))
    return CacheRecord(seq=seq, extents=extents, data=bytes(blob), epoch=epoch)


def encode_record(record: CacheRecord) -> bytes:
    """Serialise a record into one contiguous, block-aligned buffer.

    Header, extent table, alignment padding, and data are laid out in a
    single pre-sized bytearray (padding is the allocation's zero fill);
    the CRC is computed over views of that buffer, so encoding performs
    one data copy total.
    """
    n_ext = len(record.extents)
    hdr_size = align_up(_REC_HDR.size + _REC_EXT.size * n_ext)
    out = bytearray(hdr_size + len(record.data))
    _REC_HDR.pack_into(
        out, 0,
        MAGIC, VERSION, KIND_DATA, record.seq, record.epoch, 0,
        n_ext, len(record.data),
    )
    pos = _REC_HDR.size
    for lba, length in record.extents:
        _REC_EXT.pack_into(out, pos, lba, length)
        pos += _REC_EXT.size
    out[hdr_size:] = record.data
    view = memoryview(out)
    crc = _crc(view[: _REC_HDR.size], view[_REC_HDR.size : pos], record.data)
    del view  # release the exported buffer before mutating sizes
    _REC_HDR.pack_into(
        out, 0,
        MAGIC, VERSION, KIND_DATA, record.seq, record.epoch, crc,
        n_ext, len(record.data),
    )
    return bytes(out)


def decode_record(buf: Buffer, offset: int = 0) -> Optional[CacheRecord]:
    """Decode the record at ``offset``; None if invalid/torn (end of log).

    ``buf`` may be any bytes-like object; validation (CRC, extent table)
    runs over memoryviews and only the record's payload is copied out.
    """
    if offset + _REC_HDR.size > len(buf):
        return None
    magic, ver, kind, seq, epoch, crc, n_ext, data_len = _REC_HDR.unpack_from(
        buf, offset
    )
    if magic != MAGIC or ver != VERSION or kind != KIND_DATA:
        return None
    ext_off = offset + _REC_HDR.size
    ext_end = ext_off + _REC_EXT.size * n_ext
    hdr_size = align_up(ext_end - offset)
    if offset + hdr_size + data_len > len(buf):
        return None
    extents = [
        _REC_EXT.unpack_from(buf, ext_off + i * _REC_EXT.size) for i in range(n_ext)
    ]
    view = memoryview(buf)
    data = bytes(view[offset + hdr_size : offset + hdr_size + data_len])
    hdr_no_crc = _REC_HDR.pack(MAGIC, ver, kind, seq, epoch, 0, n_ext, data_len)
    if _crc(hdr_no_crc, view[ext_off:ext_end], data) != crc:
        return None
    expected_data = sum(align_up(n) for _l, n in extents)
    if expected_data != data_len:
        return None
    return CacheRecord(seq=seq, extents=list(extents), data=data, epoch=epoch)


# ---------------------------------------------------------------------------
# Backend objects
# ---------------------------------------------------------------------------


@dataclass
class ObjectExtent:
    """One extent inside a backend object."""

    lba: int
    length: int
    src_seq: int = 0  # for GC objects: the victim the data was copied from


@dataclass
class ObjectHeader:
    """Parsed header of a backend object.

    ``temp`` is the object's temperature class (hot/warm/cold data
    separation); it rides in the high byte of the wire ``kind`` field so
    old objects decode as class 0 and readers that only care about the
    kind (recovery, ``lsvdtool``) stay oblivious-safe.
    """

    kind: int
    uuid: bytes
    seq: int
    last_record_seq: int
    extents: List[ObjectExtent] = field(default_factory=list)
    data_len: int = 0
    temp: int = 0

    @property
    def header_size(self) -> int:
        return _OBJ_HDR.size + _OBJ_EXT.size * len(self.extents)

    def data_offset_of(self, index: int) -> int:
        """Offset of extent ``index``'s payload within the object's data."""
        return self.header_size + sum(e.length for e in self.extents[:index])


def encode_object(header: ObjectHeader, data: Buffer) -> bytes:
    """Serialise header+data into the immutable object payload.

    ``data`` may be any bytes-like object (the batch seal hands in the
    gathered ``bytearray`` directly); the final ``join`` is the single
    copy that builds the immutable PUT payload.
    """
    ext_blob = b"".join(
        _OBJ_EXT.pack(e.lba, e.length, e.src_seq) for e in header.extents
    )
    wire_kind = header.kind | (header.temp << 8)
    base = _OBJ_HDR.pack(
        MAGIC,
        VERSION,
        wire_kind,
        header.uuid,
        header.seq,
        header.last_record_seq,
        len(header.extents),
        len(data),
        0,
    )
    crc = _crc(base, ext_blob, data)
    base = _OBJ_HDR.pack(
        MAGIC,
        VERSION,
        wire_kind,
        header.uuid,
        header.seq,
        header.last_record_seq,
        len(header.extents),
        len(data),
        crc,
    )
    return b"".join((base, ext_blob, data))


def decode_object_header(buf: Buffer) -> ObjectHeader:
    """Parse an object header (a prefix of the object is enough)."""
    if len(buf) < _OBJ_HDR.size:
        raise CorruptRecordError("object shorter than fixed header")
    magic, ver, kind, uuid, seq, last_rec, n_ext, data_len, _crc_ = _OBJ_HDR.unpack_from(
        buf, 0
    )
    if magic != MAGIC:
        raise CorruptRecordError("bad object magic")
    if ver != VERSION:
        raise CorruptRecordError(f"unsupported object version {ver}")
    need = _OBJ_HDR.size + _OBJ_EXT.size * n_ext
    if len(buf) < need:
        raise CorruptRecordError("object truncated inside extent table")
    extents = [
        ObjectExtent(*_OBJ_EXT.unpack_from(buf, _OBJ_HDR.size + i * _OBJ_EXT.size))
        for i in range(n_ext)
    ]
    return ObjectHeader(
        kind=kind & 0xFF,
        uuid=uuid,
        seq=seq,
        last_record_seq=last_rec,
        extents=extents,
        data_len=data_len,
        temp=kind >> 8,
    )


def decode_object(buf: Buffer) -> Tuple[ObjectHeader, bytes]:
    """Parse a whole object, verifying the CRC over header and data.

    The CRC runs over memoryviews of ``buf``; only the data area is
    copied out (the one materialisation the caller keeps).
    """
    header = decode_object_header(buf)
    hdr_size = header.header_size
    if len(buf) < hdr_size + header.data_len:
        raise CorruptRecordError("object truncated inside data")
    view = memoryview(buf)
    data = bytes(view[hdr_size : hdr_size + header.data_len])
    magic, ver, kind, uuid, seq, last_rec, n_ext, data_len, crc = _OBJ_HDR.unpack_from(
        buf, 0
    )
    base = _OBJ_HDR.pack(MAGIC, ver, kind, uuid, seq, last_rec, n_ext, data_len, 0)
    if _crc(base, view[_OBJ_HDR.size : hdr_size], data) != crc:
        raise CorruptRecordError(f"object seq={seq} CRC mismatch")
    return header, data


__all__ = [
    "CacheRecord",
    "KIND_CHECKPOINT",
    "KIND_DATA",
    "KIND_GC",
    "KIND_SUPERBLOCK",
    "ObjectExtent",
    "ObjectHeader",
    "align_up",
    "decode_object",
    "decode_object_header",
    "decode_record",
    "encode_object",
    "encode_record",
    "object_name",
    "pack_record",
    "parse_object_name",
]
