"""Asynchronous geographic replication by lazy object copy (§4.8).

Because the LSVD backend is an ordered stream of immutable objects, a
volume can be replicated by simply copying objects to a second object
store; the standard recovery rules then produce a consistent (possibly
slightly stale) disk from whatever consecutive prefix has arrived — even
when objects land out of order.

The replicator copies objects once they are older than ``min_age``
(60 seconds in the paper's experiment); objects the garbage collector has
deleted in the meantime are simply skipped, which is why the paper's run
wrote 103 GB to the virtual disk but shipped only 85 GB to the replica.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core import checkpoint as ckpt_codec
from repro.core.errors import CorruptRecordError
from repro.core.log import KIND_CHECKPOINT, decode_object, object_name
from repro.core.naming import stream_prefix, super_name
from repro.objstore.s3 import NoSuchKeyError, ObjectStore
from repro.obs import Registry, bind_metrics, metric_field


class ReplicationStats:
    """Registry-backed replication counters (``replication.*``)."""

    objects_copied = metric_field("replication.objects_copied")
    bytes_copied = metric_field("replication.bytes_copied")
    objects_skipped_deleted = metric_field("replication.objects_skipped_deleted")
    checkpoints_deferred = metric_field("replication.checkpoints_deferred")

    def __init__(self, obs: Optional[Registry] = None):
        self.obs = obs if obs is not None else Registry()
        bind_metrics(self)


class Replicator:
    """Lazy one-way replication of one volume's object stream."""

    def __init__(
        self,
        source: ObjectStore,
        target: ObjectStore,
        volume_name: str,
        min_age: float = 60.0,
        obs: Optional[Registry] = None,
    ):
        self.source = source
        self.target = target
        self.volume_name = volume_name
        self.min_age = min_age
        self._first_seen: Dict[str, float] = {}
        self._copied: Set[str] = set()
        self._skipped: Set[str] = set()  # GC-deleted before shipping
        self.obs = obs if obs is not None else Registry()
        self.stats = ReplicationStats(self.obs)

    def observe(self, now: float) -> List[str]:
        """Scan the source for new objects; returns newly seen names."""
        fresh = []
        for name in self.source.list(stream_prefix(self.volume_name)):
            if name not in self._first_seen:
                self._first_seen[name] = now
                fresh.append(name)
        return fresh

    def step(self, now: float) -> List[str]:
        """Copy every eligible object (old enough, not yet copied).

        One subtlety the paper's §4.8 footnote alludes to: a checkpoint
        must not become visible at the replica while an object its map
        references was GC-deleted at the source before ever shipping —
        the replica would be unmountable until a newer checkpoint
        arrived.  Such checkpoints are *deferred*; a newer checkpoint
        that no longer references the deleted object supersedes them.
        """
        self.observe(now)
        copied = []
        skipped_deleted: Set[str] = set()
        for name, seen in sorted(self._first_seen.items()):
            if name in self._copied or now - seen < self.min_age:
                continue
            try:
                data = self.source.get(name)
            except NoSuchKeyError:
                # deleted by GC before it could be shipped: skip forever
                self._copied.add(name)
                self._skipped.add(name)
                self.stats.objects_skipped_deleted += 1
                continue
            if self._is_unshippable_checkpoint(data):
                self.stats.checkpoints_deferred += 1
                continue  # retry next step; a newer ckpt will supersede
            self._ship(name, data)
            self._copied.add(name)
            self.stats.objects_copied += 1
            self.stats.bytes_copied += len(data)
            copied.append(name)
        # the superblock is tiny: refresh it on every step
        try:
            self._ship(
                super_name(self.volume_name),
                self.source.get(super_name(self.volume_name)),
            )
        except NoSuchKeyError:
            pass
        return copied

    def _ship(self, name: str, data: bytes) -> None:
        """PUT one object to the target, settling immediately.

        The replicator has no settlement ledger of its own: "copied"
        means *durable at the target*, so when the target is an
        unsettled fault-injection store the in-flight write must be
        completed here — otherwise ``_copied`` records objects the
        replica can still lose, and it silently never converges.
        """
        handle = self.target.put(name, data)
        if handle is not None:
            self.target.settle(handle)  # type: ignore[attr-defined]

    def _is_unshippable_checkpoint(self, data: bytes) -> bool:
        """True if this checkpoint references a stream object not yet at
        the target: shipping it now could leave the replica unmountable
        (the reference may have been GC-deleted at the source — possibly
        without the replicator ever observing it)."""
        try:
            header, payload = decode_object(data)
        except CorruptRecordError:
            return False  # not a stream object we understand; ship as-is
        if header.kind != KIND_CHECKPOINT:
            return False
        try:
            sections = ckpt_codec.decode_sections(payload)
            meta = ckpt_codec.unpack_json(sections["meta"])
            rows = ckpt_codec.unpack_rows("<QQQQ", sections["map"])
        except (CorruptRecordError, KeyError):
            return False
        base_last = self._base_last_seq()
        referenced = {row[2] for row in rows if row[2] > base_last}
        for seq in referenced:
            if not self.target.exists(object_name(self.volume_name, seq)):
                return True
        return False

    def _base_last_seq(self) -> int:
        """Highest sequence number owned by a clone base (those objects
        live under other prefixes and are replicated separately)."""
        try:
            blob = self.source.get(super_name(self.volume_name))
            sections = ckpt_codec.decode_sections(blob)
            meta = ckpt_codec.unpack_json(sections["super"])
        except (NoSuchKeyError, CorruptRecordError, KeyError):
            return 0
        chain = meta.get("base_chain", [])
        return max((last for _name, last in chain), default=0)

    def drain(self, now: float) -> List[str]:
        """Copy everything currently eligible regardless of age."""
        saved, self.min_age = self.min_age, 0.0
        try:
            return self.step(now)
        finally:
            self.min_age = saved
