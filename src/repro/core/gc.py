"""Garbage collection for the block store (§3.5, §4.6).

Cleaning is triggered when overall utilisation (live bytes / total data
bytes across cleanable objects) drops below the low watermark (70 % in the
paper) and runs until it climbs back above the high watermark (75 %).
Victim ordering is delegated to :func:`repro.core.placement.select_victims`
— cost-benefit ``(1 - u) * age / (1 + u)`` by default (Rosenblum &
Ousterhout's cleaning score, which leaves stable cold objects alone until
cleaning them is cheap), or pure least-utilised greedy when the config
selects the legacy policy.  Victims' remaining live extents — found by
re-checking only the ranges listed in the object's creation-time header
against the map — are routed back through the placement classifier
(survivors demonstrably outlived their object, so they cool toward the
cold class) and copied into per-class ``KIND_GC`` objects, then the
victims are deleted, or the delete is *deferred* when a snapshot still
references them (§3.6).

Two refinements the paper evaluates are implemented here:

* **cache-assisted cleaning** — live data still resident in the local
  write cache is copied from SSD instead of being fetched from the
  backend (§3.5 / §6.3);
* **hole plugging** — when two live pieces are separated by a small
  mapped gap (<= ``defrag_hole_bytes``), the gap is copied too, merging
  the pieces into one extent and shrinking the map (§4.6 cut w01's map
  size by >2x for ~zero extra write amplification).

The collector is *phased* so the timed runtime can charge I/O latencies
between phases and so rounds can be pipelined: :meth:`select` picks the
victims and schedules their reads (cheap, no data movement), so the next
round's selection can run while the current round's relocation writes are
still in flight; :meth:`materialize` revalidates a selection against the
live map and performs the reads; :meth:`execute` writes relocation
objects and updates the map; and the volume performs the deferred victim
deletion once the covering checkpoint has settled.  :meth:`plan` composes
select + materialize for the unpipelined callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.batch import seal_gc_batch
from repro.core.block_store import BlockStore
from repro.core.config import LSVDConfig
from repro.core.placement import plan_relocation, select_victims
from repro.obs import NULL_SPAN, Registry, bind_metrics, metric_field


@dataclass
class GCSelection:
    """Phase-one output: victims chosen and the reads scheduled for them.

    Holds no data, so it is cheap to produce ahead of time; the read
    schedule reflects the map *at selection time* and is re-derived when
    the selection is materialised (see :meth:`GarbageCollector.materialize`).
    """

    victims: List[int]
    # (vLBA, length, src_seq) in ascending vLBA order, as of selection
    ranges: List[Tuple[int, int, int]]

    @property
    def scheduled_bytes(self) -> int:
        return sum(length for _l, length, _s in self.ranges)


@dataclass
class GCPlan:
    """One cleaning round: victims and the live data to relocate."""

    victims: List[int]
    # (vLBA, length, src_seq, data) in ascending vLBA order
    pieces: List[Tuple[int, int, int, bytes]]
    bytes_read_backend: int = 0
    bytes_read_cache: int = 0
    holes_plugged: int = 0

    @property
    def live_bytes(self) -> int:
        return sum(length for _l, length, _s, _d in self.pieces)


class GCStats:
    """Cumulative collector statistics, backed by a ``gc.*`` registry group."""

    rounds = metric_field("gc.rounds")
    victims_cleaned = metric_field("gc.victims_cleaned")
    bytes_relocated = metric_field("gc.bytes_relocated")
    bytes_read_backend = metric_field("gc.bytes_read_backend")
    bytes_read_cache = metric_field("gc.bytes_read_cache")
    holes_plugged = metric_field("gc.holes_plugged")
    deletes_deferred = metric_field("gc.deletes_deferred")
    preplanned_rounds = metric_field("gc.preplanned_rounds")
    # relocation bytes split by the class the survivor was *re*-assigned
    # to (classes as defined by core.placement: hot/warm/cold)
    class_hot_relocated = metric_field("gc.class_hot.bytes_relocated")
    class_warm_relocated = metric_field("gc.class_warm.bytes_relocated")
    class_cold_relocated = metric_field("gc.class_cold.bytes_relocated")

    _CLASS_RELOC_ATTRS = (
        "class_hot_relocated",
        "class_warm_relocated",
        "class_cold_relocated",
    )

    def __init__(self, obs: Optional[Registry] = None):
        self.obs = obs if obs is not None else Registry()
        bind_metrics(self)

    def add_class_relocated(self, temp: int, n: int) -> None:
        attr = self._CLASS_RELOC_ATTRS[temp]
        setattr(self, attr, getattr(self, attr) + n)


class GarbageCollector:
    """Greedy cleaner bound to one :class:`BlockStore`."""

    def __init__(
        self,
        store: BlockStore,
        config: Optional[LSVDConfig] = None,
        cache_reader: Optional[Callable[[int, int], Optional[bytes]]] = None,
    ):
        self.store = store
        self.config = config or store.config
        #: optional hook: cache_reader(lba, length) -> bytes | None, used to
        #: satisfy GC reads from the local cache instead of the backend.
        self.cache_reader = cache_reader
        self.obs: Registry = getattr(store, "obs", None) or Registry()
        self.stats = GCStats(self.obs)

    # ------------------------------------------------------------------
    def needs_gc(self) -> bool:
        live, total = self.store.occupancy()
        if total == 0:
            return False
        return live / total < self.config.gc_low_watermark

    def reached_target(self) -> bool:
        live, total = self.store.occupancy()
        if total == 0:
            return True
        return live / total >= self.config.gc_high_watermark

    # ------------------------------------------------------------------
    def select(
        self, exclude: Sequence[int] = (), span=NULL_SPAN
    ) -> Optional[GCSelection]:
        """Phase one: pick victims (greedy) and schedule their reads.

        The expensive part of planning — the candidate utilisation
        scan/sort and the per-victim live-extent walk — with no data
        movement, so the *next* round can be selected while the current
        round's relocation writes are still in flight (pipelined GC).
        ``exclude`` masks objects already being cleaned by that round.
        """
        stage = span.begin("gc_select")
        skip = frozenset(exclude)
        candidates = self.store.omap.cleaning_candidates(
            max_seq=self.store.next_seq
        )
        victims = select_victims(
            [
                (c.seq, c.live_bytes, c.data_bytes)
                for c in candidates
                if c.seq not in skip
            ],
            policy=self.config.gc_policy,
            window=self.config.gc_window,
            high_watermark=self.config.gc_high_watermark,
        )
        if not victims:
            stage.end(victims=0)
            return None
        ranges: List[Tuple[int, int, int]] = []  # (lba, length, src_seq)
        for seq in victims:
            self._ensure_extents(seq)
            for lba, length, _off in self.store.omap.live_extents_of(seq):
                ranges.append((lba, length, seq))
        ranges.sort()
        stage.end(victims=len(victims))
        return GCSelection(victims=victims, ranges=ranges)

    def materialize(self, selection: GCSelection, span=NULL_SPAN) -> Optional[GCPlan]:
        """Phase two: turn a (possibly stale) selection into a read plan.

        A pre-planned selection may be a whole relocation round old, so
        everything is revalidated against the current map: victims that
        vanished are dropped and live extents are *re-derived* — blindly
        relocating selection-time ranges could resurrect data that was
        overwritten in between.
        """
        victims = [s for s in selection.victims if s in self.store.omap.objects]
        if not victims:
            return None
        stage = span.begin("gc_materialize")
        plan = GCPlan(victims=victims, pieces=[])
        raw: List[Tuple[int, int, int]] = []
        for seq in victims:
            self._ensure_extents(seq)
            for lba, length, _off in self.store.omap.live_extents_of(seq):
                raw.append((lba, length, seq))
        raw.sort()
        raw = self._plug_holes(raw, plan)
        for lba, length, src_seq in raw:
            data = self._read_live(lba, length, src_seq, plan)
            plan.pieces.append((lba, length, src_seq, data))
        stage.end(bytes=plan.live_bytes)
        return plan

    def plan(self, span=NULL_SPAN) -> Optional[GCPlan]:
        """Select victims and gather their live data (both phases)."""
        selection = self.select(span=span)
        if selection is None:
            return None
        return self.materialize(selection, span=span)

    def _ensure_extents(self, seq: int) -> None:
        info = self.store.omap.objects[seq]
        if not info.extents:
            # header extents were not retained across a restart; the
            # paper's optimisation — fetch just the header (§3.5)
            info.extents = self.store.header_of(seq).extents

    def _plug_holes(
        self, pieces: List[Tuple[int, int, int]], plan: GCPlan
    ) -> List[Tuple[int, int, int]]:
        """Insert small mapped gaps between live pieces (§4.6 defrag)."""
        limit = self.config.defrag_hole_bytes
        if limit <= 0 or len(pieces) < 2:
            return pieces
        out: List[Tuple[int, int, int]] = [pieces[0]]
        for lba, length, src in pieces[1:]:
            prev_lba, prev_len, _prev_src = out[-1]
            gap_start = prev_lba + prev_len
            gap = lba - gap_start
            if 0 < gap <= limit:
                for ext in self.store.omap.lookup(gap_start, gap):
                    out.append((ext.lba, ext.length, ext.target))
                    plan.holes_plugged += 1
            out.append((lba, length, src))
        out.sort()
        return out

    def _read_live(self, lba: int, length: int, src_seq: int, plan: GCPlan) -> bytes:
        """Fetch live data, preferring the local cache (§3.5).

        Per-piece accounting goes on the *plan*; the cumulative stats are
        bumped once per round in :meth:`execute` (hot-path hygiene).
        """
        if self.cache_reader is not None:
            cached = self.cache_reader(lba, length)
            if cached is not None:
                plan.bytes_read_cache += length
                return cached
        # locate within the source object(s) and range-read; a plugged
        # hole may resolve to a different object than src_seq.
        pieces = []
        for ext in self.store.omap.lookup(lba, length):
            pieces.append(self.store.fetch(ext.target, ext.offset, ext.length))
        plan.bytes_read_backend += length
        if len(pieces) == 1:
            return pieces[0]
        return b"".join(pieces)

    # ------------------------------------------------------------------
    def execute(self, plan: GCPlan, span=NULL_SPAN):
        """Write relocation object(s) and update the map.

        Returns a list of (sealed_batch, put_result) pairs; the caller
        must arrange victim deletion after the next settled checkpoint
        (the volume does this) — GC never deletes objects newer than the
        most recent checkpoint (§3.3).
        """
        stage = span.begin("gc_relocate", victims=len(plan.victims))
        results = []
        # survivors re-enter the classifier: each piece is split into
        # per-class sub-pieces (cooling one step) and chunked into one
        # relocation object per class stream
        for temp, chunk in plan_relocation(
            plan.pieces, self.store.placement, self.config.batch_size
        ):
            results.append(self._commit_chunk(chunk, temp, span=stage))
        stage.end(bytes=plan.live_bytes)
        self.stats.rounds += 1
        self.stats.victims_cleaned += len(plan.victims)
        self.stats.bytes_relocated += plan.live_bytes
        self.stats.holes_plugged += plan.holes_plugged
        self.stats.bytes_read_backend += plan.bytes_read_backend
        self.stats.bytes_read_cache += plan.bytes_read_cache
        self.obs.trace.emit(
            "gc_round",
            victims=len(plan.victims),
            bytes_relocated=plan.live_bytes,
            holes_plugged=plan.holes_plugged,
            bytes_read_backend=plan.bytes_read_backend,
            bytes_read_cache=plan.bytes_read_cache,
        )
        return results

    def _commit_chunk(
        self, pieces: List[Tuple[int, int, int, bytes]], temp: int = 0, span=NULL_SPAN
    ):
        sealed = seal_gc_batch(
            self.store._take_seq(),
            self.store.uuid,
            pieces,
            last_record_seq=0,
            temp=temp,
        )
        result = self.store.commit(sealed, span=span)
        self.stats.add_class_relocated(temp, sealed.data_len)
        return sealed, result

    # ------------------------------------------------------------------
    def delete_victims(self, victims: List[int]) -> Tuple[List[int], List[int]]:
        """Delete victims, deferring any referenced by snapshots (§3.6).

        Must only be called once a checkpoint newer than the victims is
        durable.  Returns (deleted, deferred) sequence lists.
        """
        newest = self.store.newest_seq
        deleted, deferred = [], []
        for seq in victims:
            if self.store.snapshot_blocks_delete(seq, newest):
                self.store.deferred_deletes[seq] = newest
                deferred.append(seq)
                self.stats.deletes_deferred += 1
            else:
                self.store.delete_object(seq)
                deleted.append(seq)
            # either way the object no longer participates in accounting
            self.store.omap.drop_object(seq)
        return deleted, deferred
