"""Block de-duplication for disk images (§6.3 "Cache Sharing").

The paper suggests pre-processing a disk image so that duplicate blocks —
OS images are full of them — map multiple LBA extents to the same backend
object data, "similar to VMAR's de-duplication translation maps but
simpler in implementation".  LSVD's extent map makes this nearly free:
the map is many-to-one already, so de-duplication is purely a matter of
pointing extents at existing data instead of storing it again.

:func:`dedupe_volume` rewrites a (quiesced) volume's content into a fresh
de-duplicated object stream; duplicate blocks are stored once.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import BLOCK
from repro.core.volume import LSVDVolume


@dataclass
class DedupReport:
    """Outcome of a de-duplication pass."""

    blocks_scanned: int = 0
    blocks_zero: int = 0
    blocks_duplicate: int = 0
    blocks_stored: int = 0

    @property
    def logical_bytes(self) -> int:
        return self.blocks_scanned * BLOCK

    @property
    def stored_bytes(self) -> int:
        return self.blocks_stored * BLOCK

    @property
    def savings_ratio(self) -> float:
        if self.blocks_scanned == 0:
            return 0.0
        return 1.0 - self.blocks_stored / self.blocks_scanned


def _fingerprint(block: bytes) -> bytes:
    return hashlib.blake2b(block, digest_size=16).digest()


def dedupe_volume(
    source: LSVDVolume,
    target: LSVDVolume,
    report: Optional[DedupReport] = None,
) -> DedupReport:
    """Copy ``source``'s content into ``target``, de-duplicating blocks.

    The target's extent map ends up pointing every duplicate LBA at the
    first stored copy: reads are unaffected (the map is many-to-one), the
    backend stores each distinct block once, and — combined with a
    :class:`~repro.core.shared_cache.SharedObjectCache` — each distinct
    block occupies host cache once no matter how many LBAs alias it.

    Both volumes must be quiesced; the target must start empty.
    """
    report = report or DedupReport()
    first_lba: Dict[bytes, int] = {}  # fingerprint -> canonical LBA
    duplicates: Dict[int, int] = {}  # duplicate LBA -> canonical LBA
    zero = b"\x00" * BLOCK

    # pass 1: store each distinct block once (normal batched writes)
    for lba in range(0, source.size, BLOCK):
        block = source.read(lba, BLOCK)
        report.blocks_scanned += 1
        if block == zero:
            report.blocks_zero += 1
            continue  # unmapped space reads as zero for free
        fp = _fingerprint(block)
        canonical = first_lba.get(fp)
        if canonical is not None:
            duplicates[lba] = canonical
            report.blocks_duplicate += 1
        else:
            first_lba[fp] = lba
            target.write(lba, block)
            report.blocks_stored += 1
    target.drain()

    # pass 2: alias every duplicate LBA to its canonical copy's location
    # (the extent map is many-to-one, so this is pure metadata)
    for lba, canonical in duplicates.items():
        [ext] = target.bs.lookup(canonical, BLOCK)
        target.bs.omap.apply_extent(ext.target, lba, BLOCK, ext.offset)
    if duplicates:
        # persist the aliased map so recovery sees it
        target.bs.write_checkpoint()
        target.bs.retire_old_checkpoints()
    return report
