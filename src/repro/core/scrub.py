"""Background scrubbing: verify object CRCs against the live map.

Object stores corrupt and lose data rarely but not never; a production
virtual disk periodically re-reads its objects and verifies checksums.
The scrubber walks the object stream incrementally (a few objects per
step), decodes each object fully (header + data CRC), and cross-checks
that every extent the in-memory map attributes to the object actually
falls inside the object's data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.block_store import BlockStore
from repro.core.errors import CorruptRecordError
from repro.core.log import decode_object
from repro.objstore.s3 import NoSuchKeyError
from repro.obs import Registry, bind_metrics, metric_field


@dataclass
class ScrubFinding:
    seq: int
    problem: str


class ScrubStats:
    """Registry-backed scrub counters (``scrub.*``); findings stay a list."""

    objects_checked = metric_field("scrub.objects_checked")
    bytes_verified = metric_field("scrub.bytes_verified")
    passes_completed = metric_field("scrub.passes_completed")

    def __init__(self, obs: Optional[Registry] = None):
        self.obs = obs if obs is not None else Registry()
        bind_metrics(self)
        self.findings: List[ScrubFinding] = []


class Scrubber:
    """Incremental CRC scrubber for one block store."""

    def __init__(self, store: BlockStore):
        self.store = store
        self._cursor = 0
        self.stats = ScrubStats(getattr(store, "obs", None))

    def step(self, max_objects: int = 4) -> List[ScrubFinding]:
        """Verify up to ``max_objects``; wraps around at the end."""
        seqs = sorted(
            seq
            for seq, info in self.store.omap.objects.items()
            if not info.in_base
        )
        if not seqs:
            return []
        window = [s for s in seqs if s > self._cursor][:max_objects]
        if not window:
            self._cursor = 0
            self.stats.passes_completed += 1
            window = seqs[:max_objects]
        findings = []
        for seq in window:
            findings.extend(self._check_object(seq))
            self._cursor = seq
        self.stats.findings.extend(findings)
        return findings

    def full_pass(self) -> List[ScrubFinding]:
        """Scrub every tracked object once."""
        findings = []
        for seq in sorted(self.store.omap.objects):
            if not self.store.omap.objects[seq].in_base:
                findings.extend(self._check_object(seq))
        self.stats.passes_completed += 1
        self.stats.findings.extend(findings)
        return findings

    def _check_object(self, seq: int) -> List[ScrubFinding]:
        findings: List[ScrubFinding] = []
        name = self.store.name_for_seq(seq)
        try:
            blob = self.store.store.get(name)
        except NoSuchKeyError:
            return [ScrubFinding(seq, "object missing from the store")]
        try:
            header, data = decode_object(blob)
        except CorruptRecordError as exc:
            return [ScrubFinding(seq, f"CRC/decode failure: {exc}")]
        if header.seq != seq:
            findings.append(
                ScrubFinding(seq, f"header claims seq {header.seq}")
            )
        info = self.store.omap.objects.get(seq)
        if info is not None and info.live_bytes > header.data_len:
            findings.append(
                ScrubFinding(
                    seq,
                    f"map attributes {info.live_bytes} live bytes to a "
                    f"{header.data_len}-byte object",
                )
            )
        self.stats.objects_checked += 1
        self.stats.bytes_verified += len(blob)
        return findings
