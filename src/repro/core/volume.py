"""The LSVD virtual-disk facade (Figure 1).

:class:`LSVDVolume` glues together the log-structured write cache, the
read cache, the log-structured block store, and the garbage collector, and
implements the three block-device operations (§3.2):

* **write** — logged to the cache (completing the I/O), then copied into
  the current batch; a full batch is sealed and PUT as one object.
* **commit barrier** — a single cache-device flush.
* **read** — write cache, then read cache, then a backend range-read with
  temporal prefetch; unmapped blocks read as zeros.

Settlement ledger
-----------------
With a real object store, PUTs complete asynchronously and out of order.
The volume tracks every outstanding PUT and enforces the orderings that
make recovery sound:

1. a cache record may be *released* (freed from the write log) only once
   every batch up to and including the one covering it has settled —
   otherwise a crash could lose an acknowledged write that is in neither
   the cache nor the backend;
2. a checkpoint is written only when no other PUT is outstanding, so a
   visible checkpoint implies its entire prefix is visible;
3. GC victims are deleted only after a checkpoint that no longer
   references them has settled (§3.3's "GC only deletes objects older
   than the most recent checkpoint").

With the plain in-memory store every PUT settles immediately and the
ledger degenerates to synchronous execution; the
:class:`~repro.objstore.s3.UnsettledObjectStore` and the timed runtime
exercise the asynchronous paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.batch import SealedBatch
from repro.core.block_store import BlockStore
from repro.core.config import SECTOR, LSVDConfig
from repro.core.errors import CacheFullError, LSVDError
from repro.core.gc import GarbageCollector, GCSelection
from repro.core.read_cache import ReadCache
from repro.core.write_cache import WriteCache
from repro.devices.image import DiskImage
from repro.obs import NULL_SPAN, Registry


@dataclass
class _BatchEntry:
    """One committed batch awaiting settlement."""

    seq: int
    last_record_seq: int
    settled: bool = False


@dataclass
class _GCRound:
    """An in-flight garbage-collection round."""

    victims: List[int]
    pending_puts: int = 0
    stage: str = "relocating"  # relocating -> await_ckpt -> done
    ckpt_seq: Optional[int] = None
    #: whether the *next* round's victim selection was already attempted
    #: while this round's relocation writes were in flight (pipelined GC)
    preplanned: bool = False


class LSVDVolume:
    """A log-structured virtual disk."""

    def __init__(
        self,
        block_store: BlockStore,
        write_cache: WriteCache,
        read_cache: ReadCache,
        config: Optional[LSVDConfig] = None,
        read_only: bool = False,
    ):
        self.bs = block_store
        self.wc = write_cache
        self.rc = read_cache
        self.config = config or block_store.config
        self.read_only = read_only
        #: one registry for the whole stack; the block store owns it and
        #: the caches/collector were constructed against the same object
        self.obs: Registry = block_store.obs
        self.gc = GarbageCollector(
            block_store, self.config, cache_reader=self._gc_cache_read
        )
        self.gc_enabled = True
        #: per-tenant admission hook (repro.fleet wires a CoreAdmission
        #: here on attach); None = no QoS, the single-volume default
        self.qos = None
        self._m_writes = self.obs.counter("volume.writes")
        self._m_reads = self.obs.counter("volume.reads")
        self._m_bytes_written = self.obs.counter("volume.bytes_written")
        self._m_bytes_read = self.obs.counter("volume.bytes_read")
        self._m_flushes = self.obs.counter("volume.flushes")
        self._m_batch_commits = self.obs.counter("volume.batch_commits")
        self._m_checkpoints = self.obs.counter("volume.checkpoints")
        # settlement ledger
        self._pending: Dict[object, Tuple[str, object]] = {}
        self._batches: List[_BatchEntry] = []
        self._gc_round: Optional[_GCRound] = None
        self._next_selection: Optional[GCSelection] = None
        self._ckpt_requested = False

    # ------------------------------------------------------------------
    # factory methods
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        store,
        name: str,
        size: int,
        cache_image: DiskImage,
        config: Optional[LSVDConfig] = None,
        obs: Optional[Registry] = None,
    ) -> "LSVDVolume":
        """Create a brand-new virtual disk backed by ``store``."""
        config = config or LSVDConfig()
        obs = obs if obs is not None else Registry()
        bs = BlockStore.create(store, name, size, config, obs=obs)
        wc, rc = cls._partition_cache(cache_image, config, obs)
        wc.format()
        return cls(bs, wc, rc, config)

    @classmethod
    def open(
        cls,
        store,
        name: str,
        cache_image: DiskImage,
        config: Optional[LSVDConfig] = None,
        cache_lost: bool = False,
        obs: Optional[Registry] = None,
    ) -> "LSVDVolume":
        """Mount an existing disk, running full crash recovery (§3.3).

        With ``cache_lost`` (or an unformattable cache) the volume comes
        back as the backend's consistent prefix — the worst-case
        prefix-consistency guarantee.  Otherwise the cache log is
        recovered, rewound to the backend's high-water mark, and every
        later record is replayed so the backend catches up with all
        locally persisted writes.
        """
        config = config or LSVDConfig()
        obs = obs if obs is not None else Registry()
        bs, state = BlockStore.open(store, name, config, obs=obs)
        wc, rc = cls._partition_cache(cache_image, config, obs)
        vol = cls(bs, wc, rc, config)
        if cache_lost:
            wc.format()
            wc.resume_after(state.last_record_seq)
            wc.checkpoint()
            obs.trace.emit("recovery_complete", replayed=0, cache_lost=True)
            return vol
        wc.recover()
        # The cache may have rolled back records that were already
        # destaged: a fresh write must never reuse one of their sequence
        # numbers, or the backend's high-water mark would release it as
        # "already destaged" and lose it.  Jump past the backend's mark.
        if wc.next_seq <= state.last_record_seq:
            wc.resume_after(state.last_record_seq)
            wc.checkpoint()
        if wc._clean:
            rc.load_map()
        # rewind & replay: push cache records the backend has not seen
        replayed = 0
        span = obs.spans.root("recover")
        for record, _ref in wc.records_after(state.last_record_seq):
            obs.trace.emit(
                "recovery_replay",
                record_seq=record.seq,
                extents=len(record.extents),
            )
            replayed += 1
            for index, (lba, length) in enumerate(record.extents):
                data = wc.record_data(record, index)
                for sealed in bs.add_write(lba, data, record.seq, span=span):
                    vol._commit_data(sealed, span=span)
        span.end(replayed=replayed)
        # anything at or below the backend high-water mark is already safe
        wc.release_through(state.last_record_seq)
        obs.trace.emit("recovery_complete", replayed=replayed, cache_lost=False)
        return vol

    @classmethod
    def clone(
        cls,
        store,
        base_name: str,
        clone_name: str,
        cache_image: DiskImage,
        config: Optional[LSVDConfig] = None,
        at_snapshot: Optional[str] = None,
        obs: Optional[Registry] = None,
    ) -> "LSVDVolume":
        """Create a copy-on-write clone of ``base_name`` (§3.6)."""
        config = config or LSVDConfig()
        obs = obs if obs is not None else Registry()
        bs = BlockStore.clone_from(
            store, base_name, clone_name, config, at_snapshot=at_snapshot, obs=obs
        )
        wc, rc = cls._partition_cache(cache_image, config, obs)
        wc.format()
        return cls(bs, wc, rc, config)

    @classmethod
    def open_snapshot(
        cls,
        store,
        name: str,
        snapshot: str,
        cache_image: DiskImage,
        config: Optional[LSVDConfig] = None,
        obs: Optional[Registry] = None,
    ) -> "LSVDVolume":
        """Mount a snapshot read-only (§3.6)."""
        config = config or LSVDConfig()
        obs = obs if obs is not None else Registry()
        meta = BlockStore.read_super(store, name)
        snaps = meta.get("snapshots", {})
        if snapshot not in snaps:
            raise LSVDError(f"volume {name!r} has no snapshot {snapshot!r}")
        bs, _state = BlockStore.open(
            store, name, config, upto=snaps[snapshot], read_only=True, obs=obs
        )
        wc, rc = cls._partition_cache(cache_image, config, obs)
        wc.format()
        vol = cls(bs, wc, rc, config, read_only=True)
        vol.gc_enabled = False
        return vol

    @staticmethod
    def _partition_cache(
        image: DiskImage, config: LSVDConfig, obs: Optional[Registry] = None
    ):
        wc_size = int(image.size * config.write_cache_fraction) // 4096 * 4096
        wc_slot = max(64 * 1024, min(1 << 20, wc_size // 8)) // 4096 * 4096
        rc_size = image.size - wc_size
        rc_slot = max(64 * 1024, min(1 << 20, rc_size // 8)) // 4096 * 4096
        wc = WriteCache(image, 0, wc_size, ckpt_slot_size=wc_slot, obs=obs)
        rc = ReadCache(image, wc_size, rc_size, map_slot_size=rc_slot, obs=obs)
        return wc, rc

    # ------------------------------------------------------------------
    # block-device operations
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.bs.size

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at byte ``offset``; durable after :meth:`flush`."""
        self._check_io(offset, len(data))
        if self.read_only:
            raise LSVDError("volume is read-only")
        if not data:
            return
        self._m_writes.inc()
        self._m_bytes_written.inc(len(data))
        span = self.obs.spans.root("write", bytes=len(data))
        if self.qos is not None:
            self.qos.admit("write", len(data), span=span)
        try:
            record = self.wc.append([(offset, data)], span=span)
        except CacheFullError:
            self._make_room(len(data), span=span)
            record = self.wc.append([(offset, data)], span=span)
        self.rc.invalidate(offset, len(data))
        for sealed in self.bs.add_write(offset, data, record.seq, span=span):
            self._commit_data(sealed, span=span)
        span.end()

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` (unwritten space is zeros)."""
        self._check_io(offset, length)
        if length == 0:
            return b""
        self._m_reads.inc()
        self._m_bytes_read.inc(length)
        span = self.obs.spans.root("read", bytes=length)
        if self.qos is not None:
            self.qos.admit("read", length, span=span)
        out = bytearray(length)
        # 1: write cache (always the newest data)
        covered = _Coverage(offset, length)
        for piece_start, piece_len, data in self.wc.read(offset, length, span=span):
            out[piece_start - offset : piece_start - offset + piece_len] = data
            covered.fill(piece_start, piece_len)
        # 2: read cache
        for gap_lba, gap_len in covered.gaps():
            for piece_start, piece_len, data in self.rc.read(
                gap_lba, gap_len, span=span
            ):
                out[piece_start - offset : piece_start - offset + piece_len] = data
                covered.fill(piece_start, piece_len)
        # 3: backend (with temporal prefetch into the read cache)
        for gap_lba, gap_len in covered.gaps():
            for piece in self.bs.lookup(gap_lba, gap_len):
                stage = span.begin("backend_fetch", seq=piece.target)
                fetched = self.bs.fetch_with_prefetch(
                    piece.target, piece.offset, piece.length,
                    request_lba=piece.lba,
                )
                stage.end(bytes=sum(len(d) for _v, d in fetched))
                # one stage for the whole prefetch insert burst: a span
                # per inserted range (dozens under temporal prefetch)
                # would out-cost the stages being measured
                insert_stage = span.begin("rc_insert", ranges=len(fetched))
                for vlba, data in fetched:
                    self._insert_read_cache(vlba, data)
                    lo = max(vlba, gap_lba)
                    hi = min(vlba + len(data), gap_lba + gap_len)
                    if lo < hi:
                        out[lo - offset : hi - offset] = data[
                            lo - vlba : hi - vlba
                        ]
                insert_stage.end()
                covered.fill(piece.lba, piece.length)
        span.end()
        return bytes(out)

    def writev(self, writes: List[Tuple[int, bytes]]) -> None:
        """Vectored write: several extents in one cache log record.

        All extents share one record (one header), so a scattered burst
        costs a single sequential SSD write — the "series of data blocks"
        record format of Figure 2.
        """
        if self.read_only:
            raise LSVDError("volume is read-only")
        writes = [(off, data) for off, data in writes if data]
        for offset, data in writes:
            self._check_io(offset, len(data))
        if not writes:
            return
        total = sum(len(d) for _o, d in writes)
        self._m_writes.inc()
        self._m_bytes_written.inc(total)
        span = self.obs.spans.root("writev", bytes=total, extents=len(writes))
        if self.qos is not None:
            self.qos.admit("write", total, span=span)
        try:
            record = self.wc.append(writes, span=span)
        except CacheFullError:
            self._make_room(total, span=span)
            record = self.wc.append(writes, span=span)
        for offset, data in writes:
            self.rc.invalidate(offset, len(data))
            for sealed in self.bs.add_write(offset, data, record.seq, span=span):
                self._commit_data(sealed, span=span)
        span.end()

    def trim(self, offset: int, length: int) -> None:
        """Discard a range: subsequent reads return zeros (TRIM/unmap).

        Drops cache mappings and live-byte accounting immediately; the
        discarded backend data becomes garbage for the collector.  Note
        the trim itself is a volatile metadata operation here (as on many
        real devices): it is not persisted in the logs, so a crash may
        resurrect discarded data — callers needing durable discard should
        overwrite with zeros instead.
        """
        self._check_io(offset, length)
        if self.read_only:
            raise LSVDError("volume is read-only")
        self.wc.map.remove(offset, length)
        self.rc.invalidate(offset, length)
        self.bs.omap.trim(offset, length)

    def flush(self) -> None:
        """Commit barrier: one flush of the cache SSD (§3.2)."""
        self._m_flushes.inc()
        span = self.obs.spans.root("flush")
        self.wc.barrier(span=span)
        span.end()

    # ------------------------------------------------------------------
    # background work (destage / GC / checkpoints)
    # ------------------------------------------------------------------
    def poll(self) -> None:
        """Advance background machinery (GC, due checkpoints)."""
        self._maybe_checkpoint()
        self._advance_gc()

    def drain(self) -> None:
        """Push all buffered data to the backend and finish GC.

        Only meaningful with an immediately-settling store; the timed
        runtime drives the same steps through simulated time.
        """
        span = self.obs.spans.root("drain")
        for sealed in self.bs.seal_all(reason="drain", span=span):
            self._commit_data(sealed, span=span)
        span.end()
        self.poll()
        # run GC to its target utilisation
        guard = 0
        while (
            self.gc_enabled
            and self._gc_round is None
            and self.gc.needs_gc()
            and not self.gc.reached_target()
        ):
            before = self.bs.stats.objects_deleted
            self._start_gc_round()
            self._advance_gc()
            guard += 1
            if guard > 10_000 or (
                self._gc_round is None
                and self.bs.stats.objects_deleted == before
            ):
                break

    def close(self) -> None:
        """Clean shutdown: drain, checkpoint, persist warm maps."""
        if not self.read_only:
            self.drain()
            self.flush()
            if not self._pending:
                self._write_checkpoint()
            self.rc.save_map()
            self.wc.close()

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self, name: str) -> int:
        """Designate the current stream head as snapshot ``name``."""
        self.drain()
        return self.bs.create_snapshot(name)

    def delete_snapshot(self, name: str) -> List[int]:
        return self.bs.delete_snapshot(name)

    # ------------------------------------------------------------------
    # settlement ledger
    # ------------------------------------------------------------------
    def settle_put(self, handle) -> None:
        """Notify the volume that an outstanding PUT completed."""
        kind, payload = self._pending.pop(handle)
        if kind == "data":
            payload.settled = True
            self._advance_release_frontier()
        elif kind == "gc":
            if self._gc_round is not None:
                self._gc_round.pending_puts -= 1
        elif kind == "ckpt":
            self.bs.retire_old_checkpoints()
            if (
                self._gc_round is not None
                and self._gc_round.stage == "await_ckpt"
                and self._gc_round.ckpt_seq == payload
            ):
                self._finish_gc_round()
        self._maybe_checkpoint()
        self._advance_gc()

    @property
    def pending_puts(self) -> int:
        return len(self._pending)

    # -- internals ------------------------------------------------------
    def _commit_data(self, sealed: SealedBatch, span=NULL_SPAN) -> None:
        entry = _BatchEntry(sealed.seq, sealed.last_record_seq)
        self._batches.append(entry)
        self._m_batch_commits.inc()
        self.obs.trace.emit(
            "write_commit",
            seq=sealed.seq,
            bytes=sealed.data_len,
            records_through=sealed.last_record_seq,
        )
        result = self.bs.commit(sealed, span=span)
        if result is None:
            entry.settled = True
            self._advance_release_frontier()
            self._maybe_checkpoint(span=span)
            self._advance_gc()
        else:
            self._pending[result] = ("data", entry)

    def _advance_release_frontier(self) -> None:
        while self._batches and self._batches[0].settled:
            entry = self._batches.pop(0)
            if entry.last_record_seq:
                self.wc.release_through(entry.last_record_seq)

    def _maybe_checkpoint(self, span=NULL_SPAN) -> None:
        if (
            (self.bs.checkpoint_due or self._ckpt_requested)
            and not self._pending
            and self.bs.sealed_uncommitted == 0
        ):
            self._ckpt_requested = False
            self._write_checkpoint(span=span)

    def _write_checkpoint(self, span=NULL_SPAN) -> int:
        self._m_checkpoints.inc()
        seq, result = self.bs.write_checkpoint(span=span)
        if result is None:
            self.bs.retire_old_checkpoints()
            if (
                self._gc_round is not None
                and self._gc_round.stage == "await_ckpt"
            ):
                self._gc_round.ckpt_seq = seq
                self._finish_gc_round()
        else:
            self._pending[result] = ("ckpt", seq)
        return seq

    def _advance_gc(self) -> None:
        if not self.gc_enabled or self.read_only:
            return
        if self._gc_round is None:
            if self.gc.needs_gc():
                self._start_gc_round()
            return
        rnd = self._gc_round
        if rnd.stage == "relocating" and rnd.pending_puts > 0:
            # pipelined GC: while this round's relocation PUTs are in
            # flight, select the next round's victims (the expensive
            # scan/sort) so the follow-up round starts without a planning
            # stall; the selection is revalidated when consumed
            if not rnd.preplanned and not self.gc.reached_target():
                rnd.preplanned = True
                pspan = self.obs.spans.root("gc_preplan")
                self._next_selection = self.gc.select(
                    exclude=rnd.victims, span=pspan
                )
                pspan.end()
                if self._next_selection is not None:
                    self.gc.stats.preplanned_rounds += 1
        if rnd.stage == "relocating" and rnd.pending_puts == 0:
            rnd.stage = "await_ckpt"
            if not self._pending and self.bs.sealed_uncommitted == 0:
                rnd.ckpt_seq = self._write_checkpoint()
                # immediate stores finish inside _write_checkpoint
            else:
                self._ckpt_requested = True

    def _start_gc_round(self) -> None:
        span = self.obs.spans.root("gc_round")
        selection, self._next_selection = self._next_selection, None
        plan = (
            self.gc.materialize(selection, span=span)
            if selection is not None
            else None
        )
        if plan is None:
            plan = self.gc.plan(span=span)
        if plan is None:
            span.end(started=False)
            return
        rnd = _GCRound(victims=plan.victims)
        self._gc_round = rnd
        for sealed, result in self.gc.execute(plan, span=span):
            if result is not None:
                rnd.pending_puts += 1
                self._pending[result] = ("gc", sealed.seq)
        span.end(victims=len(plan.victims))
        self._advance_gc()

    def _finish_gc_round(self) -> None:
        rnd = self._gc_round
        self._gc_round = None
        if rnd is not None:
            self.gc.delete_victims(rnd.victims)

    def _make_room(self, needed: int, span=NULL_SPAN) -> None:
        """Cache log full: force destage so records can be released."""
        stage = span.begin("space_wait")
        for sealed in self.bs.seal_all(reason="backpressure", span=span):
            self._commit_data(sealed, span=span)
        stage.end()
        if self.wc.free_bytes < needed + 2 * 4096 and self._pending:
            raise CacheFullError(
                "cache log full with PUTs outstanding; destage in progress"
            )

    def _gc_cache_read(self, lba: int, length: int) -> Optional[bytes]:
        """GC cache-assist: serve only from the read cache (§3.5).

        The read cache is invalidated on every write, so a full hit is
        guaranteed to equal the currently mapped (victim) version.  The
        write cache may hold *newer* data than the victim's and must not
        be used: relocating it could surface a write without its
        predecessors after a crash, breaking prefix consistency.
        """
        pieces = self.rc.read(lba, length)
        if len(pieces) == 1 and pieces[0][0] == lba and pieces[0][1] == length:
            return pieces[0][2]
        return None

    def _insert_read_cache(self, lba: int, data: bytes, span=NULL_SPAN) -> None:
        """Insert backend data, clipped against newer write-cache data."""
        cursor = 0
        for start, length, ext in _clip_against(self.wc.map, lba, len(data)):
            if ext is None:
                self.rc.insert(start, data[start - lba : start - lba + length], span=span)  # lint: disable=LSVD009 -- ReadCache.insert (cache API), not a list shuffle

    def _check_io(self, offset: int, length: int) -> None:
        if offset % SECTOR or length % SECTOR:
            raise ValueError("I/O must be 512-byte aligned")
        if offset < 0 or offset + length > self.size:
            raise ValueError("I/O beyond end of volume")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def occupancy(self) -> Tuple[int, int]:
        return self.bs.occupancy()

    @property
    def write_amplification(self) -> float:
        return self.bs.stats.write_amplification


def _clip_against(extent_map, lba: int, length: int):
    """Yield (start, length, extent-or-None) covering the range."""
    return extent_map.lookup_with_gaps(lba, length)


class _Coverage:
    """Tracks which parts of a read range are still unfilled."""

    def __init__(self, offset: int, length: int):
        self._gaps: List[Tuple[int, int]] = [(offset, length)]

    def fill(self, lba: int, length: int) -> None:
        end = lba + length
        new: List[Tuple[int, int]] = []
        for g_lba, g_len in self._gaps:
            g_end = g_lba + g_len
            if end <= g_lba or lba >= g_end:
                new.append((g_lba, g_len))
                continue
            if g_lba < lba:
                new.append((g_lba, lba - g_lba))
            if end < g_end:
                new.append((end, g_end - end))
        self._gaps = new

    def gaps(self) -> List[Tuple[int, int]]:
        return list(self._gaps)
