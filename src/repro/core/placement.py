"""Temperature-aware data placement (SepBIT-style, §3.5 extension).

The greedy cleaner relocates whatever happens to share an object with
dead data; when hot (quickly overwritten) and cold (long-lived) blocks
are mixed into the same objects, every cleaning round copies long-lived
bytes that merely sat next to soon-to-die ones.  This module segregates
the outgoing object stream by *inferred invalidation time* (SepBIT,
PAPERS.md: *Separating Data via Block Invalidation Time Inference*):

* a block overwritten shortly after its previous write is **hot** — its
  next overwrite is probably imminent, so it should share an object with
  other soon-to-die data;
* a block whose observed lifetime exceeds the running mean is **cold**;
* first writes (no history) start **warm**;
* data that *survives* a GC round demonstrably lives longer than its
  object — relocation demotes it one class toward cold (the lazy
  reclamation idea of Lomet & Luo: cold classes are cleaned rarely and
  cheaply because they stay near-full).

Everything class-related lives here — the class constants, the
classifier state, the per-class victim ordering, and the relocation
splitter — and is consumed identically by the pure stack
(``core/block_store.py`` / ``core/gc.py``), the timed runtime
(``runtime/lsvd.py``) and the page-map simulator (``gcsim/simulator.py``),
so the fast simulator provably shares placement code with the full
stack.  The LSVD017 lint rule keeps it that way: class arithmetic and
classifier construction outside this module are flagged.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.config import BLOCK, LSVDConfig

#: temperature classes, hottest first; the numeric order is meaningful
#: (GC survivors are demoted by +1 toward cold) and is therefore owned
#: by this module alone.
TEMP_HOT = 0
TEMP_WARM = 1
TEMP_COLD = 2
NUM_TEMPS = 3
TEMP_NAMES: Tuple[str, ...] = ("hot", "warm", "cold")

#: (lba, length, temp) sub-piece produced by the relocation splitter
SplitPiece = Tuple[int, int, int]


class PlacementPolicy:
    """Interface + shared accounting for write/relocation classification.

    Both entry points are *stream*-driven and deterministic: feed two
    policies the same operation sequence and they produce the same class
    decisions (the differential test relies on this).
    """

    #: how many classes this policy emits (the store opens one batch per
    #: class); subclasses may narrow it
    num_temps: int = NUM_TEMPS

    def __init__(self, record: bool = False):
        #: per-class client bytes classified at destage
        self.write_bytes: List[int] = [0] * NUM_TEMPS
        #: per-class bytes classified at GC relocation
        self.reloc_bytes: List[int] = [0] * NUM_TEMPS
        #: optional decision trace (class per on_write call) for the
        #: gcsim-vs-full-stack differential test
        self.trace: Optional[List[int]] = [] if record else None

    # -- classification -------------------------------------------------
    def on_write(self, lba: int, length: int) -> int:
        """Classify one client write; returns its temperature class."""
        raise NotImplementedError

    def split_relocation(self, lba: int, length: int) -> List[SplitPiece]:
        """Classify a live piece being relocated by GC.

        Returns ``(lba, length, temp)`` sub-pieces covering the range,
        split wherever the class changes.  Survivor state is demoted as
        a side effect, so each byte must be passed exactly once per GC
        round.  The split is per-page, so the result is independent of
        how the caller partitioned the relocated range into pieces —
        the property that lets the byte-granular stack and the
        page-granular simulator agree.
        """
        raise NotImplementedError

    # -- shared accounting ----------------------------------------------
    def _note_write(self, temp: int, length: int) -> None:
        self.write_bytes[temp] += length
        if self.trace is not None:
            self.trace.append(temp)

    def _note_reloc(self, temp: int, length: int) -> None:
        self.reloc_bytes[temp] += length


class SingleClassPolicy(PlacementPolicy):
    """The pre-placement baseline: every write lands in one stream.

    Selectable via ``LSVDConfig.placement = "legacy"`` (the same
    keep-the-baseline convention as ``flat_extent_map`` and
    ``group_commit=False``); the wa_smoke benchmark runs it side by side
    with SepBIT to gate the write-amplification reduction.
    """

    num_temps = 1

    def on_write(self, lba: int, length: int) -> int:
        self._note_write(TEMP_HOT, length)
        return TEMP_HOT

    def split_relocation(self, lba: int, length: int) -> List[SplitPiece]:
        self._note_reloc(TEMP_HOT, length)
        return [(lba, length, TEMP_HOT)]


class SepBitPolicy(PlacementPolicy):
    """Invalidation-time inference over per-page last-write metadata.

    State is kept per 4 KiB page in plain dicts: ``_page_last`` maps a
    page to the logical clock (client bytes written so far) of its last
    write, ``_page_temp`` to its current class.  On an overwrite the
    previous version's *lifetime* becomes known; writes whose overwritten
    predecessor lived no longer than the running mean lifetime are hot,
    the rest cold.  The threshold adapts to the workload with no tunable
    (SepBIT §4's observation that the mean tracks the hot/cold knee
    closely enough).

    Placement metadata is soft state: it is rebuilt from the write
    stream after recovery and is deliberately not checkpointed — losing
    it costs placement quality, never correctness.
    """

    def __init__(self, block: int = BLOCK, record: bool = False):
        super().__init__(record=record)
        self.block = block
        self._clock = 0  # logical time: client bytes classified so far
        self._page_last: Dict[int, int] = {}
        self._page_temp: Dict[int, int] = {}
        self._life_sum = 0
        self._life_n = 0

    def on_write(self, lba: int, length: int) -> int:
        first = lba // self.block
        last = (lba + length - 1) // self.block
        prev = self._page_last.get(first)
        if prev is None:
            temp = TEMP_WARM
        else:
            life = self._clock - prev
            self._life_sum += life
            self._life_n += 1
            # hot iff the invalidated version's lifetime was at most the
            # running mean (integer cross-multiply keeps it exact)
            temp = TEMP_HOT if life * self._life_n <= self._life_sum else TEMP_COLD
        for page in range(first, last + 1):
            self._page_last[page] = self._clock
            self._page_temp[page] = temp
        self._clock += length
        self._note_write(temp, length)
        return temp

    def split_relocation(self, lba: int, length: int) -> List[SplitPiece]:
        out: List[SplitPiece] = []
        end = lba + length
        cursor = lba
        while cursor < end:
            page = cursor // self.block
            piece_end = min(end, (page + 1) * self.block)
            # survivors demonstrably outlived their object: cool one step
            temp = min(self._page_temp.get(page, TEMP_WARM) + 1, TEMP_COLD)
            self._page_temp[page] = temp
            if out and out[-1][2] == temp and out[-1][0] + out[-1][1] == cursor:
                prev_lba, prev_len, _t = out[-1]
                out[-1] = (prev_lba, prev_len + (piece_end - cursor), temp)
            else:
                out.append((cursor, piece_end - cursor, temp))
            self._note_reloc(temp, piece_end - cursor)
            cursor = piece_end
        return out


def make_policy(
    config: "Optional[LSVDConfig | str]" = None, record: bool = False
) -> PlacementPolicy:
    """The one blessed constructor: build the policy a config (or a bare
    policy name) asks for."""
    if isinstance(config, str):
        name = config
    else:
        name = config.placement if config is not None else "sepbit"
    if name == "legacy":
        return SingleClassPolicy(record=record)
    if name == "sepbit":
        return SepBitPolicy(record=record)
    raise ValueError(f"unknown placement policy {name!r}")


# ---------------------------------------------------------------------------
# victim selection (shared by core/gc.py and gcsim/simulator.py)
# ---------------------------------------------------------------------------


def select_victims(
    candidates: Sequence[Tuple[int, int, int]],
    *,
    policy: str,
    window: int,
    high_watermark: float,
) -> List[int]:
    """Order cleaning candidates and take one round's victims.

    ``candidates`` are ``(seq, live_bytes, total_bytes)`` rows for every
    cleanable object (total > 0).  Two orderings:

    * ``"greedy"`` — least utilisation first (Rosenblum & Ousterhout),
      ties broken oldest-first;
    * ``"cost_benefit"`` — highest ``(1 - u) * age / (1 + u)`` first:
      benefit (space freed, weighted by how long the object has been
      stable) over cost (read + rewrite of the live fraction).  Age is
      measured in object sequence numbers *relative to the newest
      candidate*, so the score is identical whether sequence numbers
      started at 0 (the simulator) or after a checkpoint (the store).

    Either way, objects at or above the stop watermark are never worth
    cleaning: copying their almost-entirely-live data cannot raise
    overall utilisation.
    """
    pool = [
        (seq, live, total)
        for seq, live, total in candidates
        if total > 0 and live / total < high_watermark
    ]
    if not pool:
        return []
    if policy == "greedy":
        pool.sort(key=lambda row: (row[1] / row[2], row[0]))
    elif policy == "cost_benefit":
        newest = max(row[0] for row in pool)

        def score(row: Tuple[int, int, int]) -> float:
            birth, live, total = row  # object seq doubles as a birth stamp
            u = live / total
            age = newest - birth + 1
            return (1.0 - u) * age / (1.0 + u)

        pool.sort(key=lambda row: (-score(row), row[0]))
    else:
        raise ValueError(f"unknown gc policy {policy!r}")
    return [seq for seq, _live, _total in pool[:window]]


# ---------------------------------------------------------------------------
# relocation planning (shared by core/gc.py and gcsim/simulator.py)
# ---------------------------------------------------------------------------


def plan_relocation(
    pieces: Iterable[Tuple[int, int, int, object]],
    policy: PlacementPolicy,
    batch_bytes: int,
) -> Iterator[Tuple[int, List[Tuple[int, int, int, object]]]]:
    """Route live pieces through the classifier into per-class chunks.

    ``pieces`` are ``(lba, length, src_seq, payload)`` in ascending-LBA
    order (``payload`` is the piece's data in the real stack, anything —
    e.g. ``None`` — in the simulator; sub-piece payloads are sliced when
    the payload supports it).  Yields ``(temp, chunk)`` relocation
    objects: a class's chunk is cut as soon as it reaches ``batch_bytes``
    and partial chunks are flushed coldest-last at the end, so the
    object stream produced from a given piece sequence is deterministic
    and identical across the byte-granular and page-granular engines.
    """
    chunks: Dict[int, List[Tuple[int, int, int, object]]] = {}
    sizes: Dict[int, int] = {}
    for lba, length, src_seq, payload in pieces:
        for sub_lba, sub_len, temp in policy.split_relocation(lba, length):
            if sub_lba == lba and sub_len == length:
                sub_payload = payload
            elif payload is None:
                sub_payload = None
            else:
                start = sub_lba - lba
                sub_payload = payload[start : start + sub_len]  # type: ignore[index]
            chunks.setdefault(temp, []).append((sub_lba, sub_len, src_seq, sub_payload))
            sizes[temp] = sizes.get(temp, 0) + sub_len
            if sizes[temp] >= batch_bytes:
                yield temp, chunks.pop(temp)
                del sizes[temp]
    for temp in sorted(chunks):
        if chunks[temp]:
            yield temp, chunks[temp]


__all__ = [
    "NUM_TEMPS",
    "TEMP_COLD",
    "TEMP_HOT",
    "TEMP_NAMES",
    "TEMP_WARM",
    "PlacementPolicy",
    "SepBitPolicy",
    "SingleClassPolicy",
    "make_policy",
    "plan_relocation",
    "select_victims",
]
