"""Extent maps: the three in-memory translation maps of Figure 1.

An :class:`ExtentMap` maps ranges of a virtual address space to ranges of a
target space: vLBA -> pLBA for the write cache, vLBA -> cache slot for the
read cache, and vLBA -> (object sequence number, offset) for the block
store.  The paper's prototype uses red-black trees at 40 bytes/entry and
the production rewrite a B+-tree at 24 bytes/entry because map operations
dominate the client-side CPU budget at scale.

This implementation is a two-level B+-tree-style structure: extents live
in bounded *leaf chunks* (sorted lists of at most ``2 * _CHUNK_TARGET``
extents), and a small top-level index of each chunk's first LBA routes
every operation to the right leaf with two binary searches.  Point
operations therefore cost O(log n + C) where C is the chunk bound — the
list insert/delete that made the previous flat-list layout O(n) per
update now moves at most one bounded chunk.  See DESIGN.md ("Chunked
extent map") for the layout and the O(sqrt n) argument.

Keys and offsets are plain integers (bytes throughout this codebase).  The
``target`` is any hashable (e.g. an object sequence number); splitting an
extent shifts ``offset`` so that ``offset + (addr - lba)`` always locates
``addr``'s bytes inside the target.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Hashable, Iterator, List, Optional, Tuple


@dataclass(frozen=True, slots=True)
class Extent:
    """A mapped run: ``length`` addresses at ``lba`` live at
    ``target[offset : offset + length]``."""

    lba: int
    length: int
    target: Hashable
    offset: int

    @property
    def end(self) -> int:
        return self.lba + self.length

    def slice(self, lba: int, length: int) -> "Extent":
        """Sub-extent clipped to [lba, lba+length); must overlap."""
        start = max(self.lba, lba)
        stop = min(self.end, lba + length)
        if start >= stop:
            raise ValueError("slice does not overlap extent")
        return Extent(start, stop - start, self.target, self.offset + (start - self.lba))


class ExtentMap:
    """Ordered, non-overlapping map from address ranges to target ranges."""

    #: leaf sizing: a chunk splits in two once it exceeds ``2 * target``;
    #: carve folds a shrunken chunk into its neighbour when the pair fits.
    _CHUNK_TARGET = 128

    def __init__(self) -> None:
        # Leaf chunks of extents sorted by lba, globally non-overlapping.
        # _lbas mirrors each chunk's extent lbas (bisect without key=),
        # _firsts is the top-level index: _firsts[i] == _chunks[i][0].lba.
        self._chunks: List[List[Extent]] = []
        self._lbas: List[List[int]] = []
        self._firsts: List[int] = []
        self._count = 0
        self._mapped = 0

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Extent]:
        for chunk in self._chunks:
            yield from chunk

    def lookup(self, lba: int, length: int) -> List[Extent]:
        """Mapped pieces overlapping [lba, lba+length), clipped, in order.

        Unmapped gaps are simply absent from the result.
        """
        if length <= 0 or not self._chunks:
            return []
        end = lba + length
        out: List[Extent] = []
        ci, ei = self._start_pos(lba)
        while ci < len(self._chunks):
            chunk = self._chunks[ci]
            for j in range(ei, len(chunk)):
                ext = chunk[j]
                if ext.lba >= end:
                    return out
                out.append(ext.slice(lba, length))
            ci += 1
            ei = 0
        return out

    def lookup_with_gaps(
        self, lba: int, length: int
    ) -> List[Tuple[int, int, Optional[Extent]]]:
        """Cover [lba, lba+length) completely: (start, len, extent-or-None)."""
        pieces: List[Tuple[int, int, Optional[Extent]]] = []
        cursor = lba
        for ext in self.lookup(lba, length):
            if ext.lba > cursor:
                pieces.append((cursor, ext.lba - cursor, None))
            pieces.append((ext.lba, ext.length, ext))
            cursor = ext.end
        end = lba + length
        if cursor < end:
            pieces.append((cursor, end - cursor, None))
        return pieces

    def mapped_bytes(self) -> int:
        """Total mapped address space (bytes, since addresses are bytes)."""
        return self._mapped

    def bounds(self) -> Tuple[int, int]:
        """(lowest mapped address, highest mapped end); (0, 0) if empty."""
        if not self._chunks:
            return (0, 0)
        return (self._chunks[0][0].lba, self._chunks[-1][-1].end)

    # -- mutation ----------------------------------------------------------
    def update(
        self, lba: int, length: int, target: Hashable, offset: int = 0
    ) -> List[Extent]:
        """Map [lba, lba+length) to target[offset:]; return displaced pieces.

        The displaced list (clipped old mappings that this update shadows)
        lets callers maintain per-target live-byte accounting, which drives
        garbage collection.
        """
        displaced = self._carve(lba, length)
        self._insert(Extent(lba, length, target, offset))
        return displaced

    def remove(self, lba: int, length: int) -> List[Extent]:
        """Unmap [lba, lba+length); return the displaced pieces (trim)."""
        return self._carve(lba, length)

    def clear(self) -> None:
        self._chunks.clear()
        self._lbas.clear()
        self._firsts.clear()
        self._count = 0
        self._mapped = 0

    # -- position finding ---------------------------------------------
    def _start_pos(self, lba: int) -> Tuple[int, int]:
        """(chunk, index) of the first extent whose ``end`` exceeds ``lba``.

        The predecessor extent (greatest lba' <= lba) is tested
        *explicitly* for overlap: when it ends at or before ``lba`` the
        scan starts at its successor, and when ``lba`` precedes the whole
        map there is no predecessor at all and the scan starts at the very
        first extent.  (The flat-list ancestor clamped a -1 bisect result
        to 0, which happened to work but hid the distinction; the chunked
        layout makes the off-by-one fatal, so it is spelled out.)
        """
        ci = bisect_right(self._firsts, lba) - 1
        if ci < 0:
            # lba lies strictly before the first mapped extent
            return (0, 0)
        lbas = self._lbas[ci]
        ei = bisect_right(lbas, lba) - 1  # >= 0: lbas[0] == _firsts[ci] <= lba
        if self._chunks[ci][ei].end > lba:
            return (ci, ei)  # predecessor spans past lba
        # predecessor ends at/before lba: start at the next extent
        if ei + 1 < len(lbas):
            return (ci, ei + 1)
        return (ci + 1, 0)

    # -- internals -----------------------------------------------------
    def _carve(self, lba: int, length: int) -> List[Extent]:
        """Remove every mapping overlapping [lba, lba+length)."""
        if length <= 0:
            raise ValueError("length must be positive")
        end = lba + length
        displaced: List[Extent] = []
        if not self._chunks:
            return displaced
        ci, ei = self._start_pos(lba)
        while ci < len(self._chunks):
            chunk = self._chunks[ci]
            n = len(chunk)
            if ei >= n:
                ci += 1
                ei = 0
                continue
            if chunk[ei].lba >= end:
                break
            # the overlapping run [ei, j) within this chunk; the clipped
            # piece is Extent.slice() inlined — this loop is the hottest
            # code in the write path
            j = ei
            left: Optional[Extent] = None
            right: Optional[Extent] = None
            carved = 0
            while j < n:
                ext = chunk[j]
                e_lba = ext.lba
                if e_lba >= end:
                    break
                e_end = e_lba + ext.length
                start = e_lba if e_lba > lba else lba
                stop = e_end if e_end < end else end
                displaced.append(
                    Extent(start, stop - start, ext.target, ext.offset + (start - e_lba))
                )
                carved += stop - start
                if e_lba < lba:
                    left = Extent(e_lba, lba - e_lba, ext.target, ext.offset)
                if e_end > end:
                    right = Extent(
                        end, e_end - end, ext.target, ext.offset + (end - e_lba)
                    )
                j += 1
            self._mapped -= carved
            # ext.length == piece.length + frag lengths, so subtracting the
            # displaced overlap above already accounts for the fragments
            frags = [f for f in (left, right) if f is not None]
            self._replace_run(ci, ei, j, frags)
            if j < n or right is not None:
                break
            # carve may continue into the next chunk; if this chunk
            # emptied and was removed, the next one now sits at ci
            if ci < len(self._chunks) and self._chunks[ci] is chunk:
                ci += 1
            ei = 0
        # try both pairs around the carve point: a chunk shrunk by
        # ascending-order removals only ever sees its *left* neighbour
        # shrink afterwards, so folding right alone would never fire
        ci = min(ci, len(self._chunks) - 1)
        self._maybe_fold(ci)
        self._maybe_fold(ci - 1)
        return displaced

    def _insert(self, new: Extent) -> None:
        """Insert a (pre-carved, non-overlapping) extent, coalescing with
        contiguous same-target neighbours on both sides.

        One routing bisect finds the leaf; the insertion index within it
        identifies both neighbours for free, so the common case (no
        coalescing possible) inserts with two binary searches total.  The
        rare merge case removes the absorbed neighbours and re-routes.
        """
        self._mapped += new.length
        chunks = self._chunks
        if not chunks:
            chunks.append([new])
            self._lbas.append([new.lba])
            self._firsts.append(new.lba)
            self._count += 1
            return
        ci = bisect_right(self._firsts, new.lba) - 1
        if ci < 0:
            ci = 0  # new becomes the very first extent: prepend to chunk 0
        chunk = chunks[ci]
        ei = bisect_right(self._lbas[ci], new.lba)
        # neighbours around the insertion slot: prev is chunk[ei-1] (or the
        # previous leaf's tail), nxt is chunk[ei] (or the next leaf's head)
        if ei > 0:
            prev, ppos = chunk[ei - 1], (ci, ei - 1)
        elif ci > 0:
            pchunk = chunks[ci - 1]
            prev, ppos = pchunk[-1], (ci - 1, len(pchunk) - 1)
        else:
            prev = None
        if ei < len(chunk):
            nxt, npos = chunk[ei], (ci, ei)
        elif ci + 1 < len(chunks):
            nxt, npos = chunks[ci + 1][0], (ci + 1, 0)
        else:
            nxt = None
        merge_prev = (
            prev is not None
            and prev.lba + prev.length == new.lba
            and prev.target == new.target
            and prev.offset + prev.length == new.offset
        )
        merge_next = (
            nxt is not None
            and new.lba + new.length == nxt.lba
            and nxt.target == new.target
            and new.offset + new.length == nxt.offset
        )
        if not merge_prev and not merge_next:
            self._leaf_insert(ci, new, ei)
            return
        # rare path: absorb the mergeable neighbour(s), then re-route —
        # removals can shift or drop leaves, so positions are recomputed
        if merge_prev and merge_next:
            new = Extent(
                prev.lba, prev.length + new.length + nxt.length, new.target, prev.offset
            )
            if ppos[0] == npos[0]:
                self._replace_run(ppos[0], ppos[1], npos[1] + 1, [])
            else:
                self._replace_run(npos[0], npos[1], npos[1] + 1, [])
                self._replace_run(ppos[0], ppos[1], ppos[1] + 1, [])
        elif merge_prev:
            new = Extent(prev.lba, prev.length + new.length, new.target, prev.offset)
            self._replace_run(ppos[0], ppos[1], ppos[1] + 1, [])
        else:
            new = Extent(new.lba, new.length + nxt.length, new.target, new.offset)
            self._replace_run(npos[0], npos[1], npos[1] + 1, [])
        if not chunks:
            chunks.append([new])
            self._lbas.append([new.lba])
            self._firsts.append(new.lba)
            self._count += 1
            return
        ci = bisect_right(self._firsts, new.lba) - 1
        if ci < 0:
            ci = 0
        self._leaf_insert(ci, new)

    # -- leaf mutation (the blessed bounded-chunk helpers; LSVD009) ----
    def _leaf_insert(self, ci: int, new: Extent, ei: Optional[int] = None) -> None:
        """Insert into leaf chunk ``ci``; splits the chunk when oversized.

        ``ei`` is the insertion index when the caller already bisected.
        """
        chunk, lbas = self._chunks[ci], self._lbas[ci]
        if ei is None:
            ei = bisect_right(lbas, new.lba)
        chunk.insert(ei, new)
        lbas.insert(ei, new.lba)
        self._count += 1
        self._firsts[ci] = chunk[0].lba
        if len(chunk) > 2 * self._CHUNK_TARGET:
            self._split_chunk(ci)

    def _replace_run(self, ci: int, i0: int, i1: int, frags: List[Extent]) -> None:
        """Replace ``chunk[i0:i1]`` with ``frags``; drop the leaf if empty."""
        chunk, lbas = self._chunks[ci], self._lbas[ci]
        chunk[i0:i1] = frags
        lbas[i0:i1] = [f.lba for f in frags]
        self._count += len(frags) - (i1 - i0)
        if not chunk:
            del self._chunks[ci]
            del self._lbas[ci]
            del self._firsts[ci]
        else:
            self._firsts[ci] = chunk[0].lba

    def _split_chunk(self, ci: int) -> None:
        """Split an oversized leaf into two half-full neighbours."""
        chunk, lbas = self._chunks[ci], self._lbas[ci]
        mid = len(chunk) // 2
        right, right_lbas = chunk[mid:], lbas[mid:]
        del chunk[mid:]
        del lbas[mid:]
        self._chunks.insert(ci + 1, right)
        self._lbas.insert(ci + 1, right_lbas)
        self._firsts.insert(ci + 1, right[0].lba)

    def _maybe_fold(self, ci: int) -> None:
        """Fold a carve-shrunken leaf into its right neighbour.

        Keeps the chunk count near n / target after heavy removal so the
        top-level index stays small; only fires when the merged leaf stays
        within the split bound, so fold and split cannot ping-pong.
        """
        if ci < 0 or ci + 1 >= len(self._chunks):
            return
        chunk = self._chunks[ci]
        nxt = self._chunks[ci + 1]
        if len(chunk) >= self._CHUNK_TARGET // 4:
            return
        if len(chunk) + len(nxt) > self._CHUNK_TARGET:
            return
        chunk.extend(nxt)
        self._lbas[ci].extend(self._lbas[ci + 1])
        del self._chunks[ci + 1]
        del self._lbas[ci + 1]
        del self._firsts[ci + 1]

    # -- (de)serialisation ------------------------------------------------
    def entries(self) -> List[Tuple[int, int, Any, int]]:
        """Plain-tuple dump for checkpointing."""
        return [(e.lba, e.length, e.target, e.offset) for e in self]

    @classmethod
    def from_entries(cls, entries) -> "ExtentMap":
        """Rebuild from an :meth:`entries` dump (checkpoint restore).

        Adjacent same-target contiguous runs are coalesced on the way in:
        a checkpoint written while two extents were logically mergeable
        (e.g. by an older writer) must not leave the restored map
        permanently larger than the live map that produced it — restore
        is idempotent: ``m.entries() == from_entries(m.entries()).entries()``.
        """
        flat: List[Extent] = []
        for lba, length, target, offset in entries:
            ext = Extent(lba, length, target, offset)
            if flat:
                prev = flat[-1]
                if ext.lba < prev.end:
                    raise ValueError("entries overlap or are unsorted")
                if (
                    prev.end == ext.lba
                    and prev.target == ext.target
                    and prev.offset + prev.length == ext.offset
                ):
                    flat[-1] = Extent(
                        prev.lba, prev.length + ext.length, prev.target, prev.offset
                    )
                    continue
            flat.append(ext)
        m = cls()
        m._bulk_load(flat)
        return m

    def _bulk_load(self, flat: List[Extent]) -> None:
        """Load a sorted, non-overlapping, coalesced extent list wholesale."""
        step = self._CHUNK_TARGET
        for i in range(0, len(flat), step):
            chunk = flat[i : i + step]
            self._chunks.append(chunk)
            self._lbas.append([e.lba for e in chunk])
            self._firsts.append(chunk[0].lba)
        self._count = len(flat)
        self._mapped = sum(e.length for e in flat)
