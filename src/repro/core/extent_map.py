"""Extent maps: the three in-memory translation maps of Figure 1.

An :class:`ExtentMap` maps ranges of a virtual address space to ranges of a
target space: vLBA -> pLBA for the write cache, vLBA -> cache slot for the
read cache, and vLBA -> (object sequence number, offset) for the block
store.  The paper's prototype uses red-black trees at 40 bytes/entry and
the production rewrite a B+-tree at 24 bytes/entry; here a sorted list with
binary search gives the same semantics with O(log n) lookup.

Keys and offsets are plain integers (bytes throughout this codebase).  The
``target`` is any hashable (e.g. an object sequence number); splitting an
extent shifts ``offset`` so that ``offset + (addr - lba)`` always locates
``addr``'s bytes inside the target.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Hashable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Extent:
    """A mapped run: ``length`` addresses at ``lba`` live at
    ``target[offset : offset + length]``."""

    lba: int
    length: int
    target: Hashable
    offset: int

    @property
    def end(self) -> int:
        return self.lba + self.length

    def slice(self, lba: int, length: int) -> "Extent":
        """Sub-extent clipped to [lba, lba+length); must overlap."""
        start = max(self.lba, lba)
        stop = min(self.end, lba + length)
        if start >= stop:
            raise ValueError("slice does not overlap extent")
        return Extent(start, stop - start, self.target, self.offset + (start - self.lba))


class ExtentMap:
    """Ordered, non-overlapping map from address ranges to target ranges."""

    def __init__(self) -> None:
        # parallel arrays sorted by lba; kept non-overlapping at all times
        self._lbas: List[int] = []
        self._exts: List[Extent] = []

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._exts)

    def __iter__(self) -> Iterator[Extent]:
        return iter(self._exts)

    def lookup(self, lba: int, length: int) -> List[Extent]:
        """Mapped pieces overlapping [lba, lba+length), clipped, in order.

        Unmapped gaps are simply absent from the result.
        """
        if length <= 0:
            return []
        out: List[Extent] = []
        idx = bisect_right(self._lbas, lba) - 1
        if idx < 0:
            idx = 0
        end = lba + length
        while idx < len(self._exts):
            ext = self._exts[idx]
            if ext.lba >= end:
                break
            if ext.end > lba:
                out.append(ext.slice(lba, length))
            idx += 1
        return out

    def lookup_with_gaps(
        self, lba: int, length: int
    ) -> List[Tuple[int, int, Optional[Extent]]]:
        """Cover [lba, lba+length) completely: (start, len, extent-or-None)."""
        pieces: List[Tuple[int, int, Optional[Extent]]] = []
        cursor = lba
        for ext in self.lookup(lba, length):
            if ext.lba > cursor:
                pieces.append((cursor, ext.lba - cursor, None))
            pieces.append((ext.lba, ext.length, ext))
            cursor = ext.end
        end = lba + length
        if cursor < end:
            pieces.append((cursor, end - cursor, None))
        return pieces

    def mapped_bytes(self) -> int:
        """Total mapped address space (bytes, since addresses are bytes)."""
        return sum(ext.length for ext in self._exts)

    def bounds(self) -> Tuple[int, int]:
        """(lowest mapped address, highest mapped end); (0, 0) if empty."""
        if not self._exts:
            return (0, 0)
        return (self._exts[0].lba, self._exts[-1].end)

    # -- mutation ----------------------------------------------------------
    def update(
        self, lba: int, length: int, target: Hashable, offset: int = 0
    ) -> List[Extent]:
        """Map [lba, lba+length) to target[offset:]; return displaced pieces.

        The displaced list (clipped old mappings that this update shadows)
        lets callers maintain per-target live-byte accounting, which drives
        garbage collection.
        """
        displaced = self._carve(lba, length)
        new = Extent(lba, length, target, offset)
        idx = bisect_right(self._lbas, lba)
        self._insert_coalescing(idx, new)
        return displaced

    def remove(self, lba: int, length: int) -> List[Extent]:
        """Unmap [lba, lba+length); return the displaced pieces (trim)."""
        return self._carve(lba, length)

    def clear(self) -> None:
        self._lbas.clear()
        self._exts.clear()

    # -- internals -----------------------------------------------------
    def _carve(self, lba: int, length: int) -> List[Extent]:
        """Remove every mapping overlapping [lba, lba+length)."""
        if length <= 0:
            raise ValueError("length must be positive")
        end = lba + length
        displaced: List[Extent] = []
        idx = bisect_right(self._lbas, lba) - 1
        if idx < 0:
            idx = 0
        # skip extents entirely before the carve range
        while idx < len(self._exts) and self._exts[idx].end <= lba:
            idx += 1
        while idx < len(self._exts) and self._exts[idx].lba < end:
            ext = self._exts[idx]
            displaced.append(ext.slice(lba, length))
            left: Optional[Extent] = None
            right: Optional[Extent] = None
            if ext.lba < lba:
                left = Extent(ext.lba, lba - ext.lba, ext.target, ext.offset)
            if ext.end > end:
                right = Extent(
                    end, ext.end - end, ext.target, ext.offset + (end - ext.lba)
                )
            # replace ext with surviving fragments
            del self._lbas[idx], self._exts[idx]
            for frag in (left, right):
                if frag is not None:
                    self._lbas.insert(idx, frag.lba)
                    self._exts.insert(idx, frag)
                    idx += 1
        return displaced

    def _insert_coalescing(self, idx: int, new: Extent) -> None:
        """Insert ``new`` at idx, merging with contiguous neighbours."""
        prev = self._exts[idx - 1] if idx > 0 else None
        if (
            prev is not None
            and prev.end == new.lba
            and prev.target == new.target
            and prev.offset + prev.length == new.offset
        ):
            new = Extent(prev.lba, prev.length + new.length, new.target, prev.offset)
            idx -= 1
            del self._lbas[idx], self._exts[idx]
        nxt = self._exts[idx] if idx < len(self._exts) else None
        if (
            nxt is not None
            and new.end == nxt.lba
            and nxt.target == new.target
            and new.offset + new.length == nxt.offset
        ):
            new = Extent(new.lba, new.length + nxt.length, new.target, new.offset)
            del self._lbas[idx], self._exts[idx]
        self._lbas.insert(idx, new.lba)
        self._exts.insert(idx, new)

    # -- (de)serialisation ------------------------------------------------
    def entries(self) -> List[Tuple[int, int, Any, int]]:
        """Plain-tuple dump for checkpointing."""
        return [(e.lba, e.length, e.target, e.offset) for e in self._exts]

    @classmethod
    def from_entries(cls, entries) -> "ExtentMap":
        m = cls()
        for lba, length, target, offset in entries:
            m._lbas.append(lba)
            m._exts.append(Extent(lba, length, target, offset))
        # defensive: verify sortedness and non-overlap
        for a, b in zip(m._exts, m._exts[1:]):
            if b.lba < a.end:
                raise ValueError("entries overlap or are unsorted")
        return m
