"""Cache sharing across clones (§6.3 "Cache Sharing").

A host often runs many virtual machines whose disks are cloned from the
same base image; each clone's reads of un-diverged blocks fetch the *same
backend objects*.  The paper proposes caching that data once per host.

:class:`SharedObjectCache` is keyed by (object name, data offset) —
content identity in LSVD's immutable world — so any volume whose map
points at a shared base object can hit data another volume fetched.
Because objects are immutable, shared entries can never be stale; each
volume's own write cache still takes priority for its divergent writes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass
class SharedCacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SharedObjectCache:
    """A host-wide LRU cache of immutable object data.

    Keys are (object name, aligned data offset); values are fixed-size
    chunks.  Immutability makes invalidation unnecessary — entries only
    leave by eviction.
    """

    def __init__(self, capacity: int, chunk_size: int = 64 * 1024):
        if capacity < chunk_size:
            raise ValueError("capacity smaller than one chunk")
        self.capacity = capacity
        self.chunk_size = chunk_size
        self._chunks: OrderedDict[Tuple[str, int], bytes] = OrderedDict()
        self._bytes = 0
        #: decoded object headers, shared across attached volumes (they
        #: are immutable too, and every reader needs them)
        self.headers: dict = {}
        self.stats = SharedCacheStats()

    # ------------------------------------------------------------------
    def get(self, object_name: str, offset: int, length: int) -> Optional[bytes]:
        """Return ``length`` bytes at ``offset`` of the object, if fully
        cached; None on any gap."""
        pieces = []
        for chunk_off, lo, hi in self._chunk_ranges(offset, length):
            chunk = self._chunks.get((object_name, chunk_off))
            if chunk is None or len(chunk) < hi:
                self.stats.misses += 1
                return None
            pieces.append(chunk[lo:hi])
        self.stats.hits += 1
        self._touch(object_name, offset, length)
        return b"".join(pieces)

    def insert(self, object_name: str, offset: int, data: bytes) -> None:
        """Cache object data; offset may be unaligned (clipped to chunks).

        Only whole chunks are stored, except a final partial chunk which
        is kept if it starts at its chunk boundary (objects have tails).
        """
        end = offset + len(data)
        for chunk_off, lo, hi in self._chunk_ranges(offset, len(data)):
            if chunk_off < offset or (chunk_off + self.chunk_size > end and hi != self.chunk_size):
                # partial at the front, or a tail that is not the object's
                # natural end: skip rather than cache a hole-y chunk
                if chunk_off < offset:
                    continue
            key = (object_name, chunk_off)
            if key in self._chunks:
                continue
            chunk = data[chunk_off - offset : chunk_off - offset + self.chunk_size]
            self._chunks[key] = chunk
            self._bytes += len(chunk)
            self.stats.insertions += 1
        while self._bytes > self.capacity and self._chunks:
            _key, evicted = self._chunks.popitem(last=False)
            self._bytes -= len(evicted)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    def _chunk_ranges(self, offset: int, length: int):
        """Yield (chunk_offset, lo, hi) covering [offset, offset+length)."""
        pos = offset
        end = offset + length
        while pos < end:
            chunk_off = pos // self.chunk_size * self.chunk_size
            lo = pos - chunk_off
            hi = min(end - chunk_off, self.chunk_size)
            yield chunk_off, lo, hi
            pos = chunk_off + self.chunk_size

    def _touch(self, object_name: str, offset: int, length: int) -> None:
        for chunk_off, _lo, _hi in self._chunk_ranges(offset, length):
            key = (object_name, chunk_off)
            if key in self._chunks:
                self._chunks.move_to_end(key)

    @property
    def cached_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._chunks)


def attach_shared_cache(volume, shared: SharedObjectCache) -> None:
    """Wire a volume's backend fetches through a shared cache.

    Reads served from the shared cache skip the object store entirely;
    misses fetch as usual and populate the cache for the other volumes
    cloned from the same base.
    """
    bs = volume.bs
    original_fetch = bs.fetch
    original_header_of = bs.header_of

    def caching_fetch(seq: int, offset: int, length: int) -> bytes:
        name = bs.name_for_seq(seq)
        cached = shared.get(name, offset, length)
        if cached is not None:
            return cached
        data = original_fetch(seq, offset, length)
        shared.insert(name, offset, data)
        return data

    def caching_header_of(seq: int):
        name = bs.name_for_seq(seq)
        header = shared.headers.get(name)
        if header is None:
            header = original_header_of(seq)
            shared.headers[name] = header
        else:
            bs._header_cache[seq] = header
        return header

    bs.fetch = caching_fetch
    bs.header_of = caching_header_of
