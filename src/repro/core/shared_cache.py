"""Cache sharing across clones and tenants (§6.3 "Cache Sharing").

A host often runs many virtual machines whose disks are cloned from the
same base image; each clone's reads of un-diverged blocks fetch the *same
backend objects*.  The paper proposes caching that data once per host.

:class:`SharedObjectCache` is keyed by (object name, data offset) —
content identity in LSVD's immutable world — so any volume whose map
points at a shared base object can hit data another volume fetched.
Because objects are immutable, shared entries can never be stale; each
volume's own write cache still takes priority for its divergent writes.

Multi-tenancy (the ``repro.fleet`` control plane) adds two things here:

* **first-class attachment** — :meth:`SharedObjectCache.attach` returns a
  :class:`SharedCacheAttachment` that the block store consults on its
  read path (no monkey-patching), and that can be cleanly detached;
* **per-tenant budgets with weighted eviction** — each attachment is
  tagged with the tenant that populates through it; when the cache is
  over capacity, eviction prefers chunks owned by tenants exceeding
  their declared budget before falling back to the global LRU order, so
  one scan-heavy tenant cannot flush everyone else's working set.

Decoded object headers are shared too (every reader needs them), in a
bounded LRU: a header is dropped when its object's last cached chunk is
evicted, and the header dict itself is capped so a long-running host
cannot leak memory through header accumulation alone.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs import Registry

#: default bound on the decoded-header LRU
DEFAULT_MAX_HEADERS = 1024

#: stat fields mirrored into the obs registry as ``sharedcache.<name>``
_STAT_NAMES = ("hits", "misses", "insertions", "evictions", "header_evictions")


@dataclass
class SharedCacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    header_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class SharedObjectCache:
    """A host-wide LRU cache of immutable object data.

    Keys are (object name, aligned data offset); values are fixed-size
    chunks.  Immutability makes invalidation unnecessary — entries only
    leave by eviction.
    """

    def __init__(
        self,
        capacity: int,
        chunk_size: int = 64 * 1024,
        max_headers: int = DEFAULT_MAX_HEADERS,
        obs: Optional[Registry] = None,
    ):
        if capacity < chunk_size:
            raise ValueError("capacity smaller than one chunk")
        if max_headers < 1:
            raise ValueError("max_headers must be >= 1")
        self.capacity = capacity
        self.chunk_size = chunk_size
        self.max_headers = max_headers
        self._chunks: OrderedDict[Tuple[str, int], bytes] = OrderedDict()
        self._bytes = 0
        #: decoded object headers, shared across attached volumes (they
        #: are immutable too); bounded LRU — see module docstring
        self.headers: OrderedDict[str, object] = OrderedDict()
        #: live chunk count per object name (header-eviction coupling)
        self._object_chunks: Dict[str, int] = {}
        # per-tenant accounting: chunk key -> owning tenant, tenant ->
        # cached bytes / declared budget (absent = unbudgeted)
        self._owner: Dict[Tuple[str, int], str] = {}
        self._usage: Dict[str, int] = {}
        self._budgets: Dict[str, int] = {}
        self._attachments: List["SharedCacheAttachment"] = []
        self.stats = SharedCacheStats()
        self.obs: Optional[Registry] = None
        self._m: Dict[str, object] = {}
        self._g_bytes = None
        if obs is not None:
            self.bind_obs(obs)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def bind_obs(self, obs: Registry) -> None:
        """Publish the counters into ``obs`` as ``sharedcache.*``.

        Late binding replays the totals accumulated so far, so attaching
        a registry after warm-up loses no history.
        """
        self.obs = obs
        self._m = {name: obs.counter(f"sharedcache.{name}") for name in _STAT_NAMES}
        for name, counter in self._m.items():
            counter.set(getattr(self.stats, name))  # type: ignore[attr-defined]
        self._g_bytes = obs.gauge("sharedcache.bytes")
        self._g_bytes.set(self._bytes)

    def _count(self, name: str, amount: int = 1) -> None:
        setattr(self.stats, name, getattr(self.stats, name) + amount)
        counter = self._m.get(name)
        if counter is not None:
            counter.inc(amount)  # type: ignore[attr-defined]

    def _sync_bytes(self) -> None:
        if self._g_bytes is not None:
            self._g_bytes.set(self._bytes)

    # ------------------------------------------------------------------
    # tenant budgets
    # ------------------------------------------------------------------
    def set_budget(self, tenant: str, nbytes: int) -> None:
        """Declare ``tenant``'s share of the cache (0 removes the budget).

        Budgets are soft partitions: a tenant may exceed its budget while
        the cache has slack, but its chunks become the preferred eviction
        victims the moment space is needed — weighted eviction rather
        than hard reservation, so idle budgets don't strand capacity.
        """
        if nbytes <= 0:
            self._budgets.pop(tenant, None)
        else:
            self._budgets[tenant] = nbytes
        self._enforce_budget(tenant)

    def tenant_usage(self, tenant: str) -> int:
        return self._usage.get(tenant, 0)

    def tenant_budget(self, tenant: str) -> Optional[int]:
        return self._budgets.get(tenant)

    def _over_budget(self, tenant: Optional[str]) -> bool:
        if tenant is None:
            return False
        budget = self._budgets.get(tenant)
        return budget is not None and self._usage.get(tenant, 0) > budget

    def _enforce_budget(self, tenant: str) -> None:
        budget = self._budgets.get(tenant)
        if budget is None:
            return
        while self._usage.get(tenant, 0) > budget:
            victim = next(
                (k for k in self._chunks if self._owner.get(k) == tenant), None
            )
            if victim is None:
                break
            self._evict_chunk(victim)
        self._sync_bytes()

    # ------------------------------------------------------------------
    # attachment API
    # ------------------------------------------------------------------
    def attach(
        self, volume, tenant: Optional[str] = None
    ) -> "SharedCacheAttachment":
        """Wire ``volume``'s backend read path through this cache.

        The attachment is first-class: the block store consults it on
        ``fetch``/``header_of`` (no method patching), inserts are tagged
        with ``tenant`` for budget accounting, and :meth:`detach`
        restores the direct path.
        """
        attachment = SharedCacheAttachment(self, volume, tenant)
        self._attachments.append(attachment)
        return attachment

    def attachments(self) -> List["SharedCacheAttachment"]:
        return [a for a in self._attachments if a.attached]

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def get(self, object_name: str, offset: int, length: int) -> Optional[bytes]:
        """Return ``length`` bytes at ``offset`` of the object, if fully
        cached; None on any gap."""
        pieces = []
        for chunk_off, lo, hi in self._chunk_ranges(offset, length):
            chunk = self._chunks.get((object_name, chunk_off))
            if chunk is None or len(chunk) < hi:
                self._count("misses")
                return None
            pieces.append(chunk[lo:hi])
        self._count("hits")
        self._touch(object_name, offset, length)
        return b"".join(pieces)

    def insert(
        self,
        object_name: str,
        offset: int,
        data: bytes,
        tenant: Optional[str] = None,
    ) -> None:
        """Cache object data; offset may be unaligned (clipped to chunks).

        Only whole chunks are stored, except a final partial chunk which
        is kept if it starts at its chunk boundary (objects have tails).
        Inserted chunks are charged to ``tenant``'s budget, if any.
        """
        end = offset + len(data)
        for chunk_off, lo, hi in self._chunk_ranges(offset, len(data)):
            if chunk_off < offset or (chunk_off + self.chunk_size > end and hi != self.chunk_size):
                # partial at the front, or a tail that is not the object's
                # natural end: skip rather than cache a hole-y chunk
                if chunk_off < offset:
                    continue
            key = (object_name, chunk_off)
            if key in self._chunks:
                continue
            chunk = data[chunk_off - offset : chunk_off - offset + self.chunk_size]
            self._chunks[key] = chunk
            self._bytes += len(chunk)
            self._object_chunks[object_name] = (
                self._object_chunks.get(object_name, 0) + 1
            )
            if tenant is not None:
                self._owner[key] = tenant
                self._usage[tenant] = self._usage.get(tenant, 0) + len(chunk)
            self._count("insertions")
        while self._bytes > self.capacity and self._chunks:
            self._evict_chunk(self._pick_victim())
        if tenant is not None:
            self._enforce_budget(tenant)
        self._sync_bytes()

    def _pick_victim(self) -> Tuple[str, int]:
        """Weighted eviction: the LRU chunk of an over-budget tenant, or
        the global LRU chunk when every owner is within budget."""
        for key in self._chunks:
            if self._over_budget(self._owner.get(key)):
                return key
        return next(iter(self._chunks))

    def _evict_chunk(self, key: Tuple[str, int]) -> None:
        evicted = self._chunks.pop(key)
        self._bytes -= len(evicted)
        owner = self._owner.pop(key, None)
        if owner is not None:
            remaining = self._usage.get(owner, 0) - len(evicted)
            if remaining > 0:
                self._usage[owner] = remaining
            else:
                self._usage.pop(owner, None)
        self._count("evictions")
        name = key[0]
        count = self._object_chunks.get(name, 0) - 1
        if count > 0:
            self._object_chunks[name] = count
        else:
            # last chunk gone: the shared header serves no reader that
            # this cache is feeding, drop it with the data
            self._object_chunks.pop(name, None)
            if self.headers.pop(name, None) is not None:
                self._count("header_evictions")

    # ------------------------------------------------------------------
    # shared decoded headers (bounded)
    # ------------------------------------------------------------------
    def header_get(self, object_name: str):
        header = self.headers.get(object_name)
        if header is not None:
            self.headers.move_to_end(object_name)
        return header

    def header_put(self, object_name: str, header) -> None:
        if object_name in self.headers:
            self.headers.move_to_end(object_name)
            return
        self.headers[object_name] = header
        while len(self.headers) > self.max_headers:
            self.headers.popitem(last=False)
            self._count("header_evictions")

    # ------------------------------------------------------------------
    def _chunk_ranges(self, offset: int, length: int):
        """Yield (chunk_offset, lo, hi) covering [offset, offset+length)."""
        pos = offset
        end = offset + length
        while pos < end:
            chunk_off = pos // self.chunk_size * self.chunk_size
            lo = pos - chunk_off
            hi = min(end - chunk_off, self.chunk_size)
            yield chunk_off, lo, hi
            pos = chunk_off + self.chunk_size

    def _touch(self, object_name: str, offset: int, length: int) -> None:
        for chunk_off, _lo, _hi in self._chunk_ranges(offset, length):
            key = (object_name, chunk_off)
            if key in self._chunks:
                self._chunks.move_to_end(key)

    @property
    def cached_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._chunks)


class SharedCacheAttachment:
    """One volume's hookup to a :class:`SharedObjectCache`.

    The block store calls :meth:`fetch` / :meth:`header_of` on its read
    path while attached; misses fall through to the store's direct path
    and populate the shared cache (tagged with this attachment's tenant)
    for every other attached volume.
    """

    def __init__(self, shared: SharedObjectCache, volume, tenant: Optional[str]):
        self.shared = shared
        self.volume = volume
        self.tenant = tenant
        self._bs = volume.bs
        self._bs.attach_shared(self)

    @property
    def attached(self) -> bool:
        return self._bs is not None

    def detach(self) -> None:
        """Restore the volume's direct backend read path."""
        if self._bs is not None:
            self._bs.detach_shared(self)
            self._bs = None

    # -- block-store read-path hooks ------------------------------------
    def fetch(self, bs, seq: int, offset: int, length: int) -> bytes:
        name = bs.name_for_seq(seq)
        cached = self.shared.get(name, offset, length)
        if cached is not None:
            return cached
        data = bs.fetch_direct(seq, offset, length)
        self.shared.insert(name, offset, data, tenant=self.tenant)
        return data

    def header_of(self, bs, seq: int):
        name = bs.name_for_seq(seq)
        header = self.shared.header_get(name)
        if header is None:
            header = bs.header_of_direct(seq)
            self.shared.header_put(name, header)
        else:
            bs.cache_header(seq, header)
        return header


def attach_shared_cache(
    volume, shared: SharedObjectCache, tenant: Optional[str] = None
) -> SharedCacheAttachment:
    """Wire a volume's backend fetches through a shared cache.

    Compatibility entry point; equivalent to ``shared.attach(volume,
    tenant)`` and returns the attachment so callers can detach.
    """
    return shared.attach(volume, tenant=tenant)
