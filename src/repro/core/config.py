"""Tunable parameters of an LSVD volume.

Defaults follow the paper's evaluation setup (§4.1): 4-32 MiB write
batches, garbage collection between a 70 % start and 75 % stop utilisation
threshold, 4 KiB cache-log alignment, and a read cache occupying most of
the cache SSD with the write log taking ~20 %.
"""

from __future__ import annotations

from dataclasses import dataclass

SECTOR = 512
BLOCK = 4096

KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024


@dataclass
class LSVDConfig:
    """Configuration for one LSVD volume."""

    #: write batch size: a sealed batch becomes one backend object (§3.2,
    #: "e.g. 8 or 32 MB"; Table 5 simulations use 32 MiB).
    batch_size: int = 8 * MiB
    #: flush a non-empty batch after this much idle time (seconds of
    #: simulated time; the pure-logic volume flushes on drain() instead).
    batch_timeout: float = 0.5
    #: start garbage collection when live/total utilisation drops below
    #: this ratio (§3.5, 70 % in the paper's experiments).
    gc_low_watermark: float = 0.70
    #: stop cleaning once utilisation is back above this ratio (§4.6).
    gc_high_watermark: float = 0.75
    #: GC victims copied per cleaning round.
    gc_window: int = 8
    #: read/plug holes up to this many bytes when copying live data, to
    #: defragment the extent map (§4.6 "plug holes of 8 KB or less").
    defrag_hole_bytes: int = 0
    #: write a map checkpoint every N stream objects (bounds replay time).
    checkpoint_interval: int = 64
    #: fraction of the cache device used by the write log (§3.1: ~20 %).
    write_cache_fraction: float = 0.2
    #: read prefetch: fetch this many bytes around a missed extent and
    #: insert everything into the read cache (temporal locality, §3.2).
    prefetch_bytes: int = 128 * KiB
    #: read-cache insertions are rounded to this granularity.
    read_cache_align: int = BLOCK
    #: data placement: ``"sepbit"`` segregates destage and GC-relocation
    #: writes into hot/warm/cold object streams by inferred invalidation
    #: time; ``"legacy"`` keeps the single-stream baseline.
    placement: str = "sepbit"
    #: GC victim selection: ``"cost_benefit"`` (age × utilisation,
    #: Rosenblum's cleaning score) or ``"greedy"`` (least utilised first).
    gc_policy: str = "cost_benefit"

    def __post_init__(self) -> None:
        if self.batch_size < BLOCK:
            raise ValueError("batch_size must be at least one block")
        if not 0.0 < self.gc_low_watermark <= self.gc_high_watermark <= 1.0:
            raise ValueError("gc watermarks must satisfy 0 < low <= high <= 1")
        if not 0.0 < self.write_cache_fraction < 1.0:
            raise ValueError("write_cache_fraction must be in (0, 1)")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.placement not in ("sepbit", "legacy"):
            raise ValueError("placement must be 'sepbit' or 'legacy'")
        if self.gc_policy not in ("cost_benefit", "greedy"):
            raise ValueError("gc_policy must be 'cost_benefit' or 'greedy'")
