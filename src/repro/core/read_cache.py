"""FIFO read cache sharing the cache SSD (§3.1).

The paper's prototype re-uses the write-cache implementation for the read
cache with static partitioning and FIFO replacement; this module follows
that design: the cache region is a byte ring, insertions append at a ring
pointer, and whatever the pointer overwrites is evicted.  Extents inserted
come from backend range-reads, so a single insertion often carries
prefetched data written *temporally* adjacent to the missed block (§3.2).

Correctness rules:

* the write path must call :meth:`invalidate` so newly written LBAs never
  read stale from here (write-after-read hazard, §3.1), and
* the map is persisted only on clean shutdown; after a crash the cache
  starts cold (loss never affects correctness — the data is always also in
  the backend).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core import checkpoint as ckpt
from repro.core.config import BLOCK
from repro.core.errors import CorruptRecordError
from repro.core.extent_map import ExtentMap
from repro.core.log import align_up
from repro.devices.image import DiskImage
from repro.obs import NULL_SPAN, Registry, bind_metrics, metric_field

#: target identifier used in the read-cache extent map
RC_TARGET = "rc"


class ReadCache:
    """A FIFO byte-ring read cache over a DiskImage region."""

    # statistics (registry-backed; see repro.obs)
    hits = metric_field("rc.hits")
    misses = metric_field("rc.misses")
    inserted_bytes = metric_field("rc.inserted_bytes")
    evicted_bytes = metric_field("rc.evicted_bytes")

    def __init__(
        self,
        image: DiskImage,
        region_offset: int = 0,
        region_size: Optional[int] = None,
        map_slot_size: int = 1 << 20,
        obs: Optional[Registry] = None,
    ):
        self.image = image
        self.region_offset = region_offset
        total = region_size if region_size is not None else image.size - region_offset
        self.slot_size = align_up(map_slot_size)
        if total <= self.slot_size + 4 * BLOCK:
            raise ValueError("read cache region too small")
        self.data_offset = region_offset + self.slot_size
        self.data_size = (total - self.slot_size) // BLOCK * BLOCK

        self.map = ExtentMap()  # vLBA -> (RC_TARGET, absolute image offset)
        self._ring_virt = 0
        self.obs = obs if obs is not None else Registry()
        bind_metrics(self)
        self._occupancy = self.obs.gauge("rc.occupancy_bytes")

    # ------------------------------------------------------------------
    def _phys(self, virt: int) -> int:
        return self.data_offset + (virt % self.data_size)

    def read(self, lba: int, length: int, span=NULL_SPAN) -> List[Tuple[int, int, bytes]]:
        """Cached pieces of [lba, lba+length): (lba, length, data)."""
        stage = span.begin("rc_lookup")
        out = []
        for ext in self.map.lookup(lba, length):
            out.append((ext.lba, ext.length, self.image.read(ext.offset, ext.length)))
        if out:
            self.hits += 1
        else:
            self.misses += 1
        stage.end(hit=bool(out))
        return out

    def insert(self, lba: int, data: bytes, span=NULL_SPAN) -> None:
        """Add backend data to the cache, evicting FIFO as needed."""
        length = len(data)
        if length == 0:
            return
        footprint = align_up(length)
        if footprint > self.data_size:
            return  # larger than the whole cache: do not cache
        stage = span.begin("rc_insert")
        virt = self._reserve(footprint)
        phys = self._phys(virt)
        self._evict_range(phys, footprint)
        self.image.write(phys, data)
        self.map.update(lba, length, RC_TARGET, phys)
        self.inserted_bytes += length
        self._occupancy.set(min(self._ring_virt, self.data_size))
        stage.end(bytes=length)

    def invalidate(self, lba: int, length: int) -> None:
        """Drop cached data for a written range (write-after-read hazard)."""
        self.map.remove(lba, length)

    # ------------------------------------------------------------------
    def _reserve(self, footprint: int) -> int:
        virt = self._ring_virt
        room = self.data_size - (virt % self.data_size)
        if room < footprint:
            # evict the wrap slack too, then start at the boundary
            self._evict_range(self._phys(virt), room)
            virt += room
        self._ring_virt = virt + footprint
        return virt

    def _evict_range(self, phys: int, length: int) -> None:
        """Remove map entries whose data lives in [phys, phys+length)."""
        end = phys + length
        stale = [
            ext for ext in list(self.map) if not (ext.offset + ext.length <= phys or ext.offset >= end)
        ]
        dropped = 0
        for ext in stale:
            # clip precisely: only the overlapping part is evicted
            lo = max(ext.offset, phys)
            hi = min(ext.offset + ext.length, end)
            lba_lo = ext.lba + (lo - ext.offset)
            self.map.remove(lba_lo, hi - lo)
            dropped += hi - lo
        if dropped:
            self.evicted_bytes += dropped
            self.obs.trace.emit("cache_evict", bytes=dropped)

    # ------------------------------------------------------------------
    # persistence (clean shutdown only; see module docstring)
    # ------------------------------------------------------------------
    def save_map(self) -> None:
        sections = {
            "meta": ckpt.pack_json({"ring": self._ring_virt}),
            "map": ckpt.pack_rows(
                "<QQQ", [(e.lba, e.length, e.offset) for e in self.map]
            ),
        }
        blob = ckpt.encode_sections(sections)
        if len(blob) > self.slot_size:
            # degrade gracefully: an oversized map simply is not persisted
            return
        self.image.write(self.region_offset, blob)
        self.image.flush()

    def load_map(self) -> bool:
        """Try to warm the map from a clean-shutdown save; False if cold."""
        blob = self.image.read(self.region_offset, self.slot_size)
        try:
            sections = ckpt.decode_sections(blob)
            meta = ckpt.unpack_json(sections["meta"])
            entries = ckpt.unpack_rows("<QQQ", sections["map"])
        except (CorruptRecordError, KeyError, ValueError):
            return False
        self._ring_virt = meta["ring"]
        self.map = ExtentMap()
        for lba, length, offset in entries:
            self.map.update(lba, length, RC_TARGET, offset)
        return True

    def clear(self) -> None:
        self.map.clear()
        self._ring_virt = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
