"""Cross-structure invariant checking for a live volume.

Used by the test suite (and available to operators) to assert that the
many redundant structures — the three extent maps, the per-object live
accounting, the cache log geometry — agree with each other.  Every
invariant here is something recovery depends on; a violation means a
bookkeeping bug even if reads still happen to return correct data.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import List

from repro.core.volume import LSVDVolume


@dataclass
class InvariantReport:
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)


def check_volume_invariants(vol: LSVDVolume) -> InvariantReport:
    """Verify structural invariants; returns a report of violations."""
    report = InvariantReport()
    _check_object_accounting(vol, report)
    _check_write_cache_geometry(vol, report)
    _check_map_bounds(vol, report)
    return report


def _check_object_accounting(vol: LSVDVolume, report: InvariantReport) -> None:
    """Per-object live bytes must equal the map extents pointing at it."""
    live_by_object = defaultdict(int)
    for ext in vol.bs.omap.map:
        live_by_object[ext.target] += ext.length
        info = vol.bs.omap.objects.get(ext.target)
        if info is None:
            report.add(
                f"map references object {ext.target} with no accounting entry"
            )
            continue
        if ext.offset + ext.length > info.data_bytes:
            report.add(
                f"extent at lba {ext.lba} overruns object {ext.target} "
                f"({ext.offset}+{ext.length} > {info.data_bytes})"
            )
    for seq, info in vol.bs.omap.objects.items():
        expected = live_by_object.get(seq, 0)
        if info.live_bytes != expected:
            report.add(
                f"object {seq}: accounting says {info.live_bytes} live "
                f"bytes, the map says {expected}"
            )
    total_live = sum(live_by_object.values())
    if total_live > vol.size:
        report.add(f"total live {total_live} exceeds volume size {vol.size}")


def _check_write_cache_geometry(vol: LSVDVolume, report: InvariantReport) -> None:
    wc = vol.wc
    if wc.tail_virt > wc.head_virt:
        report.add(f"cache tail {wc.tail_virt} ahead of head {wc.head_virt}")
    if wc.head_virt - wc.tail_virt > wc.log_size:
        report.add("cache log holds more than its capacity")
    prev_seq = 0
    for ref in wc.records:
        if ref.seq <= prev_seq:
            report.add(f"cache record seqs not increasing at {ref.seq}")
        prev_seq = ref.seq
        if not (wc.tail_virt <= ref.virt < wc.head_virt):
            report.add(
                f"record {ref.seq} at virt {ref.virt} outside "
                f"[{wc.tail_virt}, {wc.head_virt})"
            )
    log_start = wc.log_offset
    log_end = wc.log_offset + wc.log_size
    for ext in wc.map:
        if not (log_start <= ext.offset and ext.offset + ext.length <= log_end):
            report.add(
                f"write-cache map entry at lba {ext.lba} points outside "
                f"the log area"
            )
        if ext.lba + ext.length > vol.size:
            report.add(f"write-cache map entry beyond volume end: {ext.lba}")


def _check_map_bounds(vol: LSVDVolume, report: InvariantReport) -> None:
    for ext in vol.rc.map:
        if ext.lba + ext.length > vol.size:
            report.add(f"read-cache map entry beyond volume end: {ext.lba}")
        lo = vol.rc.data_offset
        hi = vol.rc.data_offset + vol.rc.data_size
        if not (lo <= ext.offset and ext.offset + ext.length <= hi):
            report.add(
                f"read-cache map entry at lba {ext.lba} points outside "
                f"the cache ring"
            )
    for ext in vol.bs.omap.map:
        if ext.lba + ext.length > vol.size:
            report.add(f"object map entry beyond volume end: {ext.lba}")
