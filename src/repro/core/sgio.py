"""Scatter-gather buffer helpers for the zero-copy data path.

The hot read/write paths move payloads as :class:`memoryview` slices over
one backing buffer and assemble each request into a single pre-sized
:class:`bytearray`, instead of materialising a ``bytes`` copy per extent
(the per-extent ``bytes(...)`` churn LSVD009 flags).  These helpers are
the *blessed* copy points: every deliberate copy the data plane makes
goes through one of them, so the lint rule can tell the one assembly per
request apart from accidental per-extent copies.

All helpers accept any bytes-like object (``bytes``, ``bytearray``,
``memoryview``) — the union :data:`Buffer` — and are safe to hand a
buffer that outlives the call; none of them retain views.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

Buffer = Union[bytes, bytearray, memoryview]

__all__ = ["Buffer", "concat", "copy_out", "gather"]


def gather(buffer: Buffer, ranges: Sequence[Tuple[int, int]]) -> bytearray:
    """Concatenate ``(offset, length)`` slices of ``buffer`` into one
    pre-sized :class:`bytearray` — the single assembly of a seal.

    The destination is allocated once at the exact total size and filled
    through a :class:`memoryview`, so the only copy is the unavoidable
    move of the payload bytes themselves.
    """
    total = 0
    for _off, length in ranges:
        total += length
    out = bytearray(total)
    src = memoryview(buffer)
    pos = 0
    for off, length in ranges:
        out[pos : pos + length] = src[off : off + length]
        pos += length
    return out


def concat(chunks: Iterable[Buffer]) -> bytearray:
    """Join bytes-like chunks into one mutable buffer.

    ``bytes.join`` accepts memoryviews, but returns an immutable copy;
    this keeps the result a :class:`bytearray` so callers can hand it to
    an encoder that writes in place.
    """
    parts: List[Buffer] = list(chunks)
    out = bytearray(sum(len(c) for c in parts))
    pos = 0
    for chunk in parts:
        out[pos : pos + len(chunk)] = chunk
        pos += len(chunk)
    return out


def copy_out(buffer: Buffer, offset: int, length: int) -> bytes:
    """Materialise one ``bytes`` copy of ``buffer[offset:offset+length]``.

    The blessed escape hatch for interfaces that must hand out immutable
    data the caller may retain (e.g. serving reads of a batch buffer that
    is about to be recycled).
    """
    return bytes(memoryview(buffer)[offset : offset + length])
