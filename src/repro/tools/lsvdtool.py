"""lsvdtool: inspect and verify LSVD object streams.

The analogue of ``dumpe2fs``/``fsck`` for an LSVD volume: walk the object
stream of a backend store, decode headers, verify CRCs, check the
sequence chain for holes, and cross-check the superblock.  Because every
object is self-describing (§3.3), all of this works on nothing but the
object store contents.

Also usable as a module::

    python -m repro.tools.lsvdtool <directory> <volume>
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import checkpoint as ckpt_codec
from repro.core.block_store import BlockStore
from repro.core.errors import CorruptRecordError, VolumeNotFoundError
from repro.core.log import (
    KIND_CHECKPOINT,
    KIND_DATA,
    KIND_GC,
    decode_object,
    object_name,
)
from repro.core.naming import parse_object_name, stream_prefix, stream_seq
from repro.objstore.s3 import ObjectStore

_KIND_NAMES = {KIND_DATA: "data", KIND_GC: "gc", KIND_CHECKPOINT: "ckpt"}


@dataclass
class ObjectReport:
    """Findings for one stream object."""

    seq: int
    kind: str
    data_bytes: int
    extents: int
    last_record_seq: int
    crc_ok: bool
    error: Optional[str] = None


@dataclass
class StreamReport:
    """Findings for a whole volume stream."""

    volume: str
    size: int
    uuid: str
    objects: List[ObjectReport] = field(default_factory=list)
    holes: List[int] = field(default_factory=list)
    stranded: List[int] = field(default_factory=list)
    checkpoints: List[int] = field(default_factory=list)
    snapshots: Dict[str, int] = field(default_factory=dict)
    base_chain: List[Tuple[str, int]] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def consistent_prefix_end(self) -> int:
        """Last sequence number of the mountable consecutive run."""
        if not self.checkpoints:
            return 0
        start = max(self.checkpoints)
        present = {o.seq for o in self.objects if o.crc_ok}
        seq = start
        while seq + 1 in present:  # lint: disable=LSVD002 -- offline fsck walks the stream read-only
            seq += 1  # lint: disable=LSVD002
        return seq

    @property
    def healthy(self) -> bool:
        return not self.errors and all(o.crc_ok for o in self.objects)

    def summary(self) -> str:
        lines = [
            f"volume {self.volume!r}: size {self.size} bytes, uuid {self.uuid[:16]}...",
            f"  objects: {len(self.objects)}  checkpoints: {self.checkpoints}",
            f"  snapshots: {self.snapshots or '-'}  base chain: {self.base_chain or '-'}",
            f"  consistent prefix ends at seq {self.consistent_prefix_end}",
        ]
        if self.stranded:
            lines.append(f"  stranded (beyond first hole): {self.stranded}")
        if self.errors:
            lines.append("  ERRORS:")
            lines.extend(f"    - {e}" for e in self.errors)
        else:
            lines.append("  no errors")
        return "\n".join(lines)


def inspect_object(store: ObjectStore, name: str) -> ObjectReport:
    """Decode and CRC-verify a single stream object."""
    _volume, seq = parse_object_name(name)
    try:
        header, data = decode_object(store.get(name))
        return ObjectReport(
            seq=seq,
            kind=_KIND_NAMES.get(header.kind, f"?{header.kind}"),
            data_bytes=header.data_len,
            extents=len(header.extents),
            last_record_seq=header.last_record_seq,
            crc_ok=True,
        )
    except (CorruptRecordError, KeyError, ValueError) as exc:
        return ObjectReport(
            seq=seq, kind="?", data_bytes=0, extents=0,
            last_record_seq=0, crc_ok=False, error=str(exc),
        )


def inspect_stream(store: ObjectStore, volume: str) -> StreamReport:
    """Walk a volume's object stream and report its health."""
    meta = BlockStore.read_super(store, volume)
    report = StreamReport(
        volume=volume,
        size=meta["size"],
        uuid=meta["uuid"],
        snapshots=dict(meta.get("snapshots", {})),
        base_chain=[tuple(x) for x in meta.get("base_chain", [])],
    )
    names = [
        n for n in store.list(stream_prefix(volume)) if stream_seq(n, volume) is not None
    ]
    for name in sorted(names, key=lambda n: stream_seq(n, volume) or 0):
        obj = inspect_object(store, name)
        report.objects.append(obj)
        if not obj.crc_ok:
            report.errors.append(f"object seq {obj.seq}: {obj.error}")
        if obj.kind == "ckpt":
            report.checkpoints.append(obj.seq)
    # chain analysis: holes and stranded objects past the newest ckpt
    if report.checkpoints:
        newest_ckpt = max(report.checkpoints)
        present = {o.seq for o in report.objects}
        end = report.consistent_prefix_end
        report.holes = [
            s for s in range(newest_ckpt, end + 1) if s not in present
        ]
        report.stranded = sorted(s for s in present if s > end)
    else:
        report.errors.append("no checkpoint object found: volume unmountable")
    hint = meta.get("last_ckpt_seq", 0)
    if report.checkpoints and hint not in report.checkpoints:
        report.errors.append(
            f"superblock checkpoint hint {hint} does not exist "
            "(a lost superblock update; recovery will rescan)"
        )
    return report


def fsck_volume(store: ObjectStore, volume: str) -> StreamReport:
    """inspect_stream + deep verification of checkpoint payloads."""
    report = inspect_stream(store, volume)
    for seq in report.checkpoints:
        try:
            _header, payload = decode_object(store.get(object_name(volume, seq)))
            sections = ckpt_codec.decode_sections(payload)
            ckpt_codec.unpack_rows("<QQQQ", sections["map"])
            ckpt_codec.unpack_json(sections["meta"])
        except (CorruptRecordError, KeyError, ValueError) as exc:
            report.errors.append(f"checkpoint {seq}: payload damaged: {exc}")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    from repro.shard import open_directory_store

    parser = argparse.ArgumentParser(
        prog="lsvdtool", description="inspect LSVD object streams"
    )
    parser.add_argument("root", help="directory object store root")
    parser.add_argument("volume", help="volume name")
    parser.add_argument("--objects", action="store_true", help="per-object detail")
    args = parser.parse_args(argv)

    # sharded roots are self-describing; the fsck walks the global stream
    store = open_directory_store(args.root)
    try:
        report = fsck_volume(store, args.volume)
    except VolumeNotFoundError as exc:
        print(f"error: {exc}")
        return 2
    print(report.summary())
    if args.objects:
        for obj in report.objects:
            flag = "ok " if obj.crc_ok else "BAD"
            print(
                f"  [{flag}] seq={obj.seq:>8} kind={obj.kind:<5} "
                f"data={obj.data_bytes:>10} extents={obj.extents:>6} "
                f"last_rec={obj.last_record_seq}"
            )
    return 0 if report.healthy else 1


if __name__ == "__main__":
    raise SystemExit(main())
