"""Operational tooling around LSVD volumes."""

from repro.tools.lsvdtool import (
    StreamReport,
    fsck_volume,
    inspect_object,
    inspect_stream,
)

__all__ = ["StreamReport", "fsck_volume", "inspect_object", "inspect_stream"]
