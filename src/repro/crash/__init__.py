"""Failure injection and consistency verification (§2.2, §3.4, Table 4).

The paper's crash tests copy a 74K-file tree, reset the VM, delete the
cache, and check whether the filesystem still mounts.  We verify the
underlying guarantee directly and exhaustively:

* every write carries a unique, self-describing stamp;
* :class:`~repro.crash.consistency.HistoryRecorder` remembers the global
  acknowledgement order and commit-barrier positions;
* :class:`~repro.crash.consistency.PrefixChecker` reads the recovered
  image and decides whether it equals ``apply(history[:k])`` for some k —
  prefix consistency — and, when the cache survived, whether k covers the
  last commit barrier (no committed write lost).
"""

from repro.crash.consistency import (
    HistoryRecorder,
    PrefixChecker,
    Verdict,
    decode_stamp,
    stamp_data,
)

__all__ = [
    "HistoryRecorder",
    "PrefixChecker",
    "Verdict",
    "decode_stamp",
    "stamp_data",
]
