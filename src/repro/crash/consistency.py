"""Prefix-consistency verification via stamped writes.

Definition (§2.2): if the system crashes at time t, the recovered state
must reflect (a) *all* writes acknowledged before some t' <= t and (b)
*no* writes issued after t'.  With the local cache intact the stronger
property holds: t' must lie at or after the last completed commit barrier
(no committed write may be lost).

Method: every write's payload is a repetition of its 16-byte stamp
(magic + write id), so the final writer of any 512-byte sector can be read
back from the image.  The checker derives the only possible cut point —
the largest observed id — and verifies every sector against the history
prefix up to that cut.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

_STAMP = struct.Struct("<8sQ")
_MAGIC = b"LSVDSTMP"
SECTOR = 512


def stamp_data(write_id: int, length: int) -> bytes:
    """Build a payload of ``length`` bytes carrying ``write_id``.

    Each 512-byte sector is filled with repetitions of the stamp, so any
    aligned fragment of the write identifies its writer.
    """
    if length % SECTOR:
        raise ValueError("stamped writes must be sector aligned")
    unit = _STAMP.pack(_MAGIC, write_id)
    sector = (unit * (SECTOR // len(unit) + 1))[:SECTOR]
    return sector * (length // SECTOR)


def decode_stamp(sector: bytes) -> Optional[int]:
    """Recover the writer id from one sector; None if unwritten/garbage."""
    if len(sector) < _STAMP.size:
        return None
    magic, write_id = _STAMP.unpack_from(sector, 0)
    if magic != _MAGIC:
        return None
    # verify the whole sector is uniform (detects torn sectors)
    unit = _STAMP.pack(_MAGIC, write_id)
    expected = (unit * (SECTOR // len(unit) + 1))[: len(sector)]
    if sector != expected:
        return None
    return write_id


@dataclass
class _WriteRecord:
    write_id: int
    offset: int
    length: int


@dataclass
class Verdict:
    """Outcome of a consistency check."""

    consistent: bool
    cut: int  # the prefix point k (write id) the state corresponds to
    committed_through: int  # last write id covered by a commit barrier
    lost_committed: bool  # True if a committed write is missing
    problems: List[str] = field(default_factory=list)

    @property
    def ok_prefix(self) -> bool:
        return self.consistent

    @property
    def ok_committed(self) -> bool:
        return self.consistent and not self.lost_committed


class HistoryRecorder:
    """Issue stamped writes against a volume and remember the history."""

    def __init__(self, write_fn: Callable[[int, bytes], None], flush_fn=None):
        self._write_fn = write_fn
        self._flush_fn = flush_fn
        self.history: List[_WriteRecord] = []
        self.barrier_after: int = 0  # highest write id covered by a barrier
        self._next_id = 1

    def write(self, offset: int, length: int) -> int:
        """Perform one stamped write; returns its id."""
        write_id = self._next_id
        self._next_id += 1
        self._write_fn(offset, stamp_data(write_id, length))
        self.history.append(_WriteRecord(write_id, offset, length))
        return write_id

    def barrier(self) -> None:
        """Commit barrier: everything so far becomes 'committed'."""
        if self._flush_fn is not None:
            self._flush_fn()
        if self.history:
            self.barrier_after = self.history[-1].write_id

    @property
    def writes_issued(self) -> int:
        return len(self.history)


def _dump_flightrec_on_failure(problems: List[str]) -> None:
    """Drop the last recorder's flight bundle beside the bench artifacts.

    Only fires when the output directory already exists (the repo checkout
    and CI both have ``bench-out/``), so checker unit tests running in a
    scratch cwd never litter; a dump failure never masks the verdict.
    """
    out_dir = os.environ.get("REPRO_FLIGHTREC_DIR", "bench-out")
    if not os.path.isdir(out_dir):
        return
    from repro.obs.spans import dump_last_flight

    try:
        dump_last_flight(
            os.path.join(out_dir, "flightrec_crash_check.json"),
            reason=f"crash-consistency failure: {problems[0]}",
        )
    except OSError:
        pass


class PrefixChecker:
    """Verify a recovered image against a recorded history."""

    def __init__(self, recorder: HistoryRecorder):
        self.recorder = recorder

    def check(
        self,
        read_fn: Callable[[int, int], bytes],
        require_committed: bool = False,
    ) -> Verdict:
        """Read back every sector the history touched and validate.

        ``require_committed`` additionally demands that the cut covers the
        last commit barrier (the with-cache guarantee).
        """
        history = self.recorder.history
        # last writer per sector as of each prefix: build per-sector writer
        # lists once
        writers: Dict[int, List[int]] = {}
        spans: Dict[int, Tuple[int, int]] = {}
        for rec in history:
            spans[rec.write_id] = (rec.offset, rec.length)
            for sector in range(rec.offset // SECTOR, (rec.offset + rec.length) // SECTOR):
                writers.setdefault(sector, []).append(rec.write_id)

        observed: Dict[int, Optional[int]] = {}
        for sector, ids in writers.items():
            data = read_fn(sector * SECTOR, SECTOR)
            observed[sector] = decode_stamp(data) if any(data) else 0

        problems: List[str] = []
        cut = max((wid for wid in observed.values() if wid), default=0)
        known_ids = {rec.write_id for rec in history}
        for sector, wid in observed.items():
            if wid is None:
                problems.append(f"sector {sector}: torn/garbled content")
                continue
            if wid and wid not in known_ids:
                problems.append(f"sector {sector}: unknown stamp {wid}")
                continue
            expected = 0
            for candidate in writers[sector]:
                if candidate <= cut:
                    expected = candidate
            if wid != expected:
                problems.append(
                    f"sector {sector}: has write {wid}, but prefix through "
                    f"{cut} requires write {expected}"
                )
        committed_through = self.recorder.barrier_after
        lost_committed = cut < committed_through
        consistent = not problems
        if require_committed and lost_committed:
            problems.append(
                f"cut {cut} < last committed write {committed_through}: "
                "committed data lost"
            )
        if problems:
            _dump_flightrec_on_failure(problems)
        return Verdict(
            consistent=consistent,
            cut=cut,
            committed_through=committed_through,
            lost_committed=lost_committed,
            problems=problems,
        )
