"""Command-line interface for LSVD volumes on a directory object store.

Gives the library the operational surface of a real block-storage tool::

    python -m repro.cli ROOT create  VOLUME --size 64M [--shards N]
    python -m repro.cli ROOT info    VOLUME
    python -m repro.cli ROOT import  VOLUME FILE [--offset N]
    python -m repro.cli ROOT export  VOLUME FILE [--offset N --length N]
    python -m repro.cli ROOT snapshot VOLUME NAME
    python -m repro.cli ROOT clone   BASE NEW [--snapshot NAME]
    python -m repro.cli ROOT replicate VOLUME TARGET_ROOT [--shards N]
    python -m repro.cli ROOT shard-status [VOLUME]
    python -m repro.cli ROOT fsck    VOLUME
    python -m repro.cli ROOT scrub   VOLUME
    python -m repro.cli ROOT lint    [PATHS...]
    python -m repro.cli ROOT stats   [VOLUME] [--exercise N] [--format F]
                                     [--from-dump FILE]
    python -m repro.cli ROOT trace   VOLUME [--exercise N] [--limit N]
    python -m repro.cli ROOT spans   VOLUME [--exercise N] [--slowest K]
    python -m repro.cli ROOT flightrec dump VOLUME [--exercise N] [--out F]

``ROOT`` is a directory acting as the S3 bucket; the cache SSD is an
ephemeral in-memory image (each invocation mounts with ``cache_lost``,
i.e. from the backend's consistent prefix — exactly the crash-safe path).
Roots created with ``--shards N`` carry a ``shard-layout.json`` manifest
and every command transparently scatter-gathers across the shards.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core import LSVDConfig, LSVDVolume
from repro.core.errors import LSVDError, VolumeExistsError, VolumeNotFoundError
from repro.core.replication import Replicator
from repro.core.scrub import Scrubber
from repro.devices.image import DiskImage
from repro.fleet.manager import FleetError
from repro.objstore.s3 import ObjectStore
from repro.shard import (
    LAYOUTS,
    ShardedObjectStore,
    open_directory_store,
    sharded_directory_store,
)
from repro.tools import fsck_volume

MiB = 1 << 20
DEFAULT_CACHE = 16 * MiB


def parse_size(text: str) -> int:
    """'64M', '1G', '512K', or plain bytes."""
    text = text.strip().upper()
    factor = 1
    if text and text[-1] in "KMGT":
        factor = 1024 ** ("KMGT".index(text[-1]) + 1)
        text = text[:-1]
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad size {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError("size must be positive")
    return value * factor


def _config() -> LSVDConfig:
    return LSVDConfig(batch_size=1 * MiB, checkpoint_interval=16)


def _open(store: ObjectStore, name: str) -> LSVDVolume:
    return LSVDVolume.open(
        store, name, DiskImage(DEFAULT_CACHE), _config(), cache_lost=True
    )


def _open_observed(store: ObjectStore, name: str):
    """Mount with a fresh registry, timing the backend via TimedStore.

    The pure-logic core has no clock, so backend latency percentiles come
    from the TimedStore cost model; its virtual clock also stamps the
    trace (same determinism contract as the simulated runtime).
    """
    from repro.obs import Registry, TimedStore

    obs = Registry()
    if isinstance(store, ShardedObjectStore):
        # route the store's shard.* counters into the reported registry
        store.obs = obs
    timed = TimedStore(store, obs)
    obs.trace.clock = timed.now
    obs.spans.clock = timed.now
    vol = LSVDVolume.open(
        timed, name, DiskImage(DEFAULT_CACHE), _config(), cache_lost=True, obs=obs
    )
    return vol, obs


def _exercise(vol: LSVDVolume, ops: int) -> None:
    """Deterministic mixed workload behind ``stats``/``trace --exercise``.

    Overwrite-heavy 4 KiB writes confined to a small window (so garbage
    accumulates and GC fires), periodic flushes, then a read pass over the
    same window after a drain (so reads miss the write cache and exercise
    the read cache).  Offsets come from a fixed LCG — no randomness, two
    identical invocations emit byte-identical traces.
    """
    block = 4096
    # confine writes to 1 MiB so overwrites push live/total below the GC
    # watermark within a few hundred ops
    window = max(1, min(vol.size, 1 * MiB) // block)
    state = 1
    offsets = []
    for i in range(ops):
        state = (state * 48271) % 2147483647
        offset = (state % window) * block
        offsets.append(offset)
        vol.write(offset, bytes([i % 256]) * block)
        if i % 16 == 15:
            vol.flush()
    vol.drain()
    for offset in offsets[: max(1, ops // 2)]:
        vol.read(offset, block)
        vol.read(offset, block)  # second read is a read-cache hit


def _stats_headline(snapshot: dict) -> str:
    """The numbers the paper's evaluation leads with, plus the commit
    pipeline's health (queue depth, barrier coalescing).

    Works on a **snapshot dict** (``Registry.snapshot()`` or the
    ``metrics`` section of a ``stats --format json`` dump reloaded from
    disk), never on live metric objects — so the same headline renders
    post-mortem via ``stats --from-dump`` when the process that ran the
    workload is long gone.
    """

    def scalar(name: str, default: float = 0.0) -> float:
        value = snapshot.get(name, default)
        return float(value) if isinstance(value, (int, float)) else default

    def hist(name: str) -> Optional[dict]:
        value = snapshot.get(name)
        return value if isinstance(value, dict) else None

    client = scalar("store.client_bytes")
    backend = (
        scalar("store.data_bytes")
        + scalar("store.gc_bytes")
        + scalar("store.ckpt_bytes")
    )
    hits = scalar("rc.hits")
    lookups = hits + scalar("rc.misses")
    put = hist("backend.put_latency_s")
    p99 = float(put["p99"]) if put else 0.0  # type: ignore[arg-type]
    sizes = hist("barrier.group_size")
    if sizes and sizes.get("count"):
        mean = float(sizes["sum"]) / float(sizes["count"])  # type: ignore[arg-type]
        group = f"mean {mean:.2f} / max {float(sizes['max']):.0f}"  # type: ignore[arg-type]
    else:
        # pure-model stack: the write cache's flush-elision counters are
        # the coalescing signal (no timed commit worker to sample)
        group = (
            f"{int(scalar('wc.barriers_coalesced'))} coalesced"
            f" / {int(scalar('wc.device_flushes'))} device flushes"
        )
    lines = [
        f"write amplification:  {backend / client:.3f}" if client else
        "write amplification:  n/a",
        f"read cache hit rate:  {hits / lookups:.3f}" if lookups else
        "read cache hit rate:  n/a",
        f"gc bytes relocated:   {scalar('gc.bytes_relocated') / MiB:.2f} MiB",
        f"backend put p99:      {p99 * 1e3:.3f} ms",
        f"destage queue depth:  {int(scalar('destage.queue_depth'))}",
        f"barrier group size:   {group}",
    ]
    # per-class GC/WA section (temperature-aware placement); older dumps
    # predate the placement layer and simply have no store.class_* keys
    class_names = [
        name for name in ("hot", "warm", "cold")
        if f"store.class_{name}.bytes" in snapshot
    ]
    if class_names:
        lines.append("gc per class:")
        for name in class_names:
            prefix = f"store.class_{name}"
            total = scalar(f"{prefix}.data_bytes")
            live = scalar(f"{prefix}.live_bytes")
            occupancy = f"{live / total:.3f}" if total else "n/a"
            lines.append(
                f"  {name + ':':<6} "
                f"{scalar(f'{prefix}.bytes') / MiB:7.2f} MiB written, "
                f"{scalar(f'{prefix}.gc_bytes') / MiB:7.2f} MiB relocated, "
                f"occupancy {occupancy}"
            )
    sc_lookups = scalar("sharedcache.hits") + scalar("sharedcache.misses")
    if sc_lookups:
        lines.append(
            f"shared cache:         hit rate "
            f"{scalar('sharedcache.hits') / sc_lookups:.3f}, "
            f"{scalar('sharedcache.bytes') / MiB:.2f} MiB cached, "
            f"{int(scalar('sharedcache.evictions'))} evictions"
        )
    # per-tenant QoS section (fleet.<tenant>.admitted names the tenants)
    suffix = ".admitted"
    tenants = sorted(
        name[len("fleet."):-len(suffix)]
        for name in snapshot
        if name.startswith("fleet.") and name.endswith(suffix)
        and not name.endswith(".bytes" + suffix)
    )
    for tenant in tenants:
        prefix = f"fleet.{tenant}"
        lines.append(
            f"tenant {tenant}:  "
            f"admitted {int(scalar(f'{prefix}.admitted'))}, "
            f"throttled {int(scalar(f'{prefix}.throttled'))}, "
            f"{scalar(f'{prefix}.bytes_admitted') / MiB:.2f} MiB, "
            f"queue {int(scalar(f'{prefix}.queue_depth'))}"
        )
    return "\n".join(lines)


def _span_attribution(spans) -> str:
    """Stage-attribution section of ``stats``: each request's completion
    latency decomposed into additive per-stage components."""
    from repro.obs.spans import format_decomposition, format_stage_table

    analyzer = spans.analyzer
    if not len(analyzer):
        return ""
    parts = [
        "stage attribution (additive critical path, virtual seconds):",
        format_stage_table(analyzer),
    ]
    for name in analyzer.root_names():
        decomp = format_decomposition(analyzer, name)
        if decomp:
            parts.append(f"{name}:")
            parts.append("  " + decomp.replace("\n", "\n  "))
    return "\n".join(parts)


def _emit(text: str, out: Optional[str]) -> None:
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {out}")
    elif text:
        sys.stdout.write(text if text.endswith("\n") else text + "\n")


def cmd_create(store, args) -> int:
    if args.shards > 1 or args.layout != "round-robin":
        store = sharded_directory_store(args.root, args.shards, args.layout)
    LSVDVolume.create(store, args.volume, args.size, DiskImage(DEFAULT_CACHE), _config())
    extra = ""
    if isinstance(store, ShardedObjectStore):
        extra = (
            f" across {store.router.n_shards} shards"
            f" ({store.router.layout.name})"
        )
    print(f"created {args.volume!r}: {args.size} bytes{extra}")
    return 0


def cmd_info(store, args) -> int:
    from repro.core.block_store import BlockStore

    meta = BlockStore.read_super(store, args.volume)
    vol = _open(store, args.volume)
    live, total = vol.occupancy()
    print(f"volume:     {args.volume}")
    print(f"size:       {meta['size']} bytes")
    print(f"uuid:       {meta['uuid']}")
    print(f"snapshots:  {', '.join(meta.get('snapshots', {})) or '-'}")
    print(f"base chain: {meta.get('base_chain') or '-'}")
    print(f"objects:    {len(store.list(args.volume + '.'))}")
    print(f"backend:    {store.total_bytes(args.volume + '.') / MiB:.2f} MiB "
          f"({live / MiB:.2f} MiB live, {max(total - live, 0) / MiB:.2f} MiB garbage)")
    return 0


def cmd_import(store, args) -> int:
    vol = _open(store, args.volume)
    with open(args.file, "rb") as fh:
        data = fh.read()
    pad = (-len(data)) % 512
    vol.write(args.offset, data + b"\x00" * pad)
    vol.close()
    print(f"imported {len(data)} bytes at offset {args.offset}")
    return 0


def cmd_export(store, args) -> int:
    vol = _open(store, args.volume)
    length = args.length if args.length else vol.size - args.offset
    with open(args.file, "wb") as fh:
        pos = args.offset
        remaining = length
        while remaining > 0:
            take = min(remaining, 4 * MiB)
            fh.write(vol.read(pos, take))
            pos += take
            remaining -= take
    print(f"exported {length} bytes to {args.file}")
    return 0


def cmd_snapshot(store, args) -> int:
    vol = _open(store, args.volume)
    seq = vol.snapshot(args.name)
    vol.close()
    print(f"snapshot {args.name!r} at sequence {seq}")
    return 0


def cmd_clone(store, args) -> int:
    LSVDVolume.clone(
        store, args.base, args.new, DiskImage(DEFAULT_CACHE), _config(),
        at_snapshot=args.snapshot,
    )
    origin = f"{args.base}@{args.snapshot}" if args.snapshot else args.base
    print(f"cloned {origin} -> {args.new}")
    return 0


def cmd_replicate(store, args) -> int:
    if args.shards:
        # the replica may be sharded differently from the source: routing
        # is per-store, the object stream itself is placement-agnostic
        target: ObjectStore = sharded_directory_store(
            args.target_root, args.shards, args.layout
        )
    else:
        target = open_directory_store(args.target_root)
    rep = Replicator(store, target, args.volume, min_age=0.0)
    rep.observe(now=0.0)
    copied = rep.step(now=1.0)
    print(f"replicated {len(copied)} objects "
          f"({rep.stats.bytes_copied / MiB:.2f} MiB) to {args.target_root}")
    if rep.stats.checkpoints_deferred:
        print(f"deferred {rep.stats.checkpoints_deferred} checkpoint(s); "
              "run again after the source checkpoints")
    return 0


def cmd_fsck(store, args) -> int:
    report = fsck_volume(store, args.volume)
    print(report.summary())
    return 0 if report.healthy else 1


def cmd_lint(store, args) -> int:
    """Static invariant gate; also available standalone as ``repro-lint``."""
    from repro.lint.cli import main as lint_main

    argv = list(args.paths) + ["--format", args.format]
    if args.rule:
        argv += ["--rule", args.rule]
    if args.explain:
        argv.append("--explain")
    return lint_main(argv)


def cmd_scrub(store, args) -> int:
    vol = _open(store, args.volume)
    scrubber = Scrubber(vol.bs)
    findings = scrubber.full_pass()
    print(f"scrubbed {scrubber.stats.objects_checked} objects, "
          f"{scrubber.stats.bytes_verified / MiB:.2f} MiB")
    for finding in findings:
        print(f"  seq {finding.seq}: {finding.problem}")
    return 0 if not findings else 1


def cmd_shard_status(store, args) -> int:
    """Per-shard occupancy and balance for a sharded root."""
    if not isinstance(store, ShardedObjectStore):
        prefix = args.volume + "." if args.volume else ""
        names = store.list(prefix)
        print("not sharded (no shard-layout.json manifest): 1 backend")
        print(f"objects: {len(names)}  "
              f"bytes: {sum(store.size(n) for n in names) / MiB:.2f} MiB")
        return 0
    router = store.router
    prefix = args.volume + "." if args.volume else ""
    usage = store.shard_usage(prefix)
    total_objects = sum(count for count, _nbytes in usage)
    total_bytes = sum(nbytes for _count, nbytes in usage)
    scope = f"volume {args.volume!r}" if args.volume else "all objects"
    print(f"{router.n_shards} shards, layout {router.layout.name!r} ({scope})")
    for index, (count, nbytes) in enumerate(usage):
        share = (count / total_objects * 100) if total_objects else 0.0
        print(f"  {router.shard_name(index)}: {count:>6} objects  "
              f"{nbytes / MiB:>10.2f} MiB  {share:5.1f}%")
    print(f"  total:    {total_objects:>6} objects  {total_bytes / MiB:>10.2f} MiB")
    if total_objects:
        fair = total_objects / router.n_shards
        hottest = max(count for count, _nbytes in usage)
        print(f"  imbalance: {hottest / fair:.3f} "
              "(1.0 = even; hottest shard vs fair share)")
    return 0


def cmd_stats(store, args) -> int:
    from repro.analysis.report import registry_table
    from repro.obs import metrics_json, prometheus_text, registry_csv

    if args.from_dump:
        # post-mortem: render the headline from a metrics dump on disk
        # (`stats --format json --out FILE` from an earlier run)
        with open(args.from_dump, encoding="utf-8") as fh:
            document = json.load(fh)
        snapshot = document.get("metrics", document)
        if not isinstance(snapshot, dict):
            print(f"error: no metrics section in {args.from_dump}",
                  file=sys.stderr)
            return 2
        _emit(_stats_headline(snapshot) + "\n", args.out)
        return 0
    if not args.volume:
        print("error: stats needs VOLUME (or --from-dump FILE)", file=sys.stderr)
        return 2
    vol, obs = _open_observed(store, args.volume)
    if args.exercise:
        _exercise(vol, args.exercise)
    vol.close()
    # close()'s final seal can still move bytes between classes; refresh
    # the store.class_* occupancy gauges after it so the headline (and a
    # json dump replayed later through --from-dump) reflects the closed
    # image, not the last GC round
    vol.bs.occupancy_by_class()
    # the store's own operation counters (merged across shards when the
    # root is sharded) land in the same snapshot as the stack metrics,
    # as do the span-tree aggregates (span.trees, span.stage.*)
    store.stats.publish(obs)
    obs.spans.publish(obs)
    if args.format == "prometheus":
        text = prometheus_text(obs)
    elif args.format == "json":
        text = metrics_json(obs, extra={"volume": args.volume})
    elif args.format == "csv":
        text = registry_csv(obs)
    else:
        table = registry_table(obs, caption=f"metrics for {args.volume!r}")
        text = table.render() + "\n\n" + _stats_headline(obs.snapshot()) + "\n"
        attribution = _span_attribution(obs.spans)
        if attribution:
            text += "\n" + attribution + "\n"
    _emit(text, args.out)
    return 0


def cmd_spans(store, args) -> int:
    """Slowest-K span trees plus the per-stage attribution table."""
    from repro.obs.spans import format_stage_table, format_tree

    vol, obs = _open_observed(store, args.volume)
    if args.exercise:
        _exercise(vol, args.exercise)
    vol.close()
    spans = obs.spans
    if spans.completed == 0:
        _emit("no completed span trees (mount-only; try --exercise N)\n",
              args.out)
        return 0
    lines = [
        f"{spans.completed} trees completed, {spans.open_roots} open, "
        f"{spans.slo_breaches} SLO breaches",
        "",
        f"slowest {min(args.slowest, spans.completed)} trees "
        "(~ marks queue wait):",
    ]
    for root in spans.slowest(args.slowest):
        lines.append("")
        lines.append(format_tree(root))
    lines += ["", format_stage_table(spans.analyzer, args.name)]
    _emit("\n".join(lines) + "\n", args.out)
    return 0


def cmd_flightrec(store, args) -> int:
    """Flight-recorder debug bundle (ring of last-N complete trees)."""
    vol, obs = _open_observed(store, args.volume)
    if args.exercise:
        _exercise(vol, args.exercise)
    vol.close()
    if args.out:
        obs.spans.dump_debug_bundle(args.out, reason="repro flightrec dump")
        print(f"wrote {args.out} ({len(obs.spans.flight)} trees)")
    else:
        bundle = obs.spans.debug_bundle(reason="repro flightrec dump")
        sys.stdout.write(json.dumps(bundle, sort_keys=True, indent=2) + "\n")
    return 0


def cmd_trace(store, args) -> int:
    vol, obs = _open_observed(store, args.volume)
    if args.exercise:
        _exercise(vol, args.exercise)
    vol.close()
    events = obs.trace.events(args.type)
    if args.limit:
        events = events[-args.limit :]
    text = "".join(event.to_json() + "\n" for event in events)
    _emit(text, args.out)
    return 0


def cmd_fleet(store, args) -> int:
    """Fleet registry operations over the root's object store."""
    from repro.fleet import FleetManager, QoSLimits

    fleet = FleetManager(store)
    if args.action in ("create", "delete") and not args.name:
        raise ValueError(f"fleet {args.action} requires a vdisk name")
    if args.action == "create":
        limits = QoSLimits(iops=args.iops, bytes_per_s=args.bytes_per_s)
        fleet.create(
            args.name,
            args.size,
            tenant=args.tenant,
            limits=limits,
            cache_budget=args.cache_budget,
        )
        print(f"created {args.name!r} ({args.size / MiB:.0f} MiB, "
              f"tenant {args.tenant!r})")
        return 0
    if args.action == "delete":
        deleted = fleet.delete(args.name)
        print(f"deleted {args.name!r} ({deleted} backend objects)")
        return 0
    if args.action == "recover":
        report = fleet.recover()
        for name in sorted(report):
            entry = report[name]
            print(f"  {name:<16} tenant {entry['tenant']:<12} "
                  f"{entry['size'] / MiB:>8.0f} MiB  "
                  f"{entry['objects']:>5} objects")
        print(f"recovered {len(report)} vdisk(s)")
        fleet.close()
        return 0
    # status
    records = fleet.vdisks()
    if not records:
        print("no vdisks registered")
        return 0
    print(f"{'vdisk':<16} {'tenant':<12} {'size':>10}  "
          f"{'iops':>8}  {'bytes/s':>10}  {'cache':>10}")
    for record in records:
        lim = record.limits
        print(f"{record.name:<16} {record.tenant:<12} "
              f"{record.size / MiB:>6.0f} MiB  "
              f"{lim.iops:>8.0f}  {lim.bytes_per_s:>10.0f}  "
              f"{record.cache_budget / MiB:>6.1f} MiB")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="LSVD volume management"
    )
    parser.add_argument("root", help="object-store directory (the 'bucket')")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("create", help="create a new volume")
    p.add_argument("volume")
    p.add_argument("--size", type=parse_size, default=64 * MiB)
    p.add_argument("--shards", type=int, default=1, metavar="N",
                   help="stripe the object stream across N backend shards")
    p.add_argument("--layout", choices=sorted(LAYOUTS), default="round-robin",
                   help="seq->shard placement (with --shards)")
    p.set_defaults(fn=cmd_create)

    p = sub.add_parser("info", help="show volume metadata and usage")
    p.add_argument("volume")
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("import", help="write a file's bytes into the volume")
    p.add_argument("volume")
    p.add_argument("file")
    p.add_argument("--offset", type=parse_size, default=0)
    p.set_defaults(fn=cmd_import)

    p = sub.add_parser("export", help="read volume bytes out to a file")
    p.add_argument("volume")
    p.add_argument("file")
    p.add_argument("--offset", type=parse_size, default=0)
    p.add_argument("--length", type=parse_size, default=0)
    p.set_defaults(fn=cmd_export)

    p = sub.add_parser("snapshot", help="create a snapshot")
    p.add_argument("volume")
    p.add_argument("name")
    p.set_defaults(fn=cmd_snapshot)

    p = sub.add_parser("clone", help="create a copy-on-write clone")
    p.add_argument("base")
    p.add_argument("new")
    p.add_argument("--snapshot", default=None)
    p.set_defaults(fn=cmd_clone)

    p = sub.add_parser("replicate", help="copy the object stream elsewhere")
    p.add_argument("volume")
    p.add_argument("target_root")
    p.add_argument("--shards", type=int, default=0, metavar="N",
                   help="create the replica sharded across N backends")
    p.add_argument("--layout", choices=sorted(LAYOUTS), default="round-robin",
                   help="replica placement (with --shards)")
    p.set_defaults(fn=cmd_replicate)

    p = sub.add_parser("shard-status", help="per-shard occupancy and balance")
    p.add_argument("volume", nargs="?", default=None,
                   help="limit to one volume's stream (default: all objects)")
    p.set_defaults(fn=cmd_shard_status)

    p = sub.add_parser("fsck", help="verify the object stream")
    p.add_argument("volume")
    p.set_defaults(fn=cmd_fsck)

    p = sub.add_parser("scrub", help="deep-verify every object's CRC")
    p.add_argument("volume")
    p.set_defaults(fn=cmd_scrub)

    p = sub.add_parser("lint", help="check source against LSVD invariants")
    p.add_argument("paths", nargs="*", default=["src/repro"])
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--rule", default=None, metavar="CODE",
                   help="restrict the run (or --explain) to one rule")
    p.add_argument("--explain", action="store_true",
                   help="print rule invariants/examples/paper sections")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("stats", help="mount, optionally exercise, dump metrics")
    p.add_argument("volume", nargs="?", default=None)
    p.add_argument("--exercise", type=int, default=0, metavar="N",
                   help="run a deterministic N-op workload before reporting")
    p.add_argument("--format", choices=("table", "prometheus", "json", "csv"),
                   default="table")
    p.add_argument("--from-dump", default=None, metavar="FILE",
                   help="render the headline from a saved metrics JSON dump "
                        "instead of mounting")
    p.add_argument("--out", default=None, help="write to a file instead of stdout")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("spans", help="slowest span trees + stage attribution")
    p.add_argument("volume")
    p.add_argument("--exercise", type=int, default=0, metavar="N",
                   help="run a deterministic N-op workload before reporting")
    p.add_argument("--slowest", type=int, default=5, metavar="K",
                   help="how many slowest trees to print")
    p.add_argument("--name", default=None,
                   help="restrict the stage table to one root name")
    p.add_argument("--out", default=None, help="write to a file instead of stdout")
    p.set_defaults(fn=cmd_spans)

    p = sub.add_parser("flightrec", help="flight-recorder debug bundle")
    p.add_argument("action", choices=("dump",),
                   help="'dump': write the last-N-trees JSON bundle")
    p.add_argument("volume")
    p.add_argument("--exercise", type=int, default=0, metavar="N",
                   help="run a deterministic N-op workload before dumping")
    p.add_argument("--out", default=None, help="write to a file instead of stdout")
    p.set_defaults(fn=cmd_flightrec)

    p = sub.add_parser("fleet", help="multi-tenant vdisk registry operations")
    p.add_argument("action", choices=("create", "status", "delete", "recover"))
    p.add_argument("name", nargs="?", default=None,
                   help="vdisk name (create/delete)")
    p.add_argument("--tenant", default="default",
                   help="owning tenant (create)")
    p.add_argument("--size", type=parse_size, default=64 * MiB)
    p.add_argument("--iops", type=float, default=0.0,
                   help="per-tenant IOPS cap (0 = unlimited)")
    p.add_argument("--bytes-per-s", type=parse_size, default=0,
                   help="per-tenant throughput cap (0 = unlimited)")
    p.add_argument("--cache-budget", type=parse_size, default=0,
                   help="shared-cache byte budget for the tenant")
    p.set_defaults(fn=cmd_fleet)

    p = sub.add_parser("trace", help="dump the structured event trace as JSONL")
    p.add_argument("volume")
    p.add_argument("--exercise", type=int, default=0, metavar="N",
                   help="run a deterministic N-op workload before dumping")
    p.add_argument("--type", default=None, help="only events of this type")
    p.add_argument("--limit", type=int, default=0, help="newest N events only")
    p.add_argument("--out", default=None, help="write to a file instead of stdout")
    p.set_defaults(fn=cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        # sharded roots are self-describing (shard-layout.json manifest)
        store = open_directory_store(args.root)
        return args.fn(store, args)
    except (VolumeNotFoundError, VolumeExistsError, LSVDError, FleetError,
            ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
