"""Common machinery for queued storage devices.

A device is a :class:`~repro.sim.resources.Resource` of ``channels``
service slots plus a per-operation service-time model supplied by the
subclass.  Completion events fire after (queue wait + service time +
pipeline latency); sustained throughput is ``channels / service_time``.

Every device keeps :class:`DeviceStats` — the same counters the paper
collects from ``/proc/diskstats`` (ops, sectors, busy time) to compute
backend utilisation in §4.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.engine import Event, Simulator
from repro.sim.resources import Resource

READ = "read"
WRITE = "write"
#: journal/WAL append: group-committed sequential metadata write that
#: does not move an HDD's head (WALs live on flash or are batched)
LOGWRITE = "logwrite"
FLUSH = "flush"


@dataclass
class DeviceStats:
    """Operation and busy-time counters, /proc/diskstats style."""

    reads: int = 0
    writes: int = 0
    flushes: int = 0
    read_bytes: int = 0
    written_bytes: int = 0
    busy_time: float = 0.0
    #: histogram of write sizes: {bucket_lower_bound_bytes: total_bytes}
    write_size_bytes: Dict[int, int] = field(default_factory=dict)

    def record(self, kind: str, nbytes: int, service: float) -> None:
        if kind == READ:
            self.reads += 1
            self.read_bytes += nbytes
        elif kind in (WRITE, LOGWRITE):
            self.writes += 1
            self.written_bytes += nbytes
            bucket = 1
            while bucket * 2 <= max(nbytes, 1):
                bucket *= 2
            self.write_size_bytes[bucket] = (
                self.write_size_bytes.get(bucket, 0) + nbytes
            )
        elif kind == FLUSH:
            self.flushes += 1
        self.busy_time += service

    @property
    def total_ops(self) -> int:
        return self.reads + self.writes

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.written_bytes

    def utilization(self, elapsed: float) -> float:
        """Fraction of wall-clock time the device was servicing requests."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class QueuedDevice:
    """Base class: FIFO service channels + a service-time model."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        channels: int = 1,
        pipeline_latency: float = 0.0,
    ):
        self.sim = sim
        self.name = name
        self.channels = Resource(sim, capacity=channels)
        self.pipeline_latency = pipeline_latency
        self.stats = DeviceStats()

    # -- subclass hook ------------------------------------------------------
    def service_time(self, kind: str, offset: int, nbytes: int) -> float:
        raise NotImplementedError

    # -- public API -----------------------------------------------------
    def submit(self, kind: str, offset: int = 0, nbytes: int = 0) -> Event:
        """Issue an operation; the returned event fires on completion."""
        done = self.sim.event()
        self.sim.process(self._serve(kind, offset, nbytes, done), name=self.name)
        return done

    def read(self, offset: int, nbytes: int) -> Event:
        return self.submit(READ, offset, nbytes)

    def write(self, offset: int, nbytes: int) -> Event:
        return self.submit(WRITE, offset, nbytes)

    def flush(self) -> Event:
        return self.submit(FLUSH)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        return self.stats.utilization(
            elapsed if elapsed is not None else self.sim.now
        )

    # -- internals ------------------------------------------------------
    def _serve(self, kind: str, offset: int, nbytes: int, done: Event):
        req = self.channels.request()
        yield req
        try:
            service = self.service_time(kind, offset, nbytes)
            self.stats.record(kind, nbytes, service)
            yield self.sim.timeout(service)
        finally:
            self.channels.release()
        if self.pipeline_latency:
            yield self.sim.timeout(self.pipeline_latency)
        done.succeed()
