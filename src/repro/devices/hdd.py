"""Hard-drive service-time model with seek and rotational components.

The paper's configuration 2 backend is 62 SAS 10K RPM drives rated at
~370 random write IOPS and the analysis in §4.5 depends on the seek/size
trade-off: RBD hammers the drives with 16-24 KiB random writes while LSVD
issues ~1 MiB chunk writes, so per-byte cost differs by orders of
magnitude.

Service time for an access::

    seek(distance) + rotational_wait + nbytes / transfer_rate

Seek cost follows the classic square-root-of-distance curve between
``track_seek`` and ``max_seek``; consecutive accesses (offset equal to the
previous end) skip both seek and rotation, which is what makes merged
sequential streams cheap.  Command queueing is approximated by a reduced
average rotational wait.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.devices.base import FLUSH, LOGWRITE, QueuedDevice
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class HDDSpec:
    """Mechanical parameters of a drive."""

    capacity: int = 300 * 10**9  # addressable bytes
    transfer_rate: float = 200e6  # sustained media rate, bytes/sec
    track_seek: float = 0.4e-3  # adjacent-track seek, seconds
    max_seek: float = 8.0e-3  # full-stroke seek
    rpm: float = 10_000.0
    queue_rotation_factor: float = 0.5  # NCQ shortens rotational waits
    #: server SAS drives usually run write-through: flushes are cheap
    flush_time: float = 0.1e-3
    pipeline_latency: float = 100e-6

    @classmethod
    def sas_10k(cls) -> "HDDSpec":
        """The paper's backend drives (Table 1, config 2)."""
        return cls()

    @property
    def rotation_time(self) -> float:
        return 60.0 / self.rpm


class HDD(QueuedDevice):
    """A queued hard drive with positional state."""

    def __init__(self, sim: Simulator, spec: HDDSpec = None, name: str = "hdd"):
        spec = spec or HDDSpec.sas_10k()
        super().__init__(sim, name, channels=1, pipeline_latency=spec.pipeline_latency)
        self.spec = spec
        self._head_offset = 0

    def seek_time(self, distance: int) -> float:
        """Square-root seek curve; zero for distance 0."""
        if distance == 0:
            return 0.0
        frac = min(1.0, distance / self.spec.capacity)
        return self.spec.track_seek + (
            (self.spec.max_seek - self.spec.track_seek) * math.sqrt(frac)
        )

    def service_time(self, kind: str, offset: int, nbytes: int) -> float:
        if kind == FLUSH:
            return self.spec.flush_time
        if kind == LOGWRITE:
            # journal append: group commit hides seek and rotation
            return nbytes / self.spec.transfer_rate
        distance = abs(offset - self._head_offset)
        self._head_offset = offset + nbytes
        transfer = nbytes / self.spec.transfer_rate
        if distance == 0:
            return transfer
        rotation = self.spec.rotation_time / 2 * self.spec.queue_rotation_factor
        return self.seek_time(distance) + rotation + transfer
