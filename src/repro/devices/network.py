"""Network link model: propagation latency plus shared bandwidth.

The paper's testbed uses 10 Gbit ethernet between client and backend
(Table 1); §4.7 measures ~6 ms for an S3 range GET, dominated by RGW
software latency, which we fold into the per-request latency of the object
store rather than the link itself.
"""

from __future__ import annotations

from repro.sim.engine import Event, Simulator
from repro.sim.resources import TokenBucket


class NetworkLink:
    """A duplex link with independent per-direction bandwidth."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float = 10e9 / 8,  # 10 Gbit/s in bytes/sec
        latency: float = 100e-6,
        name: str = "net",
    ):
        self.sim = sim
        self.name = name
        self.latency = latency
        self._tx = TokenBucket(sim, bandwidth)
        self._rx = TokenBucket(sim, bandwidth)

    def send(self, nbytes: int) -> Event:
        """Transfer client->server; event fires when fully received."""
        return self._transfer(self._tx, nbytes)

    def receive(self, nbytes: int) -> Event:
        """Transfer server->client; event fires when fully received."""
        return self._transfer(self._rx, nbytes)

    def _transfer(self, bucket: TokenBucket, nbytes: int) -> Event:
        done = self.sim.event()

        def run():
            yield bucket.consume(nbytes)
            yield self.sim.timeout(self.latency)
            done.succeed()

        self.sim.process(run(), name=self.name)
        return done

    @property
    def bytes_sent(self) -> int:
        return self._tx.total_bytes

    @property
    def bytes_received(self) -> int:
        return self._rx.total_bytes
