"""Device models: timing (SSD/HDD/network) and content (crash-faithful images).

Two orthogonal planes:

* **timing** — :class:`~repro.devices.ssd.SSD` and
  :class:`~repro.devices.hdd.HDD` are queued service-time models running on
  the simulator; they produce latency, throughput, and the per-device
  op/byte/busy counters the paper reads from ``/proc/diskstats``.
* **content** — :class:`~repro.devices.image.DiskImage` stores actual bytes
  with volatile-write-cache semantics (writes are durable only after a
  flush; a crash keeps an arbitrary subset of un-flushed writes, possibly
  tearing the last one).  All consistency/recovery tests run on this plane.
"""

from repro.devices.base import DeviceStats, QueuedDevice
from repro.devices.hdd import HDD, HDDSpec
from repro.devices.image import DiskImage, TornWrite
from repro.devices.network import NetworkLink
from repro.devices.ssd import SSD, SSDSpec

__all__ = [
    "HDD",
    "HDDSpec",
    "SSD",
    "SSDSpec",
    "DeviceStats",
    "DiskImage",
    "NetworkLink",
    "QueuedDevice",
    "TornWrite",
]
