"""SSD service-time model.

Calibrated to the client cache device in the paper's Table 1 (Intel DC
P3700 class): 2.8 / 1.9 GB/s sequential read/write and 460K / 90K random
read/write IOPS.  The LSVD write cache turns random client writes into
sequential device writes, which is where its small-write advantage over
bcache comes from (§4.2.1) — so the model must distinguish sequential from
random access.

An access is *sequential* when it starts where the previous access of the
same kind ended.  Service time is::

    max(nbytes / seq_bandwidth, 1 / iops_limit)   # random access
    nbytes / seq_bandwidth + tiny setup           # sequential access

Flush (commit barrier) costs a fixed cache-program time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.base import FLUSH, LOGWRITE, READ, WRITE, QueuedDevice
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class SSDSpec:
    """Performance envelope of an SSD.

    Reads and writes run on independent internal paths (so a read stream
    does not serialise behind a write stream), but both consume the shared
    controller bandwidth ``total_bw`` — which is how a destage-read stream
    steals throughput from client writes on a mixed workload (the effect
    behind LSVD's large-write deficit in Figures 6 and 8).
    """

    seq_read_bw: float = 2.8e9  # bytes/sec
    seq_write_bw: float = 1.9e9
    rand_read_iops: float = 460_000.0
    rand_write_iops: float = 90_000.0
    total_bw: float = 2.9e9  # controller/DRAM ceiling for mixed R/W
    setup_time: float = 2e-6  # per-op command overhead
    flush_time: float = 50e-6  # commit barrier (cache program)
    pipeline_latency: float = 60e-6  # completion latency not limiting rate
    #: extra completion latency for random (non-sequential) writes — FTL
    #: mapping work; affects latency-bound (low queue depth) workloads but
    #: not the sustained rate
    rand_write_latency: float = 25e-6
    channels: int = 1

    @classmethod
    def nvme_p3700(cls) -> "SSDSpec":
        """The paper's client cache device (Table 1)."""
        return cls()

    @classmethod
    def sata_consumer(cls) -> "SSDSpec":
        """The paper's backend SATA SSDs: ~10K sustained random write
        IOPS, and — critically for Ceph journals — no power-loss
        protection, so a FLUSH (cache program) costs ~1.5 ms."""
        return cls(
            seq_read_bw=500e6,
            seq_write_bw=450e6,
            rand_read_iops=90_000.0,
            rand_write_iops=10_000.0,
            total_bw=520e6,
            setup_time=10e-6,
            flush_time=1.5e-3,
            pipeline_latency=80e-6,
        )

    @classmethod
    def ec2_m5d_nvme(cls) -> "SSDSpec":
        """The AWS m5d.xlarge instance NVMe (§4.9): 230/128 MB/s measured."""
        return cls(
            seq_read_bw=230e6,
            seq_write_bw=128e6,
            rand_read_iops=60_000.0,
            rand_write_iops=30_000.0,
        )


class SSD(QueuedDevice):
    """A queued SSD: per-direction channels + shared controller bandwidth."""

    def __init__(self, sim: Simulator, spec: SSDSpec = None, name: str = "ssd"):
        spec = spec or SSDSpec()
        super().__init__(
            sim,
            name,
            channels=spec.channels,
            pipeline_latency=spec.pipeline_latency,
        )
        self.spec = spec
        self._next_seq_offset = {READ: None, WRITE: None}
        # independent read/write paths; FLUSH shares the write path
        from repro.sim.resources import Resource, TokenBucket

        self._paths = {
            READ: Resource(sim, capacity=spec.channels),
            WRITE: Resource(sim, capacity=spec.channels),
        }
        self._controller = TokenBucket(sim, spec.total_bw)

    def service_time(self, kind: str, offset: int, nbytes: int) -> float:
        if kind == FLUSH:
            return self.spec.flush_time
        if kind == LOGWRITE:
            # journal append: always effectively sequential
            return nbytes / self.spec.seq_write_bw + self.spec.setup_time
        if kind == READ:
            bw, iops = self.spec.seq_read_bw, self.spec.rand_read_iops
        else:
            bw, iops = self.spec.seq_write_bw, self.spec.rand_write_iops
        sequential = self._next_seq_offset[kind] == offset
        self._next_seq_offset[kind] = offset + nbytes
        transfer = nbytes / bw + self.spec.setup_time
        if sequential:
            return transfer
        return max(transfer, 1.0 / iops)

    #: controller transfers are granted in chunks so one huge op cannot
    #: head-of-line block small ones (the device interleaves internally)
    CONTROLLER_CHUNK = 32 * 1024

    def _serve(self, kind: str, offset: int, nbytes: int, done):
        path = self._paths[READ if kind == READ else WRITE]
        req = path.request()
        yield req
        try:
            sequential_before = self._next_seq_offset.get(kind) == offset
            service = self.service_time(kind, offset, nbytes)
            self.stats.record(kind, nbytes, service)
            started = self.sim.now
            if nbytes and kind != FLUSH:
                # shared controller: mixed R/W cannot exceed total_bw
                remaining = nbytes
                while remaining > 0:
                    take = min(remaining, self.CONTROLLER_CHUNK)
                    yield self._controller.consume(take)
                    remaining -= take
            elapsed = self.sim.now - started
            if elapsed < service:
                yield self.sim.timeout(service - elapsed)
        finally:
            path.release()
        latency = self.pipeline_latency
        if kind == WRITE and not sequential_before:
            latency += self.spec.rand_write_latency
        if latency:
            yield self.sim.timeout(latency)
        done.succeed()
