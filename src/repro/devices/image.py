"""Content plane: byte-faithful disk images with volatile write caches.

Every consistency and recovery experiment in the paper (§2.2, §3.3, §4.4
Table 4) hinges on what a real device guarantees: a write is durable only
after a subsequent flush (commit barrier) completes; at a crash the device
may have persisted **any subset** of the un-flushed writes, and the last
record may be torn (partially written).  :class:`DiskImage` implements
exactly those semantics so that LSVD's CRC/sequence-number log recovery and
bcache's lack of ordering can be exercised for real.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional


@dataclass
class TornWrite:
    """Description of a write persisted only partially at crash time."""

    offset: int
    full_length: int
    kept_length: int


class DiskImage:
    """A fixed-size byte store with volatile-cache durability semantics.

    Reads always observe the newest data (the device cache serves reads);
    durability is tracked separately via a pending-write journal that
    :meth:`flush` drains and :meth:`crash` samples.
    """

    def __init__(self, size: int, name: str = "disk"):
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self.name = name
        self._data = bytearray(size)  # newest content (cache view)
        self._durable = bytearray(size)  # content guaranteed after crash
        self._pending: List[tuple] = []  # (offset, bytes) not yet durable
        self.writes = 0
        self.reads = 0
        self.flushes = 0
        self.bytes_written = 0
        self.bytes_read = 0

    # -- I/O ---------------------------------------------------------------
    def write(self, offset: int, data: bytes) -> None:
        """Buffer a write; durable only after :meth:`flush`."""
        self._check_range(offset, len(data))
        self._data[offset : offset + len(data)] = data
        self._pending.append((offset, bytes(data)))
        self.writes += 1
        self.bytes_written += len(data)

    def read(self, offset: int, length: int) -> bytes:
        self._check_range(offset, length)
        self.reads += 1
        self.bytes_read += length
        return bytes(self._data[offset : offset + length])

    def flush(self) -> None:
        """Commit barrier: all buffered writes become durable."""
        for offset, data in self._pending:
            self._durable[offset : offset + len(data)] = data
        self._pending.clear()
        self.flushes += 1

    @property
    def pending_writes(self) -> int:
        return len(self._pending)

    # -- failure injection ---------------------------------------------
    def crash(
        self,
        rng: Optional[random.Random] = None,
        survive_probability: float = 0.5,
        allow_torn: bool = True,
    ) -> Optional[TornWrite]:
        """Simulate power loss: keep an arbitrary subset of pending writes.

        Each un-flushed write independently survives with
        ``survive_probability``; with ``allow_torn`` the final surviving
        write may itself be cut short, modelling a torn sector run.  After
        the call the image content equals the durable state.  Returns a
        :class:`TornWrite` describing the tear, if one happened.
        """
        if rng is None:
            # no seed given: derive one from the image's own history so a
            # replay of the same operation sequence crashes identically
            rng = random.Random(
                (self.writes << 24) ^ (self.flushes << 12) ^ len(self._pending)
            )
        torn: Optional[TornWrite] = None
        survivors = [
            (off, data)
            for off, data in self._pending
            if rng.random() < survive_probability
        ]
        if survivors and allow_torn and rng.random() < 0.5:
            off, data = survivors[-1]
            keep = rng.randrange(0, len(data))
            if keep == 0:
                survivors.pop()
            else:
                survivors[-1] = (off, data[:keep])
                torn = TornWrite(off, len(data), keep)
        for off, data in survivors:
            self._durable[off : off + len(data)] = data
        self._pending.clear()
        self._data = bytearray(self._durable)
        return torn

    def lose(self) -> None:
        """Catastrophic device loss: all content gone (cache death, §4.4)."""
        self._data = bytearray(self.size)
        self._durable = bytearray(self.size)
        self._pending.clear()

    # -- helpers ---------------------------------------------------------
    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise ValueError(
                f"I/O beyond {self.name} bounds: offset={offset} "
                f"length={length} size={self.size}"
            )
