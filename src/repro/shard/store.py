"""A sharded object store: N backends behind one namespace.

:class:`ShardedObjectStore` implements the :class:`~repro.objstore.s3.ObjectStore`
interface over N independent backends, routing every operation through a
:class:`~repro.shard.router.ShardRouter`.  Because the facade preserves
the interface, the whole stack above it — :class:`BlockStore`, garbage
collection, checkpointing, replication, recovery — works unchanged:

* PUT/GET/DELETE go to the owning shard, so GC deletes and stranded-write
  cleanup land on whichever backend actually holds the object;
* LIST scatter-gathers every shard and merges the results, so recovery's
  "longest consecutive run after the newest checkpoint" rule (§3.3)
  operates on the *global* sequence — a hole on one shard strands every
  later object regardless of which shards hold them;
* per-shard stats merge into one :class:`ObjectStoreStats` view.

Fault injection composes too: wrap each shard in an
:class:`~repro.objstore.s3.UnsettledObjectStore` and the facade's
:meth:`put` returns composite ``(shard, handle)`` tokens that the
volume's settlement ledger treats as opaque keys; :meth:`crash` drops
in-flight PUTs on every shard at once.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.objstore.directory import DirectoryObjectStore
from repro.objstore.s3 import NoSuchKeyError, ObjectStore, ObjectStoreStats
from repro.obs import NULL_SPAN, Registry
from repro.shard.router import ShardRouter

#: manifest persisted at the root of a sharded directory store so every
#: later mount routes identically (see ShardRouter's module docstring)
MANIFEST_NAME = "shard-layout.json"


def count_shard_op(
    obs: Registry, index: int, n_shards: int, op: str, nbytes: int = 0
) -> None:
    """Charge one shard operation to the ``shard.*`` metric family.

    Shared by the pure and timed sharded stores so both report the same
    names: aggregate ``shard.<op>`` / ``shard.bytes_put``, per-shard
    ``shard.<i>.<op>``, and the ``shard.put_imbalance`` gauge (1.0 =
    perfectly even, 2.0 = hottest shard carries twice its fair share).
    """
    obs.counter(f"shard.{op}").inc()
    obs.counter(f"shard.{index}.{op}").inc()
    if nbytes:
        obs.counter("shard.bytes_put").inc(nbytes)
        obs.counter(f"shard.{index}.bytes_put").inc(nbytes)
    if op == "puts":
        per_shard = [obs.value(f"shard.{i}.puts") for i in range(n_shards)]
        total = sum(per_shard)
        if total:
            obs.gauge("shard.put_imbalance").set(
                max(per_shard) * n_shards / total
            )


class ShardedObjectStore(ObjectStore):
    """Fan one object namespace out across N backend shards."""

    #: duck-typed marker: callers holding a span handle may pass it to
    #: :meth:`put` so PUT service time is attributed to the owning shard
    accepts_span = True

    def __init__(
        self,
        shards: Sequence[ObjectStore],
        router: Optional[ShardRouter] = None,
        obs: Optional[Registry] = None,
    ):
        if not shards:
            raise ValueError("need at least one shard")
        self.shards: List[ObjectStore] = list(shards)
        self.router = router if router is not None else ShardRouter(len(self.shards))
        if self.router.n_shards != len(self.shards):
            raise ValueError(
                f"router expects {self.router.n_shards} shards, got {len(self.shards)}"
            )
        self.obs = obs if obs is not None else Registry()
        # register the aggregate metrics up front for stable snapshots
        self.obs.counter("shard.puts")
        self.obs.counter("shard.gets")
        self.obs.counter("shard.deletes")
        self.obs.counter("shard.bytes_put")
        self.obs.gauge("shard.put_imbalance")

    # -- routing ----------------------------------------------------------
    def shard_of(self, name: str) -> int:
        return self.router.shard_of_name(name)

    def _owner(self, name: str) -> Tuple[int, ObjectStore]:
        index = self.router.shard_of_name(name)
        return index, self.shards[index]

    # -- accounting -------------------------------------------------------
    def _count(self, index: int, op: str, nbytes: int = 0) -> None:
        count_shard_op(self.obs, index, len(self.shards), op, nbytes)

    # -- the ObjectStore interface ----------------------------------------
    def put(self, name: str, data: bytes, span=NULL_SPAN):
        index, shard = self._owner(name)
        stage = span.begin("shard_put", shard=index, bytes=len(data))
        handle = shard.put(name, data)
        stage.end()
        self._count(index, "puts", len(data))
        if handle is None:
            return None
        # unsettled shard: composite token, still opaque+hashable for the
        # volume's settlement ledger
        return (index, handle)

    def get(self, name: str) -> bytes:
        index, shard = self._owner(name)
        data = shard.get(name)
        self._count(index, "gets")
        return data

    def get_range(self, name: str, offset: int, length: int) -> bytes:
        index, shard = self._owner(name)
        piece = shard.get_range(name, offset, length)
        self._count(index, "gets")
        return piece

    def delete(self, name: str) -> None:
        index, shard = self._owner(name)
        shard.delete(name)
        self._count(index, "deletes")

    def list(self, prefix: str = "") -> List[str]:
        """Scatter-gather LIST: the sorted union of every shard's view.

        This is what makes recovery shard-agnostic — the consecutive-run
        scan in :meth:`BlockStore._recover` sees one global listing and
        never needs to know placement exists.
        """
        names: List[str] = []
        for shard in self.shards:
            names.extend(shard.list(prefix))
        return sorted(names)

    def exists(self, name: str) -> bool:
        _index, shard = self._owner(name)
        return shard.exists(name)

    def size(self, name: str) -> int:
        _index, shard = self._owner(name)
        return shard.size(name)

    def copy(self, src: str, dst: str) -> None:
        src_index, src_shard = self._owner(src)
        dst_index, dst_shard = self._owner(dst)
        if src_index == dst_index:
            src_shard.copy(src, dst)
            return
        # cross-shard: stream through the client.  Settle immediately if
        # the destination shard is unsettled — a copy is not a client PUT
        # whose handle anyone tracks.  A non-None handle *is* the proof
        # the shard has a settle(): guarding on hasattr too would leave
        # the write in flight forever on such stores.
        handle = dst_shard.put(dst, src_shard.get(src))
        if handle is not None:
            dst_shard.settle(handle)  # type: ignore[attr-defined]

    # -- merged views -----------------------------------------------------
    @property
    def stats(self) -> ObjectStoreStats:
        """Aggregate of every shard's counters (computed on read)."""
        return ObjectStoreStats.merged(
            s.stats for s in self.shards if hasattr(s, "stats")
        )

    def shard_stats(self) -> List[ObjectStoreStats]:
        """Per-shard counters, indexed by shard."""
        return [
            getattr(s, "stats", None) or ObjectStoreStats() for s in self.shards
        ]

    def total_bytes(self, prefix: str = "") -> int:
        total = 0
        for shard in self.shards:
            if hasattr(shard, "total_bytes"):
                total += shard.total_bytes(prefix)
            else:
                total += sum(shard.size(n) for n in shard.list(prefix))
        return total

    def shard_usage(self, prefix: str = "") -> List[Tuple[int, int]]:
        """Per-shard ``(object_count, bytes)`` — the shard-status view."""
        usage = []
        for shard in self.shards:
            names = shard.list(prefix)
            usage.append((len(names), sum(shard.size(n) for n in names)))
        return usage

    # -- fault-injection pass-throughs ------------------------------------
    def settle(self, handle: Tuple[int, object]) -> None:
        """Complete one in-flight PUT via its composite handle."""
        index, inner = handle
        self.shards[index].settle(inner)  # type: ignore[attr-defined]

    def settle_all(self) -> None:
        for shard in self.shards:
            if hasattr(shard, "settle_all"):
                shard.settle_all()

    def crash(self) -> List[str]:
        """Client crash: every shard's in-flight PUTs vanish at once."""
        lost: List[str] = []
        for shard in self.shards:
            if hasattr(shard, "crash"):
                lost.extend(shard.crash())
        return lost

    @property
    def in_flight(self) -> int:
        return sum(getattr(s, "in_flight", 0) for s in self.shards)

    def pending_handles(self) -> List[Tuple[int, object]]:
        """Composite handles of every in-flight PUT across all shards."""
        handles: List[Tuple[int, object]] = []
        for index, shard in enumerate(self.shards):
            if hasattr(shard, "pending_handles"):
                handles.extend((index, h) for h in shard.pending_handles())
        return handles


# ---------------------------------------------------------------------------
# directory-backed construction
# ---------------------------------------------------------------------------


def sharded_directory_store(
    root: Union[str, Path],
    n_shards: Optional[int] = None,
    layout: str = "round-robin",
    obs: Optional[Registry] = None,
) -> ShardedObjectStore:
    """Open (or create) a sharded store of per-shard subdirectories.

    The first call writes a ``shard-layout.json`` manifest at ``root``;
    later mounts read it back so routing never changes underneath the
    data.  Passing a conflicting ``n_shards``/``layout`` for an existing
    store is an error — resharding is a migration, not a mount option.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    manifest_path = root / MANIFEST_NAME
    if manifest_path.is_file():
        manifest = json.loads(manifest_path.read_text())
        router = ShardRouter.from_manifest(manifest)
        if n_shards is not None and n_shards != router.n_shards:
            raise ValueError(
                f"store at {root} has {router.n_shards} shards; "
                f"resharding to {n_shards} requires a migration"
            )
        if layout != "round-robin" and layout != router.layout.name:
            raise ValueError(
                f"store at {root} uses layout {router.layout.name!r}, "
                f"not {layout!r}"
            )
    else:
        if any(root.iterdir()):
            raise ValueError(
                f"{root} already holds a non-sharded store; sharding an "
                "existing root requires a migration"
            )
        router = ShardRouter(n_shards if n_shards is not None else 1, layout)
        manifest_path.write_text(json.dumps(router.describe(), sort_keys=True) + "\n")
    shards: List[ObjectStore] = [
        DirectoryObjectStore(root / name) for name in router.shard_names()
    ]
    return ShardedObjectStore(shards, router, obs=obs)


def open_directory_store(
    root: Union[str, Path], obs: Optional[Registry] = None
) -> ObjectStore:
    """Open whatever store lives at ``root``.

    Sharded stores are self-describing via their manifest; anything else
    is a plain single-directory store.  This is what the CLI mounts, so
    a volume created with ``--shards N`` keeps working transparently.
    """
    root = Path(root)
    if (root / MANIFEST_NAME).is_file():
        return sharded_directory_store(root, obs=obs)
    return DirectoryObjectStore(root)


__all__ = [
    "MANIFEST_NAME",
    "NoSuchKeyError",
    "ShardedObjectStore",
    "open_directory_store",
    "sharded_directory_store",
]
