"""Deterministic placement of one volume's object stream across shards.

A sharded LSVD backend stripes the *objects* of one volume across N
independent object-store backends while keeping the single global
sequence numbering intact.  Correctness then rests on one property:
**every reader and writer must agree, forever, on which shard owns a
given name**.  This module is the only place that mapping is computed —
the LSVD008 lint rule rejects ``% n_shards`` arithmetic and shard-name
construction anywhere else in the tree.

Placement is pluggable (:data:`LAYOUTS`):

* ``round-robin`` — object ``seq`` lands on shard ``(seq-1) % N``;
  consecutive objects hit distinct backends, so a sequential destage
  stream spreads perfectly and aggregate PUT bandwidth scales with N.
* ``hash`` — CRC-32 of the decimal sequence number; statistically
  uniform, and the placement of one object is independent of N-adjacent
  ones (useful when object sizes correlate with sequence position).

Both are pure functions of ``(name, n_shards)`` — no state, no RNG, no
``hash()`` (which is salted per-process by PYTHONHASHSEED and would
scatter a volume differently on every mount).

Non-stream names (the mutable ``<vol>.super``, foreign blobs) route by
CRC-32 of the full name, so they too have exactly one home.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Type, Union

from repro.core.naming import parse_object_name

#: width of the shard index in shard directory/cluster names
SHARD_DIGITS = 2


class PlacementLayout:
    """Strategy mapping a global sequence number to a shard index."""

    name = "?"

    def shard_of_seq(self, seq: int, n_shards: int) -> int:
        raise NotImplementedError


class RoundRobinLayout(PlacementLayout):
    """Stripe consecutive objects across consecutive shards.

    The stream starts at seq 1 (seq 0 is "nothing destaged yet"), so the
    first object lands on shard 0.
    """

    name = "round-robin"

    def shard_of_seq(self, seq: int, n_shards: int) -> int:
        return (seq - 1) % n_shards  # lint: disable=LSVD002 -- derives a shard index from a seq, never a new sequence number


class HashLayout(PlacementLayout):
    """Uniform pseudo-random placement via CRC-32 (deterministic across
    processes, unlike the salted builtin ``hash``)."""

    name = "hash"

    def shard_of_seq(self, seq: int, n_shards: int) -> int:
        return zlib.crc32(str(seq).encode()) % n_shards


#: registry of placement strategies, keyed by their manifest name
LAYOUTS: Dict[str, Type[PlacementLayout]] = {
    RoundRobinLayout.name: RoundRobinLayout,
    HashLayout.name: HashLayout,
}


class ShardRouter:
    """The single authority for name -> shard ownership.

    Stream objects (``<vol>.<seq:08d>``) route through the configured
    :class:`PlacementLayout` on their sequence number; everything else
    (superblocks, manifests) routes by CRC-32 of the name.  Routing is a
    pure function of the router's ``(n_shards, layout)`` configuration,
    which therefore must be persisted alongside the data (see the
    ``shard-layout.json`` manifest in :mod:`repro.shard.store`).
    """

    def __init__(
        self, n_shards: int, layout: Union[str, PlacementLayout] = "round-robin"
    ):
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        if isinstance(layout, str):
            try:
                layout = LAYOUTS[layout]()
            except KeyError:
                raise ValueError(
                    f"unknown layout {layout!r}; choose from {sorted(LAYOUTS)}"
                ) from None
        self.n_shards = n_shards
        self.layout = layout

    # -- routing ----------------------------------------------------------
    def shard_of_seq(self, seq: int) -> int:
        """Shard index owning stream sequence number ``seq``."""
        index = self.layout.shard_of_seq(seq, self.n_shards)
        if not 0 <= index < self.n_shards:
            raise ValueError(
                f"layout {self.layout.name!r} produced shard {index} "
                f"for seq {seq} (have {self.n_shards} shards)"
            )
        return index

    def shard_of_name(self, name: str) -> int:
        """Shard index owning object ``name`` (stream or not)."""
        try:
            _volume, seq = parse_object_name(name)
        except ValueError:
            return zlib.crc32(name.encode()) % self.n_shards
        return self.shard_of_seq(seq)

    # -- naming -----------------------------------------------------------
    @staticmethod
    def shard_name(index: int) -> str:
        """Canonical name of shard ``index`` (``shard-00`` ...)."""
        return f"shard-{index:0{SHARD_DIGITS}d}"

    def shard_names(self) -> List[str]:
        return [self.shard_name(i) for i in range(self.n_shards)]

    # -- persistence ------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Manifest form; :meth:`from_manifest` round-trips it."""
        return {"n_shards": self.n_shards, "layout": self.layout.name}

    @classmethod
    def from_manifest(cls, manifest: Dict[str, object]) -> "ShardRouter":
        return cls(
            n_shards=int(manifest["n_shards"]),  # type: ignore[arg-type]
            layout=str(manifest.get("layout", "round-robin")),
        )

    def __repr__(self) -> str:
        return f"ShardRouter(n_shards={self.n_shards}, layout={self.layout.name!r})"
