"""repro.shard: stripe one volume's object stream across N backends.

The stream stays a single global sequence; only *placement* is sharded.
:class:`ShardRouter` owns the name -> shard mapping (lint rule LSVD008
keeps it that way), :class:`ShardedObjectStore` fans the ObjectStore
interface out across the shards so the rest of the stack is oblivious.
"""

from repro.shard.router import (
    LAYOUTS,
    HashLayout,
    PlacementLayout,
    RoundRobinLayout,
    ShardRouter,
)
from repro.shard.store import (
    MANIFEST_NAME,
    ShardedObjectStore,
    open_directory_store,
    sharded_directory_store,
)

__all__ = [
    "LAYOUTS",
    "MANIFEST_NAME",
    "HashLayout",
    "PlacementLayout",
    "RoundRobinLayout",
    "ShardRouter",
    "ShardedObjectStore",
    "open_directory_store",
    "sharded_directory_store",
]
