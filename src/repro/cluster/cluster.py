"""The storage pool: servers, devices, placement, utilisation accounting."""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.devices.base import QueuedDevice
from repro.sim.engine import Event, Simulator


@dataclass
class ClusterTotals:
    """Pool-wide I/O summary (the backend side of Figure 13)."""

    reads: int
    writes: int
    read_bytes: int
    written_bytes: int
    mean_utilization: float

    @property
    def total_ops(self) -> int:
        return self.reads + self.writes


class StorageCluster:
    """A pool of devices spread over servers with hash placement.

    ``disk_factory(sim, name)`` builds each device; the paper's two
    configurations are 4 servers x 8 SATA SSDs and 9 servers x ~7 SAS
    HDDs (Table 1).
    """

    def __init__(
        self,
        sim: Simulator,
        servers: int,
        disks_per_server: int,
        disk_factory: Callable[[Simulator, str], QueuedDevice],
    ):
        if servers < 1 or disks_per_server < 1:
            raise ValueError("need at least one server and one disk")
        self.sim = sim
        self.servers = servers
        self.disks: List[QueuedDevice] = []
        for srv in range(servers):
            for d in range(disks_per_server):
                self.disks.append(disk_factory(sim, f"srv{srv}-disk{d}"))
        self._start_time = sim.now

    # ------------------------------------------------------------------
    def placement(self, key: str, count: int) -> List[QueuedDevice]:
        """Deterministically pick ``count`` distinct devices for ``key``.

        Mimics CRUSH/consistent hashing: stable for a key, uniform over
        the pool.
        """
        if count > len(self.disks):
            raise ValueError("placement wider than the pool")
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        rng = random.Random(int.from_bytes(digest, "big"))
        indices = rng.sample(range(len(self.disks)), count)
        return [self.disks[i] for i in indices]

    def submit(
        self, device: QueuedDevice, kind: str, offset: int, nbytes: int
    ) -> Event:
        return device.submit(kind, offset, nbytes)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        for disk in self.disks:
            disk.stats.__init__()
        self._start_time = self.sim.now

    def utilizations(self, elapsed: Optional[float] = None) -> List[float]:
        span = (
            elapsed
            if elapsed is not None
            else max(self.sim.now - self._start_time, 1e-12)
        )
        return [d.stats.utilization(span) for d in self.disks]

    def mean_utilization(self, elapsed: Optional[float] = None) -> float:
        utils = self.utilizations(elapsed)
        return sum(utils) / len(utils)

    def totals(self, elapsed: Optional[float] = None) -> ClusterTotals:
        return ClusterTotals(
            reads=sum(d.stats.reads for d in self.disks),
            writes=sum(d.stats.writes for d in self.disks),
            read_bytes=sum(d.stats.read_bytes for d in self.disks),
            written_bytes=sum(d.stats.written_bytes for d in self.disks),
            mean_utilization=self.mean_utilization(elapsed),
        )

    def write_size_histogram(self) -> Dict[int, int]:
        """Pool-wide bytes-written-per-I/O-size histogram (Figure 14)."""
        merged: Dict[int, int] = {}
        for disk in self.disks:
            for bucket, nbytes in disk.stats.write_size_bytes.items():
                merged[bucket] = merged.get(bucket, 0) + nbytes
        return merged

    def __len__(self) -> int:
        return len(self.disks)
