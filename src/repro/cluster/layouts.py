"""Data layouts: how logical operations become device I/O.

These encode the write-amplification story of §2.1 and §4.5:

* RBD-style **replication**: every client write, however small, is
  performed immediately at three replicas, each pairing a write-ahead
  journal append (data + a little metadata) with the data write itself —
  six device I/Os per 16 KiB client write, exactly the 6x amplification
  the paper traces (half the backend writes 16 KiB, half 20-24 KiB from
  the journal entries).

* RGW-style **erasure coding** (k=4, m=2): a 4 MiB object PUT becomes
  k+m chunk writes of ~1 MiB plus a tail of small metadata/omap writes —
  the paper counts ~64 device writes per 4 MiB object, i.e. 0.25 backend
  I/Os per 16 KiB client write (1/24th of RBD's).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.cluster.cluster import StorageCluster
from repro.sim.engine import AllOf, Event


@dataclass
class ReplicationLayout:
    """Triple replication with per-write journaling (Ceph RBD default).

    Small writes are double-written: a write-ahead journal entry — made
    durable with a device flush, the dominant latency on consumer SSDs
    without power-loss protection — plus the in-place data write, at each
    of three replicas.  Writes at or above ``direct_write_threshold``
    bypass the journal (BlueStore-style deferred-write cutoff), which is
    why RBD "improves modestly with sequential operations" (§4.3) once
    the block layer has merged adjacent requests.

    Data writes exhibit *stream locality*: the paper's trace analysis
    found that after reordering only ~18 % of RBD's backend writes
    require real seeks, the rest clustering into per-placement-group
    streams.  With probability ``stream_locality`` a data write lands at
    the disk's current stream cursor instead of its logical offset.
    """

    copies: int = 3
    journal_overhead: int = 4096  # WAL entry framing per write
    journal_region: int = 2 * 2**30  # journals live in a separate region
    direct_write_threshold: int = 128 * 1024
    stream_locality: float = 0.82

    def __post_init__(self) -> None:
        self._cursors: dict = {}
        self._counter = 0

    def _data_offset(self, disk, offset: int, nbytes: int) -> int:
        self._counter += 1
        cursor = self._cursors.get(disk.name)
        if cursor is not None and (self._counter % 100) < self.stream_locality * 100:
            chosen = cursor
        else:
            chosen = offset
        self._cursors[disk.name] = chosen + nbytes
        return chosen

    def write(
        self, cluster: StorageCluster, key: str, offset: int, nbytes: int
    ) -> Event:
        """Replicated write: (journal + flush) + data at each replica."""
        disks = cluster.placement(key, self.copies)
        done = cluster.sim.event()
        pending = [len(disks)]

        def replica(disk):
            data_offset = self._data_offset(disk, offset, nbytes)
            if nbytes < self.direct_write_threshold:
                yield disk.submit(
                    "logwrite", self.journal_region, nbytes + self.journal_overhead
                )
                yield disk.flush()  # journal commit (O_DSYNC)
                yield disk.submit("write", data_offset, nbytes)
            else:
                yield disk.submit("write", data_offset, nbytes)
                yield disk.flush()
            pending[0] -= 1
            if pending[0] == 0:
                done.succeed()

        for disk in disks:
            cluster.sim.process(replica(disk), name="replica-write")
        return done

    def read(self, cluster: StorageCluster, key: str, offset: int, nbytes: int) -> Event:
        [primary] = cluster.placement(key, 1)
        return primary.submit("read", offset, nbytes)

    def device_writes_per_client_write(self) -> int:
        return 2 * self.copies


@dataclass(frozen=True)
class ErasureCodedLayout:
    """k+m erasure coding for whole-object PUTs (Ceph RGW pool)."""

    k: int = 4
    m: int = 2
    #: small bookkeeping writes per object (pg log, omap, bucket index...);
    #: tuned so a 4 MiB object costs ~64 device writes as measured in §4.5
    meta_writes_per_object: int = 58
    meta_write_bytes: int = 4096

    @property
    def width(self) -> int:
        return self.k + self.m

    @property
    def expansion(self) -> float:
        """Storage expansion factor (1.5x for 4,2)."""
        return self.width / self.k

    def put(self, cluster: StorageCluster, key: str, nbytes: int) -> Event:
        """Object PUT: k data chunks + m parity chunks + metadata tail."""
        disks = cluster.placement(key, self.width)
        chunk = (nbytes + self.k - 1) // self.k
        events = []
        for i, disk in enumerate(disks):
            events.append(disk.submit("write", (i + 1) * 2**30, chunk))
        for j in range(self.meta_writes_per_object):
            disk = disks[j % self.width]
            # bookkeeping writes are journal appends: group-committed,
            # so they cost transfer time, not seeks
            events.append(disk.submit("logwrite", 3 * 2**30, self.meta_write_bytes))
        return AllOf(cluster.sim, events)

    def get_range(
        self, cluster: StorageCluster, key: str, offset: int, nbytes: int
    ) -> Event:
        """Ranged GET touches the chunk(s) containing the range."""
        disks = cluster.placement(key, self.width)
        chunk_size = max(1, 2**20)
        first = offset // (chunk_size * self.k) * self.k + (offset % (chunk_size * self.k)) // chunk_size
        events = []
        remaining = nbytes
        idx = first % self.k
        while remaining > 0:
            take = min(remaining, chunk_size)
            events.append(disks[idx].submit("read", offset, take))
            remaining -= take
            idx = (idx + 1) % self.k
        return AllOf(cluster.sim, events)

    def delete(self, cluster: StorageCluster, key: str) -> Event:
        """Object DELETE: metadata updates on the placement set."""
        disks = cluster.placement(key, self.width)
        events = [
            disk.submit("logwrite", 3 * 2**30, self.meta_write_bytes)
            for disk in disks
        ]
        return AllOf(cluster.sim, events)

    def device_writes_per_object(self) -> int:
        return self.width + self.meta_writes_per_object


@dataclass
class ReplicatedObjectLayout:
    """Whole-object triple replication — the alternative LSVD does *not*
    use.

    The paper's footnote 5: erasure coding is optimal for LSVD (its large
    batched writes amortise the coding), while RBD is stuck on
    replication because EC performs terribly for small in-place writes.
    This layout exists for the ablation that quantifies the choice: the
    same object stream stored as three full copies writes 2x the bytes of
    a 4,2 code and loads twice the device bandwidth.
    """

    copies: int = 3
    chunk_size: int = 4 << 20  # stripe large objects into chunk writes
    meta_writes_per_object: int = 6
    meta_write_bytes: int = 4096

    @property
    def expansion(self) -> float:
        return float(self.copies)

    def put(self, cluster: StorageCluster, key: str, nbytes: int) -> Event:
        disks = cluster.placement(key, self.copies)
        events = []
        for i, disk in enumerate(disks):
            remaining = nbytes
            offset = (i + 1) * 2**30
            while remaining > 0:
                take = min(remaining, self.chunk_size)
                events.append(disk.submit("write", offset, take))
                offset += take
                remaining -= take
        for j in range(self.meta_writes_per_object):
            disk = disks[j % self.copies]
            events.append(disk.submit("logwrite", 3 * 2**30, self.meta_write_bytes))
        return AllOf(cluster.sim, events)

    def get_range(
        self, cluster: StorageCluster, key: str, offset: int, nbytes: int
    ) -> Event:
        [primary] = cluster.placement(key, 1)
        return primary.submit("read", offset, nbytes)

    def delete(self, cluster: StorageCluster, key: str) -> Event:
        disks = cluster.placement(key, self.copies)
        events = [
            disk.submit("logwrite", 3 * 2**30, self.meta_write_bytes)
            for disk in disks
        ]
        return AllOf(cluster.sim, events)
