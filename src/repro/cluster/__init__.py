"""Backend storage cluster simulator.

Models the paper's Ceph pools (Table 1): a set of servers holding
IOPS-limited devices, a placement function distributing named chunks over
those devices, and per-device utilisation accounting equivalent to
``/proc/diskstats`` — the measurement behind the backend-load experiment
(§4.5, Figures 12-14).

Two data layouts translate logical operations into device I/O:

* :class:`~repro.cluster.layouts.ReplicationLayout` — what RBD uses: each
  small client write becomes a journal write plus a data write at each of
  three replicas (6 device I/Os, the paper's measured amplification);
* :class:`~repro.cluster.layouts.ErasureCodedLayout` — what LSVD's RGW
  pool uses: a large object PUT becomes k data + m parity chunk writes
  plus a tail of small metadata writes (the paper observes ~64 device
  writes per 4 MiB object under a 4,2 code).
"""

from repro.cluster.cluster import StorageCluster
from repro.cluster.layouts import (
    ErasureCodedLayout,
    ReplicatedObjectLayout,
    ReplicationLayout,
)

__all__ = [
    "ErasureCodedLayout",
    "ReplicatedObjectLayout",
    "ReplicationLayout",
    "StorageCluster",
]
