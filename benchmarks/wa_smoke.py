"""WA smoke run: temperature-aware placement vs the greedy baseline.

``make wa-smoke`` (CI uploads the artifact) replays skewed write
workloads through the page-map simulator (:mod:`repro.gcsim`) twice per
workload, with everything equal except placement:

* **greedy** — the pre-placement baseline: one output stream
  (``placement="legacy"``) cleaned greedily by utilisation;
* **sepbit** — SepBIT-style invalidation-time separation
  (``placement="sepbit"``) with cost-benefit victim selection — the
  default data plane since the placement layer landed.

Both runs use the same watermarks, so steady-state utilisation is pinned
by the cleaner and the comparison is apples-to-apples: the gate demands
the SepBIT write amplification beat greedy by ``WA_REDUCTION_FLOOR`` on
every workload while final utilisations stay within
``UTILIZATION_SLACK`` of each other (a WA win bought by running the
disk emptier would be cheating).

The simulator runs the *same* policy objects and victim ordering as the
full stack (see ``tests/test_placement_differential.py``), so these
figures are the full stack's placement behaviour, measured at page
granularity.  Everything is deterministic: same tree, same numbers.

Usage::

    python benchmarks/wa_smoke.py [--out-dir DIR] [--budget SECONDS]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core.placement import TEMP_NAMES, make_policy
from repro.gcsim import GCSimulator
from repro.obs import Registry, write_bench_json
from repro.workloads import FioJob
from repro.workloads.base import WRITE, take

KiB = 1 << 10
MiB = 1 << 20

#: simulated volume and batch geometry — small enough for seconds of
#: wall clock, large enough for dozens of GC rounds
VOLUME = 16 * MiB
BATCH = 256 * KiB

#: client writes per workload, as a multiple of the volume (past several
#: overwrite generations WA is steady-state, not fill-phase noise)
OVERWRITE_FACTOR = 8

#: SepBIT + cost-benefit must cut WA by at least this fraction vs the
#: greedy single-stream baseline on every skewed workload
WA_REDUCTION_FLOOR = 0.05

#: ...at the same steady-state utilisation (absolute slack)
UTILIZATION_SLACK = 0.05

#: wall-clock ceiling; only trips on a superlinear simulator regression
DEFAULT_BUDGET_S = 120.0

#: the skewed workloads the placement layer exists for
WORKLOADS = (
    ("zipfian", dict(distribution="zipfian", zipf_theta=0.99)),
    ("hotspot", dict(distribution="hotspot", hotspot_frac=0.1, hotspot_rate=0.9)),
)


def run_once(job_kw: dict, placement: str, gc_policy: str) -> GCSimulator:
    """One deterministic replay; returns the finished simulator."""
    job = FioJob(rw="randwrite", bs=4096, size=VOLUME, seed=11, **job_kw)
    sim = GCSimulator(
        VOLUME,
        batch_size=BATCH,
        policy=make_policy(placement),
        gc_policy=gc_policy,
    )
    budget = OVERWRITE_FACTOR * (VOLUME // 4096)
    for op in take(job.ops(), budget):
        if op.kind == WRITE:
            sim.write(op.offset, op.length)
    sim.finish()
    return sim


def class_mix(sim: GCSimulator) -> str:
    """Human-readable per-class backend-page shares."""
    total = max(1, sum(sim.class_pages.values()))
    parts = []
    for temp in sorted(sim.class_pages):
        name = TEMP_NAMES[temp] if temp < len(TEMP_NAMES) else str(temp)
        parts.append(f"{name} {sim.class_pages[temp] / total:.0%}")
    return ", ".join(parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="bench-out")
    parser.add_argument("--budget", type=float, default=DEFAULT_BUDGET_S)
    args = parser.parse_args(argv)
    t0 = time.perf_counter()

    summary = Registry()
    figures: dict = {}
    all_reduced = True
    all_equal_util = True
    for name, job_kw in WORKLOADS:
        greedy = run_once(job_kw, "legacy", "greedy")
        sepbit = run_once(job_kw, "sepbit", "cost_benefit")
        wa_greedy = greedy.finish().waf
        wa_sepbit = sepbit.finish().waf
        util_greedy = greedy.utilization()
        util_sepbit = sepbit.utilization()
        reduction = 1.0 - wa_sepbit / wa_greedy
        equal_util = abs(util_sepbit - util_greedy) <= UTILIZATION_SLACK
        all_reduced = all_reduced and reduction >= WA_REDUCTION_FLOOR
        all_equal_util = all_equal_util and equal_util

        print(f"{name}:")
        print(f"  WA greedy/1-stream:   {wa_greedy:6.3f}  (util {util_greedy:.3f})")
        print(f"  WA sepbit/cost-ben.:  {wa_sepbit:6.3f}  (util {util_sepbit:.3f})")
        print(f"  reduction:            {reduction:6.1%}  (floor {WA_REDUCTION_FLOOR:.0%})")
        print(f"  sepbit class mix:     {class_mix(sepbit)}")
        figures[f"{name}_wa_greedy"] = round(wa_greedy, 4)
        figures[f"{name}_wa_sepbit"] = round(wa_sepbit, 4)
        figures[f"{name}_wa_reduction"] = round(reduction, 4)
        figures[f"{name}_utilization_greedy"] = round(util_greedy, 4)
        figures[f"{name}_utilization_sepbit"] = round(util_sepbit, 4)
        figures[f"{name}_gc_pages_greedy"] = int(greedy.gc_pages)
        figures[f"{name}_gc_pages_sepbit"] = int(sepbit.gc_pages)
        for temp in sorted(sepbit.class_pages):
            label = TEMP_NAMES[temp] if temp < len(TEMP_NAMES) else str(temp)
            figures[f"{name}_sepbit_pages_{label}"] = int(sepbit.class_pages[temp])
        summary.gauge(f"wa_smoke.{name}.wa_greedy").set(wa_greedy)
        summary.gauge(f"wa_smoke.{name}.wa_sepbit").set(wa_sepbit)
        summary.gauge(f"wa_smoke.{name}.reduction").set(reduction)

    figures["gate_wa_reduction"] = bool(all_reduced)
    figures["gate_equal_utilization"] = bool(all_equal_util)
    gate_ok = all_reduced and all_equal_util
    total_s = time.perf_counter() - t0
    figures["budget_s"] = args.budget
    figures["total_s"] = round(total_s, 3)
    Path(args.out_dir).mkdir(parents=True, exist_ok=True)
    path = write_bench_json("wa", summary, figures=figures, out_dir=args.out_dir)
    print(f"\nWA reduction + equal-utilization gates: {gate_ok}")
    print(f"wall clock {total_s:.1f}s (budget {args.budget:.0f}s)")
    print(f"wrote {path}")

    if not gate_ok:
        print(
            "wa-smoke: FAIL: placement did not cut WA at equal utilization",
            file=sys.stderr,
        )
        return 1
    if total_s > args.budget:
        print(
            f"wa-smoke: FAIL: {total_s:.1f}s exceeds the {args.budget:.0f}s budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
