"""Observability smoke run: exercise both stacks, dump BENCH_obs.json.

``make obs-smoke`` (CI uploads the artifact) runs two quick workloads —
the pure-logic volume behind a :class:`~repro.obs.TimedStore`, and the
timed LSVD runtime under a short fio job — and writes both registries to
a single ``BENCH_obs.json`` with ``core`` / ``runtime`` sections via
:func:`~repro.obs.write_bench_sections_json`, plus the rendered metric
tables to stdout.  Everything is deterministic, so diffs between two runs
of the same tree are real regressions (``make bench-diff`` enforces
exactly that against benchmarks/baselines/).

Usage::

    python benchmarks/obs_smoke.py [--out-dir DIR] [--ops N]
"""

from __future__ import annotations

import argparse

from repro.analysis.report import registry_table
from repro.core import LSVDConfig, LSVDVolume
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore
from repro.obs import Registry, TimedStore, write_bench_sections_json

MiB = 1 << 20
GiB = 1 << 30


def core_smoke(ops: int) -> Registry:
    """Pure-logic stack: overwrite-heavy writes + a read pass."""
    obs = Registry()
    timed = TimedStore(InMemoryObjectStore(), obs)
    obs.trace.clock = timed.now
    config = LSVDConfig(batch_size=256 * 1024, checkpoint_interval=16)
    vol = LSVDVolume.create(timed, "smoke", 32 * MiB, DiskImage(8 * MiB), config, obs=obs)
    window = 256  # 1 MiB of 4 KiB blocks: garbage accumulates fast
    state = 1
    offsets = []
    for i in range(ops):
        state = (state * 48271) % 2147483647
        offset = (state % window) * 4096
        offsets.append(offset)
        vol.write(offset, bytes([i % 256]) * 4096)
        if i % 16 == 15:
            vol.flush()
    vol.drain()
    for offset in offsets[: ops // 2]:
        vol.read(offset, 4096)
    vol.close()
    return obs


def runtime_smoke() -> Registry:
    """Timed runtime: a short random-write fio job on simulated LSVD."""
    from repro.cluster import StorageCluster
    from repro.devices.ssd import SSD, SSDSpec
    from repro.runtime import (
        ClientMachine,
        LSVDRuntime,
        SimulatedObjectStore,
        run_fio,
    )
    from repro.sim import Simulator
    from repro.workloads import FioJob

    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = StorageCluster(
        sim, 4, 8, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n)
    )
    backend = SimulatedObjectStore(sim, cluster, machine.network)
    device = LSVDRuntime(sim, machine, backend, 1 * GiB, 4 * GiB, LSVDConfig())
    job = FioJob(rw="randwrite", bs=4096, iodepth=16, size=256 * MiB, seed=1)
    result = run_fio(sim, device, job, duration=0.5, warmup=0.1)
    obs = device.obs
    fio = obs.histogram("fio.write_latency_s")
    for bound, count in zip(result.latency.bounds, result.latency.bucket_counts):
        if count:
            fio.observe(bound, count=count)
    obs.gauge("fio.iops").set(result.iops)
    obs.gauge("fio.mbps").set(result.mbps)
    return obs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="bench-out")
    parser.add_argument("--ops", type=int, default=800)
    args = parser.parse_args(argv)

    core = core_smoke(args.ops)
    client = core.value("store.client_bytes")
    backend_bytes = (
        core.value("store.data_bytes")
        + core.value("store.gc_bytes")
        + core.value("store.ckpt_bytes")
    )
    put = core.histogram("backend.put_latency_s")
    core_figures: dict = {
        "write_amplification": backend_bytes / client if client else 0.0,
        "gc_bytes_relocated": core.value("gc.bytes_relocated"),
        "read_cache_hits": core.value("rc.hits"),
        "read_cache_misses": core.value("rc.misses"),
        "backend_put_p99_s": put.percentile(99),
        "trace_events": len(core.trace),
    }
    print(registry_table(core, caption="obs smoke: pure-logic stack").render())

    runtime = runtime_smoke()
    runtime_figures: dict = {
        "iops": runtime.value("fio.iops"),
        "mbps": runtime.value("fio.mbps"),
        "write_p99_s": runtime.histogram("fio.write_latency_s").percentile(99),
        "objects_put": runtime.value("lsvd.objects_put"),
    }
    print()
    print(registry_table(runtime, caption="obs smoke: timed runtime").render())

    path = write_bench_sections_json(
        "obs",
        {"core": (core, core_figures), "runtime": (runtime, runtime_figures)},
        out_dir=args.out_dir,
    )
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
