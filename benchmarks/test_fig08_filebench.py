"""Figure 8: Filebench throughput normalised to bcache+RBD.

Paper result: LSVD is ~0.8x on fileserver (large streaming writes — the
prototype's destage reads share the cache device), ~1.25x on oltp, and
~4x on varmail, the most sync-heavy workload, because LSVD's commit
barrier is a single device flush while bcache must persist dirty B-tree
metadata with ordered write+flush pairs on every fsync (§4.2.2).
"""

import itertools

import pytest

from conftest import GiB, make_bcache, make_lsvd
from repro.analysis import Table
from repro.runtime.blockdev import drive_ops
from repro.workloads import fileserver, oltp, varmail
from repro.workloads.base import take

DURATION = 1.5
N_OPS = 400_000  # op-stream cap (the duration cuts off first)
IODEPTH = 16


def run_workload(model_fn):
    model = model_fn(2 * GiB)
    lsvd = make_lsvd(volume=2 * GiB, cache=8 * GiB)
    ops = model.ops(seed=7)
    r_l = drive_ops(lsvd.sim, lsvd.device, itertools.islice(ops, N_OPS), IODEPTH, DURATION)
    bc = make_bcache(volume=2 * GiB, cache=8 * GiB)
    ops = model.ops(seed=7)
    r_b = drive_ops(bc.sim, bc.device, itertools.islice(ops, N_OPS), IODEPTH, DURATION)
    return r_l, r_b


def run_all():
    return {
        "fileserver": run_workload(fileserver),
        "oltp": run_workload(oltp),
        "varmail": run_workload(varmail),
    }


def test_fig08_filebench_normalized_throughput(once):
    results = once(run_all)

    table = Table(
        "Figure 8: Filebench throughput, LSVD normalised to bcache+RBD "
        "(paper: fileserver 0.8x, oltp 1.25x, varmail 4x)",
        ["workload", "LSVD ops/s", "bcache ops/s", "normalised"],
    )
    ratios = {}
    for name, (r_l, r_b) in results.items():
        ops_l = (r_l.ops + r_l.flushes) / r_l.duration
        ops_b = (r_b.ops + r_b.flushes) / r_b.duration
        ratios[name] = ops_l / ops_b
        table.add(name, f"{ops_l:.0f}", f"{ops_b:.0f}", f"{ratios[name]:.2f}x")
    table.show()

    # shape: varmail is LSVD's biggest win, by a large factor
    assert ratios["varmail"] > 2.0
    assert ratios["varmail"] > ratios["oltp"] > ratios["fileserver"]
    # oltp: LSVD modestly ahead
    assert ratios["oltp"] > 1.0
    # fileserver: LSVD at or below parity (the prototype's pass-through)
    assert ratios["fileserver"] < 1.15
