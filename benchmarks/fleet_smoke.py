"""Fleet smoke run: multi-tenant scaling and noisy-neighbour isolation.

``make fleet-smoke`` (CI uploads the artifact) drives the timed fleet
(:class:`repro.fleet.FleetRuntime`) through the two §4.5 acceptance
shapes:

1. **Aggregate scaling** — one host and one sharded backend serve first
   a single tenant, then eight.  Packing tenants onto shared hardware is
   the fleet's economic case, so the eight-tenant aggregate IOPS must
   beat the lone tenant (one vdisk cannot saturate the shared rig).

2. **Noisy-neighbour isolation** — a latency-sensitive victim runs
   solo, then next to an unthrottled bulk writer (p99 collapses), then
   next to the same writer behind a per-tenant token-bucket cap.  With
   QoS admission on, the victim's p99 must land within a bounded factor
   of its solo p99 — the throttle, not luck, restores the tail.

Per-tenant throttle counters (``fleet.<tenant>.*``) from the isolation
run land in ``BENCH_fleet.json`` alongside the figures.  IOPS figures
are throughput-marked (informational across environments); the p99
ratios and gate booleans are the hard gate.  Everything is
deterministic: same tree, same numbers.

Usage::

    python benchmarks/fleet_smoke.py [--out-dir DIR] [--duration S]
                                     [--budget SECONDS]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.cluster import StorageCluster
from repro.devices.hdd import HDD, HDDSpec
from repro.fleet import FleetRuntime, QoSLimits
from repro.obs import Registry, write_bench_json
from repro.runtime import ClientMachine, make_sharded_backend
from repro.runtime.blockdev import run_jobs
from repro.sim import Simulator
from repro.workloads import FioJob

MiB = 1 << 20
GiB = 1 << 30

#: tenants in the scaling fleet (the ISSUE floor is "at least 8")
FLEET_TENANTS = 8

#: noisy neighbour's per-tenant cap in the throttled isolation run;
#: burst_ops=1 below makes the bucket pace smoothly — a 50 ms default
#: burst of 256 KiB ops would still swamp the shared SSD queue in spikes
NOISY_CAP_IOPS = 100.0

#: with the noisy tenant capped, the victim's p99 must sit within this
#: factor of its solo p99 (unthrottled it blows far past this)
ISOLATION_P99_FACTOR = 4.0

#: generous wall-clock ceiling for all five timed runs; only trips on a
#: superlinear regression in the fleet/QoS plumbing
DEFAULT_BUDGET_S = 120.0


def hdd_cluster(sim: Simulator) -> StorageCluster:
    return StorageCluster(sim, 1, 6, lambda s, n: HDD(s, HDDSpec(), name=n))


def build_fleet():
    """Fresh rig: one simulated host + sharded HDD backend + fleet."""
    sim = Simulator()
    machine = ClientMachine(sim)
    backend = make_sharded_backend(sim, machine.network, hdd_cluster, 4)
    fleet = FleetRuntime(sim, machine, backend, obs=Registry())
    return sim, fleet


def run_scaling(n_tenants: int, duration: float):
    """n unthrottled tenants hammer the shared rig; returns per-vdisk IOPS."""
    sim, fleet = build_fleet()
    pairs = []
    for i in range(n_tenants):
        device = fleet.add_vdisk(
            f"vd{i}",
            tenant=f"t{i}",
            volume_size=1 * GiB,
            cache_size=64 * MiB,
            gc_enabled=False,
        )
        pairs.append(
            (device, FioJob(rw="randwrite", bs=4096, iodepth=8, size=1 * GiB, seed=i + 1))
        )
    results = run_jobs(sim, pairs, duration=duration)
    return [r.iops for r in results]


def run_isolation(noisy: bool, cap: QoSLimits | None, duration: float):
    """Victim (qd1 writer) with an optional bulk neighbour; returns
    (victim p99 seconds, victim IOPS, fleet registry)."""
    sim, fleet = build_fleet()
    victim = fleet.add_vdisk(
        "victim",
        tenant="victim",
        volume_size=1 * GiB,
        cache_size=64 * MiB,
        gc_enabled=False,
    )
    pairs = [
        (victim, FioJob(rw="randwrite", bs=4096, iodepth=1, size=1 * GiB, seed=1))
    ]
    if noisy:
        # big cache: the bulk writer must hammer the shared SSD, not
        # stall on its own write-cache space accounting
        neighbour = fleet.add_vdisk(
            "noisy",
            tenant="noisy",
            volume_size=4 * GiB,
            cache_size=4 * GiB,
            limits=cap,
            gc_enabled=False,
        )
        pairs.append(
            (neighbour, FioJob(rw="randwrite", bs=256 * 1024, iodepth=32, size=1 * GiB, seed=2))
        )
    results = run_jobs(sim, pairs, duration=duration)
    return results[0].latency_percentile(99), results[0].iops, fleet.obs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default="bench-out")
    parser.add_argument("--duration", type=float, default=0.5)
    parser.add_argument("--budget", type=float, default=DEFAULT_BUDGET_S)
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    summary = Registry()
    figures = {}

    # -- scaling: 1 tenant vs FLEET_TENANTS on the same rig ------------
    solo = run_scaling(1, args.duration)
    fleet_iops = run_scaling(FLEET_TENANTS, args.duration)
    single_iops = solo[0]
    aggregate = sum(fleet_iops)
    gate_scaling = aggregate > single_iops
    print(f"single tenant:            {single_iops:>9.0f} IOPS")
    print(
        f"{FLEET_TENANTS} tenants aggregate:      {aggregate:>9.0f} IOPS  "
        f"(min {min(fleet_iops):.0f} / max {max(fleet_iops):.0f} per vdisk)"
    )
    summary.gauge("fleet_smoke.single_tenant_iops").set(single_iops)
    summary.gauge("fleet_smoke.aggregate_iops").set(aggregate)
    summary.gauge("fleet_smoke.tenants").set(FLEET_TENANTS)
    figures["single_tenant_iops"] = round(single_iops, 1)
    figures[f"aggregate_iops_{FLEET_TENANTS}_tenants"] = round(aggregate, 1)
    figures["gate_aggregate_scaling"] = bool(gate_scaling)

    # -- isolation: victim p99 solo / noisy / noisy-throttled ----------
    p99_solo, iops_solo, _ = run_isolation(False, None, args.duration)
    p99_noisy, iops_noisy, _ = run_isolation(True, None, args.duration)
    p99_capped, iops_capped, obs = run_isolation(
        True, QoSLimits(iops=NOISY_CAP_IOPS, burst_ops=1), args.duration
    )
    ratio_noisy = p99_noisy / p99_solo
    ratio_capped = p99_capped / p99_solo
    gate_isolation = ratio_capped <= ISOLATION_P99_FACTOR
    print(f"victim p99 solo:          {p99_solo * 1e3:>9.2f} ms")
    print(
        f"victim p99 noisy:         {p99_noisy * 1e3:>9.2f} ms  "
        f"({ratio_noisy:.1f}x solo)"
    )
    print(
        f"victim p99 noisy capped:  {p99_capped * 1e3:>9.2f} ms  "
        f"({ratio_capped:.1f}x solo, bound {ISOLATION_P99_FACTOR:.1f}x)"
    )
    for tenant in ("victim", "noisy"):
        for metric in ("admitted", "throttled"):
            name = f"fleet.{tenant}.{metric}"
            summary.counter(name).inc(int(obs.value(name)))
    summary.gauge("fleet_smoke.victim_p99_solo_s").set(p99_solo)
    summary.gauge("fleet_smoke.victim_p99_noisy_s").set(p99_noisy)
    summary.gauge("fleet_smoke.victim_p99_capped_s").set(p99_capped)
    figures["victim_iops_solo"] = round(iops_solo, 1)
    figures["victim_iops_noisy"] = round(iops_noisy, 1)
    figures["victim_iops_capped"] = round(iops_capped, 1)
    figures["victim_p99_ratio_noisy"] = round(ratio_noisy, 3)
    figures["victim_p99_ratio_capped"] = round(ratio_capped, 3)
    figures["noisy_throttled_events"] = int(obs.value("fleet.noisy.throttled"))
    figures["gate_isolation_p99"] = bool(gate_isolation)

    gate_ok = gate_scaling and gate_isolation
    total_s = time.perf_counter() - t0
    figures["fleet_gates_pass"] = bool(gate_ok)
    figures["budget_s"] = args.budget
    figures["total_s"] = round(total_s, 3)
    Path(args.out_dir).mkdir(parents=True, exist_ok=True)
    path = write_bench_json("fleet", summary, figures=figures, out_dir=args.out_dir)
    print(f"\naggregate scaling + isolation gates: {gate_ok}")
    print(f"wall clock {total_s:.1f}s (budget {args.budget:.0f}s)")
    print(f"wrote {path}")

    if not gate_ok:
        print("fleet-smoke: FAIL: fleet gates did not hold", file=sys.stderr)
        return 1
    if total_s > args.budget:
        print(
            f"fleet-smoke: FAIL: {total_s:.1f}s exceeds the "
            f"{args.budget:.0f}s budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
