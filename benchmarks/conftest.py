"""Shared world-building for the benchmark harness.

Every benchmark reproduces one table or figure from the paper.  Scales
are reduced (seconds instead of 120-second runs, GiB instead of 80 GiB
volumes) so the whole harness finishes in minutes; the *shape* assertions
— who wins, by roughly what factor, where crossovers fall — are what each
benchmark checks, and the printed tables mirror the paper's rows/series
(run with ``-s`` to see them).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.cluster import StorageCluster
from repro.core import LSVDConfig
from repro.devices.hdd import HDD, HDDSpec
from repro.devices.ssd import SSD, SSDSpec
from repro.runtime import (
    BcacheRBDRuntime,
    ClientMachine,
    LSVDRuntime,
    RBDRuntime,
    SimulatedObjectStore,
)
from repro.sim import Simulator

GiB = 1 << 30
MiB = 1 << 20


def ssd_cluster(sim: Simulator) -> StorageCluster:
    """Table 1 config 1: 4 nodes x 8 consumer SATA SSDs."""
    return StorageCluster(
        sim, 4, 8, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n)
    )


def hdd_cluster(sim: Simulator) -> StorageCluster:
    """Table 1 config 2: 9 nodes x ~7 10K RPM SAS HDDs (62 disks)."""
    return StorageCluster(sim, 9, 7, lambda s, n: HDD(s, HDDSpec.sas_10k(), name=n))


@dataclass
class LSVDWorld:
    sim: Simulator
    machine: ClientMachine
    cluster: StorageCluster
    backend: SimulatedObjectStore
    device: LSVDRuntime


@dataclass
class BcacheWorld:
    sim: Simulator
    machine: ClientMachine
    cluster: StorageCluster
    rbd: RBDRuntime
    device: BcacheRBDRuntime


def make_lsvd(
    volume=4 * GiB,
    cache=8 * GiB,
    cluster_fn=ssd_cluster,
    config: LSVDConfig = None,
    **kw,
) -> LSVDWorld:
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = cluster_fn(sim)
    backend = SimulatedObjectStore(sim, cluster, machine.network)
    device = LSVDRuntime(
        sim, machine, backend, volume, cache, config or LSVDConfig(), name="vd", **kw
    )
    return LSVDWorld(sim, machine, cluster, backend, device)


def make_bcache(
    volume=4 * GiB, cache=8 * GiB, cluster_fn=ssd_cluster, **kw
) -> BcacheWorld:
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = cluster_fn(sim)
    rbd = RBDRuntime(sim, machine, cluster)
    device = BcacheRBDRuntime(sim, machine, rbd, cache_size=cache, **kw)
    return BcacheWorld(sim, machine, cluster, rbd, device)


def make_rbd(volume=4 * GiB, cluster_fn=ssd_cluster):
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = cluster_fn(sim)
    device = RBDRuntime(sim, machine, cluster)
    return sim, machine, cluster, device


@pytest.fixture
def once(benchmark):
    """Run the experiment exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
