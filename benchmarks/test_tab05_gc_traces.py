"""Table 5: simulated GC on (synthetic stand-ins for) CloudPhysics traces.

Paper setup: 32 MiB batches, GC start/stop at 70 %/75 % utilisation,
week-long VM traces.  Reported per trace: total written, final extent-map
size (no-merge / merge / merge+defrag), write amplification for the same
variants, and the merge (coalescing) ratio.

Shape targets (the corpus is proprietary; our generators match first-order
statistics only — see DESIGN.md):

* WAF is modest everywhere (the paper's worst is 1.97);
* the low-speed diffuse traces (w66/w59/w07) have the highest no-merge
  WAF; the hot-sweep traces (w10/w31/w05) sit near 1;
* w41 and w66 gain the most from merging (paper: 0.71 / 0.55), and
  merging substantially lowers their WAF (1.44->1.14, 1.97->1.35);
* w01 has by far the largest extent map, and hole-plugging
  defragmentation shrinks it at small WAF cost (§4.6).

Measured at scale 1/64 of the paper's footprints; WAF and merge ratio are
scale-invariant to first order, extent counts scale with the footprint.
"""

import pytest

from repro.analysis import Table
from repro.gcsim import GCSimulator
from repro.workloads import TRACE_PRESETS, CloudPhysicsTrace

SCALE = 1 / 64
ORDER = ["w10", "w04", "w66", "w01", "w07", "w31", "w59", "w41", "w05"]

PAPER = {  # (no-merge WAF, merge WAF, merge ratio)
    "w10": (1.11, 1.10, 0.01),
    "w04": (1.52, 1.44, 0.21),
    "w66": (1.97, 1.35, 0.55),
    "w01": (1.20, 1.18, 0.11),
    "w07": (1.82, 1.76, 0.06),
    "w31": (1.03, 1.02, 0.02),
    "w59": (1.75, 1.65, 0.14),
    "w41": (1.44, 1.14, 0.71),
    "w05": (1.08, 1.08, 0.00),
}


def simulate(name, merge, defrag_pages=0, scale=SCALE):
    trace = CloudPhysicsTrace(TRACE_PRESETS[name], scale=scale, seed=1)
    sim = GCSimulator(
        volume_size=trace.volume_size,
        batch_size=32 << 20,
        merge=merge,
        defrag_hole_pages=defrag_pages,
    )
    sim.replay(trace.writes())
    return sim.finish()


def run_all():
    out = {}
    for name in ORDER:
        out[name] = {
            "nomerge": simulate(name, merge=False),
            "merge": simulate(name, merge=True),
        }
    # the paper evaluates 8-KiB hole-plugging on w01, whose map it halves;
    # the defrag pair runs at 1/256 scale, where the synthetic trace's
    # fragmentation structure (hole-width distribution) is closest to it
    out["w01_defrag"] = {
        "merge": simulate("w01", merge=True, scale=1 / 256),
        "defrag": simulate("w01", merge=True, defrag_pages=2, scale=1 / 256),
    }
    return out


def test_tab05_gc_simulation(once):
    results = once(run_all)

    table = Table(
        f"Table 5: simulated LSVD GC on synthetic trace stand-ins "
        f"(scale {SCALE:.4g}; paper values in parentheses)",
        [
            "trace",
            "written GiB",
            "extents nm",
            "extents m",
            "WAF nomerge",
            "(paper)",
            "WAF merge",
            "(paper)",
            "merge ratio",
            "(paper)",
        ],
    )
    for name in ORDER:
        r = results[name]
        p_nm, p_m, p_ratio = PAPER[name]
        table.add(
            name,
            f"{r['merge'].client_bytes / 2**30:.2f}",
            r["nomerge"].extent_count,
            r["merge"].extent_count,
            f"{r['nomerge'].waf:.2f}",
            f"({p_nm:.2f})",
            f"{r['merge'].waf:.2f}",
            f"({p_m:.2f})",
            f"{r['merge'].merge_ratio:.2f}",
            f"({p_ratio:.2f})",
        )
    w01 = results["w01_defrag"]
    print(
        f"\nw01 hole-plugging defrag (<=8 KiB holes): extents "
        f"{w01['merge'].extent_count} -> {w01['defrag'].extent_count}, "
        f"WAF {w01['merge'].waf:.2f} -> {w01['defrag'].waf:.2f} "
        "(paper: map size halved at negligible WAF cost)"
    )
    table.show()

    nm_waf = {n: results[n]["nomerge"].waf for n in ORDER}
    m_waf = {n: results[n]["merge"].waf for n in ORDER}
    merge_ratio = {n: results[n]["merge"].merge_ratio for n in ORDER}
    extents = {n: results[n]["merge"].extent_count for n in ORDER}

    # WAF is modest everywhere, as in the paper (worst case 1.97)
    assert all(w < 2.1 for w in nm_waf.values())
    assert all(w < 2.1 for w in m_waf.values())
    # the low-speed diffuse traces have the highest WAF; hot-sweep near 1
    assert min(nm_waf[n] for n in ("w66", "w59", "w07")) > max(
        nm_waf[n] for n in ("w10", "w31", "w05")
    )
    assert max(nm_waf[n] for n in ("w31", "w05")) < 1.40
    # merge-ratio ordering tracks the paper's coalescing winners
    assert merge_ratio["w41"] > 0.35
    assert merge_ratio["w66"] > 0.25
    assert merge_ratio["w10"] < 0.1 and merge_ratio["w31"] < 0.1
    assert merge_ratio["w05"] < 0.05
    # for the coalescing winners, merging buys a big WAF improvement
    assert m_waf["w66"] < nm_waf["w66"] - 0.3
    assert m_waf["w41"] < nm_waf["w41"] - 0.3
    # merging never increases WAF
    for name in ORDER:
        assert m_waf[name] <= nm_waf[name] * 1.05
    # w01 has the biggest map; hole-plugging shrinks it substantially
    # (the paper's factor-2 was on the real trace; we see ~40%)
    assert extents["w01"] == max(extents.values())
    assert w01["defrag"].extent_count < w01["merge"].extent_count * 0.75
    assert w01["defrag"].waf < w01["merge"].waf * 1.25
