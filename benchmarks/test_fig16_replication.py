"""Figure 16: asynchronous replication by lazy object copy (§4.8).

Paper result: three concurrent fileserver instances write 103 GB to the
virtual disk over ~10 minutes; objects older than 60 s are copied to a
second object store.  Garbage collection deletes some objects before they
ship, so only 85 GB reach the replica — and despite out-of-order arrival,
the standard recovery rules always produce a consistent replica.
"""

import itertools
import random

import pytest

from repro.analysis import Table
from repro.core import LSVDConfig, LSVDVolume
from repro.core.replication import Replicator
from repro.crash import HistoryRecorder, PrefixChecker
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore
from repro.workloads import fileserver

MiB = 1 << 20
EPOCHS = 20
WRITES_PER_EPOCH = 120
MIN_AGE = 3.0  # "objects older than 60s" scaled to epoch units


def run_experiment():
    src = InMemoryObjectStore()
    dst = InMemoryObjectStore()
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=16)
    image = DiskImage(4 * MiB)
    vol = LSVDVolume.create(src, "vd", 64 * MiB, image, cfg)
    rep = Replicator(src, dst, "vd", min_age=MIN_AGE)
    rec = HistoryRecorder(vol.write, vol.flush)
    rng = random.Random(2)

    series = []
    for epoch in range(EPOCHS):
        # hot/medium/cold mix like the paper's three fileserver instances
        for _ in range(WRITES_PER_EPOCH):
            region = rng.random()
            if region < 0.6:
                lba = rng.randrange(0, 1024) * 4096  # hot
            elif region < 0.9:
                lba = rng.randrange(1024, 4096) * 4096  # medium
            else:
                lba = rng.randrange(4096, 16384) * 4096  # cold
            rec.write(lba, 4096)
        vol.poll()
        copied = rep.step(now=float(epoch))
        series.append(
            (
                epoch,
                vol.bs.stats.backend_bytes,
                rep.stats.bytes_copied,
                len(copied),
            )
        )
    vol.drain()
    rep.step(now=float(EPOCHS + MIN_AGE))
    return vol, rec, rep, dst, cfg, series


def test_fig16_async_replication(once):
    vol, rec, rep, dst, cfg, series = once(run_experiment)

    table = Table(
        "Figure 16: data transfer during asynchronous replication",
        ["epoch", "vdisk backend MiB", "replica MiB", "objects copied"],
    )
    for epoch, backend, copied, n in series:
        table.add(epoch, f"{backend / 2**20:.1f}", f"{copied / 2**20:.1f}", n)
    table.show()
    print(
        f"written to vdisk backend: {vol.bs.stats.backend_bytes / 2**20:.1f} MiB; "
        f"replicated: {rep.stats.bytes_copied / 2**20:.1f} MiB; "
        f"objects GC'd before shipping: {rep.stats.objects_skipped_deleted} "
        "(paper: 103 GB written, 85 GB replicated)"
    )

    # replication shipped a large fraction, but GC deletions kept it below
    # the total backend write volume (the paper's 85/103 effect)
    assert rep.stats.bytes_copied > 0
    assert rep.stats.objects_skipped_deleted > 0
    assert rep.stats.bytes_copied < vol.bs.stats.backend_bytes

    # the replica mounts and is a consistent prefix of the write history
    replica_cache = DiskImage(4 * MiB)
    replica = LSVDVolume.open(dst, "vd", replica_cache, cfg, cache_lost=True)
    verdict = PrefixChecker(rec).check(replica.read)
    assert verdict.ok_prefix, verdict.problems[:3]
    assert verdict.cut > 0  # it is not an empty prefix either
