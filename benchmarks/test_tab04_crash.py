"""Table 4: crash tests — does the image survive losing the cache?

The paper copies a 74K-file tree, resets the VM mid-copy, deletes the
cache device, and tries to mount.  LSVD mounted cleanly 3/3; bcache
produced one unmountable image whose files were all lost.

We verify the underlying guarantee directly with stamped writes: after
cache loss, an image "mounts" if it is a consistent prefix of the
acknowledged write history (a filesystem journal replay is exactly a
prefix-consistency check).
"""

import random

import pytest

from repro.analysis import Table
from repro.baselines import make_bcache_rbd
from repro.core import LSVDConfig, LSVDVolume
from repro.crash import HistoryRecorder, PrefixChecker
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20
TRIALS = 3
WRITES = 400


def lsvd_trial(seed):
    store = InMemoryObjectStore()
    image = DiskImage(2 * MiB)
    cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=16)
    vol = LSVDVolume.create(store, "vd", 16 * MiB, image, cfg)
    rng = random.Random(seed)
    rec = HistoryRecorder(vol.write, vol.flush)
    for i in range(WRITES):
        rec.write(rng.randrange(0, 2048) * 4096, 4096)
        if rng.random() < 0.1:
            rec.barrier()
    # VM reset + cache deleted: mount from the backend alone
    fresh = DiskImage(2 * MiB)
    recovered = LSVDVolume.open(store, "vd", fresh, cfg, cache_lost=True)
    verdict = PrefixChecker(rec).check(recovered.read)
    return verdict.ok_prefix


def bcache_trial(seed):
    cache, backing, _img = make_bcache_rbd("b", 16 * MiB, 2 * MiB)
    rng = random.Random(seed)
    rec = HistoryRecorder(cache.write, cache.flush)
    for i in range(WRITES):
        rec.write(rng.randrange(0, 2048) * 4096, 4096)
        if rng.random() < 0.15:
            cache.writeback_step(max_blocks=4)  # LBA order, not write order
    cache.lose_cache()
    verdict = PrefixChecker(rec).check(lambda off, n: backing.read(off, n)[0])
    return verdict.ok_prefix


def run_matrix():
    return (
        [lsvd_trial(seed) for seed in range(TRIALS)],
        [bcache_trial(seed) for seed in range(TRIALS * 3)],  # more seeds: the
        # corruption is probabilistic, as in the paper's 1-in-3
    )


def test_tab04_crash_matrix(once):
    lsvd_ok, bcache_ok = once(run_matrix)

    table = Table(
        "Table 4: consistency after crash + cache loss "
        "('mounts' = recovered image is a consistent prefix)",
        ["trial", "LSVD mounts?", "bcache mounts?"],
    )
    for i in range(max(len(lsvd_ok), len(bcache_ok))):
        table.add(
            i + 1,
            "Yes" if i < len(lsvd_ok) and lsvd_ok[i] else ("-" if i >= len(lsvd_ok) else "NO"),
            "Yes" if i < len(bcache_ok) and bcache_ok[i] else "NO",
        )
    table.show()

    # paper: LSVD mounted in all cases
    assert all(lsvd_ok)
    # paper: bcache lost an image in 1 of 3 runs; over more seeds we
    # must observe at least one corruption
    assert not all(bcache_ok)
