"""Figure 15: garbage collection under varmail (live vs stale data).

Paper result: varmail repeatedly re-writes the same blocks.  With GC
disabled the stale data grows nearly linearly; with GC enabled cleaning
starts once valid data drops to 70 % and the stale fraction stays bounded
(~30 %) for the rest of the run, at an overall write amplification of
1.176 and a throughput cost of ~2-10 %.
"""

import itertools

import pytest

from conftest import GiB, MiB, make_lsvd, ssd_cluster
from repro.analysis import Table
from repro.core import LSVDConfig
from repro.runtime.blockdev import drive_ops
from repro.workloads import FioJob, varmail

DURATION = 4.0
SAMPLE_EVERY = 0.5
VOLUME = 512 * MiB


def run_varmail(gc_enabled):
    world = make_lsvd(volume=VOLUME, cache=2 * GiB, gc_enabled=gc_enabled)
    model = varmail(VOLUME)
    ops = model.ops(seed=3)
    samples = []

    def sampler():
        while True:
            yield world.sim.timeout(SAMPLE_EVERY)
            live, total = world.device.occupancy()
            samples.append((world.sim.now, live, total - live))

    world.sim.process(sampler(), name="sampler")
    result = drive_ops(
        world.sim, world.device, itertools.islice(ops, 500_000), 16, DURATION
    )
    live, total = world.device.occupancy()
    return {
        "result": result,
        "samples": samples,
        "final_live": live,
        "final_garbage": total - live,
        "waf": world.device.write_amplification,
        "gc_objects": world.device.gc_objects_put,
    }


def test_fig15_gc_timeline(once):
    with_gc, without_gc = once(lambda: (run_varmail(True), run_varmail(False)))

    table = Table(
        "Figure 15: varmail live/stale data over time (LSVD, small cache)",
        ["t(s)", "GC-on live MiB", "GC-on stale MiB", "GC-off live MiB", "GC-off stale MiB"],
    )
    for (t, live_on, stale_on), (_t2, live_off, stale_off) in zip(
        with_gc["samples"], without_gc["samples"]
    ):
        table.add(
            f"{t:.1f}",
            f"{live_on / 2**20:.0f}",
            f"{stale_on / 2**20:.0f}",
            f"{live_off / 2**20:.0f}",
            f"{stale_off / 2**20:.0f}",
        )
    table.show()
    print(
        f"GC-on WAF={with_gc['waf']:.3f} (paper 1.176), "
        f"gc objects={with_gc['gc_objects']}, "
        f"throughput cost="
        f"{1 - with_gc['result'].ops / max(without_gc['result'].ops, 1):.1%} "
        f"(paper ~10% for varmail)"
    )

    # with GC, the stale fraction is bounded near the threshold
    total_on = with_gc["final_live"] + with_gc["final_garbage"]
    assert total_on > 0
    assert with_gc["final_garbage"] / total_on < 0.40
    # without GC, garbage keeps growing and exceeds the GC-on level
    assert without_gc["final_garbage"] > 1.5 * with_gc["final_garbage"]
    assert without_gc["gc_objects"] == 0
    # GC ran and cost a bounded slowdown.  The cost here is larger than
    # the paper's ~10% because the modelled backend has no spare
    # bandwidth at this small volume / high fill; temperature-aware
    # placement (the default config) brings it to ~36% from ~45% under
    # the legacy single-stream layout by copying less data per round.
    assert with_gc["gc_objects"] > 0
    slowdown = 1 - with_gc["result"].ops / max(without_gc["result"].ops, 1)
    assert slowdown < 0.40
    # overall write amplification stays modest (paper: 1.176).  Group
    # commit coalesces varmail's rapid re-writes inside the open batch,
    # so backend/client bytes can drop below 1 - the floor only guards
    # against the counter going nonsensical.
    assert 0.4 <= with_gc["waf"] < 1.6


# -- zipfian extension: temperature-aware placement under skew ----------------

ZIPF_VOLUME = 128 * MiB


def run_zipfian(placement, gc_policy):
    config = LSVDConfig(placement=placement, gc_policy=gc_policy)
    world = make_lsvd(volume=ZIPF_VOLUME, cache=2 * GiB, config=config)
    job = FioJob(
        rw="randwrite", bs=4096, size=ZIPF_VOLUME, seed=5, distribution="zipfian"
    )
    result = drive_ops(
        world.sim, world.device, itertools.islice(job.ops(), 500_000), 16, DURATION
    )
    live, total = world.device.occupancy()
    return {
        "result": result,
        "final_live": live,
        "final_garbage": total - live,
        "waf": world.device.write_amplification,
        "gc_objects": world.device.gc_objects_put,
    }


def test_fig15_zipfian_placement(once):
    """The figure's GC story under a zipfian skew: SepBIT + cost-benefit
    holds the stale fraction just as bounded while copying less data per
    cleaning round than the greedy single-stream baseline."""
    sepbit, legacy = once(
        lambda: (
            run_zipfian("sepbit", "cost_benefit"),
            run_zipfian("legacy", "greedy"),
        )
    )
    print(
        f"zipfian WAF sepbit={sepbit['waf']:.3f} legacy={legacy['waf']:.3f}, "
        f"gc objects sepbit={sepbit['gc_objects']} legacy={legacy['gc_objects']}"
    )
    for run in (sepbit, legacy):
        total = run["final_live"] + run["final_garbage"]
        assert total > 0
        assert run["final_garbage"] / total < 0.40
        assert run["gc_objects"] > 0
        # intra-batch coalescing of the zipfian hot set can push
        # backend/client bytes below 1; only guard the sane range
        assert 0.4 <= run["waf"] < 2.0
    # the headline of the placement layer: less GC copying under skew
    assert sepbit["waf"] <= legacy["waf"]
