"""Figure 6: random-write throughput, large cache (in-cache operation).

Paper result: LSVD is 20-30 % faster than bcache+RBD for 4 KiB and 16 KiB
random writes (reaching ~60K / ~50K IOPS, approaching the device's rated
90K), and only falls behind for 64 KiB writes at queue depth 32 — where
the prototype's destage reads share the cache device with client writes.
"""

import pytest

from conftest import GiB, make_bcache, make_lsvd
from repro.analysis import Table
from repro.runtime import run_fio
from repro.workloads import FioJob

DURATION = 1.0
WARMUP = 0.3
BLOCK_SIZES = [4096, 16384, 65536]
QUEUE_DEPTHS = [4, 16, 32]


def run_grid():
    results = {}
    for bs in BLOCK_SIZES:
        for qd in QUEUE_DEPTHS:
            job = FioJob(rw="randwrite", bs=bs, iodepth=qd, size=4 * GiB, seed=1)
            lsvd = make_lsvd()
            r_l = run_fio(lsvd.sim, lsvd.device, job, DURATION, WARMUP)
            bc = make_bcache()
            r_b = run_fio(bc.sim, bc.device, job, DURATION, WARMUP)
            results[(bs, qd)] = (r_l, r_b)
    return results


def test_fig06_random_write_large_cache(once):
    results = once(run_grid)

    table = Table(
        "Figure 6: random write, 80GiB-volume-style, large cache "
        "(LSVD vs bcache+RBD)",
        ["bs", "QD", "LSVD MB/s", "bcache MB/s", "LSVD IOPS", "ratio"],
    )
    for (bs, qd), (r_l, r_b) in sorted(results.items()):
        table.add(
            f"{bs // 1024}K",
            qd,
            f"{r_l.mbps:.0f}",
            f"{r_b.mbps:.0f}",
            f"{r_l.iops / 1e3:.1f}K",
            f"{r_l.iops / max(r_b.iops, 1):.2f}",
        )
    table.show()

    # shape: LSVD wins small writes by ~20-30% at moderate/high depth
    for bs in (4096, 16384):
        for qd in (16, 32):
            r_l, r_b = results[(bs, qd)]
            assert r_l.iops > r_b.iops * 1.05, (bs, qd)
            assert r_l.iops < r_b.iops * 1.8, (bs, qd)
    # shape: the one cell LSVD loses is 64K at depth 32
    r_l, r_b = results[(65536, 32)]
    assert r_l.mbps < r_b.mbps
    # absolute ballpark: 4K IOPS approaches the rated device speed
    r_l, _ = results[(4096, 32)]
    assert 40_000 < r_l.iops < 90_000
