"""Shard-scaling smoke run: backend PUT throughput vs shard count.

``make shard-smoke`` (CI uploads the artifact) drives the timed LSVD
runtime over a :class:`~repro.runtime.sharded.ShardedSimulatedBackend` of
1, 2, 4 and 8 shards — each shard an independent slow cluster, all behind
the one client NIC — with a write cache small enough that the client is
back-pressured to the destage drain rate.  Aggregate backend PUT
throughput must rise monotonically all the way from 1 to 8 shards (the
acceptance shape, ``monotonic_1_to_8``): with per-shard destage queues
and the group-commit worker keeping the submission path off the barrier
critical path, eight slow shards still under-fill the client NIC, so the
old 8-shard ceiling (§4.5's saturation story, from the other side) no
longer bites.  The intermediate ``monotonic_1_to_4`` figure is kept in
the artifact for continuity with earlier runs.

Everything is deterministic: same tree, same numbers.

Usage::

    python benchmarks/shard_smoke.py [--out-dir DIR] [--duration S]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.cluster import StorageCluster
from repro.core import LSVDConfig
from repro.devices.hdd import HDD, HDDSpec
from repro.obs import Registry, write_bench_json
from repro.runtime import ClientMachine, LSVDRuntime, make_sharded_backend
from repro.runtime.blockdev import run_fio
from repro.runtime.params import LSVDParams
from repro.sim import Simulator
from repro.workloads import FioJob

MiB = 1 << 20
GiB = 1 << 30

#: slow media so one shard's cluster, not the client, starts as the
#: bottleneck (see tests/test_shard_runtime.py for the same rig)
SLOW_DISK = HDDSpec(transfer_rate=15e6)

SHARD_COUNTS = (1, 2, 4, 8)


def slow_cluster(sim: Simulator) -> StorageCluster:
    return StorageCluster(sim, 1, 6, lambda s, n: HDD(s, SLOW_DISK, name=n))


def run_one(n_shards: int, duration: float):
    """One measurement: returns (aggregate PUT MB/s, put p99 s, registry)."""
    sim = Simulator()
    machine = ClientMachine(sim)
    backend = make_sharded_backend(sim, machine.network, slow_cluster, n_shards)
    device = LSVDRuntime(
        sim,
        machine,
        backend,
        volume_size=1 * GiB,
        # small enough to back-pressure to the destage rate, large enough
        # that admission never starves the 8-shard fan between drains
        cache_size=256 * MiB,
        config=LSVDConfig(batch_size=4 * MiB),
        params=LSVDParams(destage_workers=max(8, 2 * n_shards)),
        gc_enabled=False,
        name="vd",
    )
    job = FioJob(rw="write", bs=64 * 1024, iodepth=16, size=1 * GiB)
    run_fio(sim, device, job, duration=duration)
    obs = backend.obs
    put_mbps = obs.value("backend.bytes_put") / duration / 1e6
    put_p99 = obs.histogram("backend.put_latency_s").percentile(99)
    return put_mbps, put_p99, obs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="bench-out")
    parser.add_argument("--duration", type=float, default=2.0)
    args = parser.parse_args(argv)

    summary = Registry()
    figures = {}
    print(f"{'shards':>6}  {'PUT MB/s':>10}  {'put p99 ms':>10}  "
          f"{'imbalance':>9}  {'per-shard puts':>14}")
    for n_shards in SHARD_COUNTS:
        put_mbps, put_p99, obs = run_one(n_shards, args.duration)
        imbalance = obs.value("shard.put_imbalance")
        per_shard = [int(obs.value(f"shard.{i}.puts")) for i in range(n_shards)]
        print(f"{n_shards:>6}  {put_mbps:>10.1f}  {put_p99 * 1e3:>10.2f}  "
              f"{imbalance:>9.3f}  {per_shard}")
        summary.gauge(f"shard_smoke.{n_shards}.put_mbps").set(put_mbps)
        summary.gauge(f"shard_smoke.{n_shards}.put_p99_s").set(put_p99)
        summary.gauge(f"shard_smoke.{n_shards}.put_imbalance").set(imbalance)
        figures[f"put_mbps_{n_shards}_shards"] = put_mbps
        figures[f"put_p99_s_{n_shards}_shards"] = put_p99

    # the acceptance shape: monotonic aggregate throughput 1 -> 8 shards
    monotonic_1_to_4 = (
        figures["put_mbps_2_shards"] > figures["put_mbps_1_shards"]
        and figures["put_mbps_4_shards"] > figures["put_mbps_2_shards"]
    )
    monotonic = (
        monotonic_1_to_4
        and figures["put_mbps_8_shards"] > figures["put_mbps_4_shards"]
    )
    figures["monotonic_1_to_4"] = bool(monotonic_1_to_4)
    figures["monotonic_1_to_8"] = bool(monotonic)
    Path(args.out_dir).mkdir(parents=True, exist_ok=True)
    path = write_bench_json(
        "shard_smoke", summary, figures=figures, out_dir=args.out_dir
    )
    print(f"\nmonotonic 1->8: {monotonic}")
    print(f"wrote {path}")
    return 0 if monotonic else 1


if __name__ == "__main__":
    raise SystemExit(main())
