"""Table 6: fine-grained single-operation latency breakdown.

Paper measurements of the prototype (microseconds): a read miss is
dominated by the ~5.9 ms S3 range request; a write's critical path is the
~64 us NVMe log write plus map update, with the kernel/user plumbing
(context switch ~50 us, boundary crossings ~20-27 us, golang overhead
34-63 us) in the background.

Here we measure isolated QD=1 operations on the simulated stack and
decompose their latency against the calibrated parameters.
"""

import pytest

from conftest import GiB, make_lsvd
from repro.analysis import Table
from repro.runtime.params import LSVDParams
from repro.sim import Simulator
from repro.workloads.base import IOOp


def one_op_latency(world, op):
    start = world.sim.now
    done = world.device.submit(op)
    world.sim.run_until_event(done)
    return world.sim.now - start


def measure():
    params = LSVDParams()
    hit_world = make_lsvd(read_hit_rate=1.0)
    miss_world = make_lsvd(read_hit_rate=0.0)
    write_world = make_lsvd()
    return {
        "write": one_op_latency(write_world, IOOp("write", 4096, 4096)),
        "read_hit": one_op_latency(hit_world, IOOp("read", 4096, 4096)),
        "read_miss": one_op_latency(miss_world, IOOp("read", 4096, 4096)),
        "barrier": one_op_latency(write_world, IOOp("flush")),
        "params": params,
    }


def test_tab06_overhead_breakdown(once):
    m = once(measure)
    params = m["params"]

    us = lambda s: f"{s * 1e6:.0f}"
    table = Table(
        "Table 6: isolated single-operation latencies (QD=1, microseconds)",
        ["operation", "measured us", "dominant component"],
    )
    table.add("write (4K)", us(m["write"]), f"NVMe log write + CPU ({us(params.write_cpu)}us)")
    table.add("read hit (4K)", us(m["read_hit"]), f"NVMe read + CPU ({us(params.read_hit_cpu)}us)")
    table.add("read miss (4K)", us(m["read_miss"]), f"S3 range GET ({us(params.s3_latency)}us)")
    table.add("commit barrier", us(m["barrier"]), "single device flush")
    table.show()

    # the read miss is dominated by the S3 request (paper: 5920 of ~6200us)
    assert m["read_miss"] > 0.8 * params.s3_latency
    assert m["read_miss"] > 5e-3
    # hits and writes are 1-2 orders of magnitude cheaper
    assert m["write"] < m["read_miss"] / 20
    assert m["read_hit"] < m["read_miss"] / 20
    # a barrier costs roughly one flush, not a metadata storm
    assert m["barrier"] < 0.3e-3
    # writes complete in the ~100us regime the paper's Table 6 implies
    assert 30e-6 < m["write"] < 300e-6
