"""Compare fresh BENCH_*.json against the committed baselines.

``make bench-diff`` reads every ``benchmarks/baselines/BENCH_*.json`` and
diffs it against the same-named file in ``bench-out/`` (produced by the
smoke targets).  Figures fall into three classes:

* **gates** — boolean figures (``gate_*``, ``monotonic_*``, ...).  A
  baseline ``true`` that came back ``false`` is a hard failure; a new
  ``true`` is an improvement and just noted.
* **deterministic** — virtual-clock / simulator figures (counts, write
  amplification, simulated percentiles).  Both stacks run on virtual
  clocks, so these must match the baseline to ``--tolerance`` (relative,
  default 1e-6) or the diff fails.
* **informational** — wall-clock figures (ops/s, MB/s throughput measured
  with ``perf_counter``, overhead fractions, timing budgets).  Deltas are
  printed but never gate: CI boxes are too noisy to pin wall time.

A figure present in the baseline but missing from the fresh run fails the
diff (schema regressions should be deliberate: rerun the smokes and
``--update`` the baselines).  A fresh figure with no baseline is noted
only.  Baselines exist for the benches whose figures are worth pinning;
a baseline with no fresh counterpart is skipped with a warning so a
partial smoke run stays usable locally.

Usage::

    python benchmarks/bench_diff.py [--bench-dir bench-out]
        [--baseline-dir benchmarks/baselines] [--tolerance 1e-6] [--update]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
from typing import Dict, List, Tuple

# Substrings that mark a figure as wall-clock (informational).  Everything
# else numeric is virtual-clock deterministic and gated by --tolerance.
WALL_CLOCK_MARKERS = (
    "mbps",
    "iops",
    "_ops",
    "wallclock",
    "overhead",
    "speedup",
    "enabled_s",
    "disabled_s",
    "total_s",
    "budget_s",
)


def is_wall_clock(name: str) -> bool:
    return any(marker in name for marker in WALL_CLOCK_MARKERS)


def load_figures(path: pathlib.Path) -> Dict[str, object]:
    document = json.loads(path.read_text(encoding="utf-8"))
    figures = document.get("figures", {})
    return figures if isinstance(figures, dict) else {}


def rel_delta(base: float, fresh: float) -> float:
    if base == fresh:
        return 0.0
    scale = max(abs(base), abs(fresh))
    return (fresh - base) / scale if scale else 0.0


def diff_bench(
    name: str,
    baseline: Dict[str, object],
    fresh: Dict[str, object],
    tolerance: float,
) -> Tuple[List[str], List[str]]:
    """Return (report lines, failure lines) for one BENCH file pair."""
    lines: List[str] = []
    failures: List[str] = []
    for key in sorted(set(baseline) | set(fresh)):
        if key not in fresh:
            failures.append(f"{name}: figure '{key}' missing from fresh run")
            continue
        if key not in baseline:
            lines.append(f"  {key:<44} {fresh[key]!r:>14}  new (no baseline)")
            continue
        base, new = baseline[key], fresh[key]
        if isinstance(base, bool) or isinstance(new, bool):
            if base and not new:
                failures.append(f"{name}: gate '{key}' regressed true -> false")
            note = "ok" if bool(base) == bool(new) else (
                "REGRESSED" if base else "improved"
            )
            lines.append(f"  {key:<44} {base!s:>7} -> {new!s:<7} {note}")
            continue
        if not isinstance(base, (int, float)) or not isinstance(new, (int, float)):
            if base != new:
                failures.append(f"{name}: figure '{key}' changed {base!r} -> {new!r}")
            continue
        delta = rel_delta(float(base), float(new))
        if is_wall_clock(key):
            lines.append(
                f"  {key:<44} {base:>14.6g} -> {new:<14.6g} {delta:+8.2%}  (wall clock, info only)"
            )
            continue
        status = "ok" if abs(delta) <= tolerance else "DRIFTED"
        lines.append(f"  {key:<44} {base:>14.6g} -> {new:<14.6g} {delta:+8.2%}  {status}")
        if abs(delta) > tolerance:
            failures.append(
                f"{name}: deterministic figure '{key}' drifted "
                f"{base!r} -> {new!r} ({delta:+.2%} > {tolerance:.0%} tolerance)"
            )
    return lines, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench-dir", default="bench-out")
    parser.add_argument("--baseline-dir", default="benchmarks/baselines")
    parser.add_argument("--tolerance", type=float, default=1e-6)
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy fresh BENCH files over the baselines instead of diffing",
    )
    args = parser.parse_args(argv)

    bench_dir = pathlib.Path(args.bench_dir)
    baseline_dir = pathlib.Path(args.baseline_dir)

    if args.update:
        baseline_dir.mkdir(parents=True, exist_ok=True)
        copied = 0
        for path in sorted(bench_dir.glob("BENCH_*.json")):
            shutil.copy(path, baseline_dir / path.name)
            print(f"baseline updated: {baseline_dir / path.name}")
            copied += 1
        if not copied:
            print(f"no BENCH_*.json under {bench_dir}; run the smoke targets first")
            return 1
        return 0

    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines under {baseline_dir}; seed them with --update")
        return 1

    failures: List[str] = []
    compared = 0
    for base_path in baselines:
        fresh_path = bench_dir / base_path.name
        if not fresh_path.exists():
            print(f"{base_path.name}: not in {bench_dir} (smoke not run) -- skipped")
            continue
        compared += 1
        lines, bench_failures = diff_bench(
            base_path.name,
            load_figures(base_path),
            load_figures(fresh_path),
            args.tolerance,
        )
        print(f"{base_path.name}:")
        for line in lines:
            print(line)
        failures.extend(bench_failures)

    if not compared:
        print("nothing compared: no fresh BENCH files matched a baseline")
        return 1
    if failures:
        print(f"\nbench-diff: {len(failures)} failure(s)")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print(f"\nbench-diff: {compared} bench file(s) within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
