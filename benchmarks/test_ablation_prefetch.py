"""Ablation: temporal read-ahead (§3.2, §6.3).

LSVD prefetches by *temporal* locality: a backend read pulls in data
written around the same time as the missed block, whatever its address.
This bench measures backend GET counts with and without prefetch under
two read patterns:

* temporal-recall — reads revisit blocks in roughly the order they were
  written (restart-after-reboot, log replay): prefetch should eliminate
  most GETs;
* spatial-scan — sequential address-order reads of data written in a
  scattered order: temporal prefetch helps far less, the regime the
  paper's §6.3 flags for future "restoring spatial ordering during GC".
"""

import random

import pytest

from repro.core import LSVDConfig, LSVDVolume
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore

MiB = 1 << 20
BLOCK = 4096
N_BLOCKS = 1024


def build(prefetch_bytes):
    store = InMemoryObjectStore()
    cfg = LSVDConfig(
        batch_size=128 * 1024, checkpoint_interval=32, prefetch_bytes=prefetch_bytes
    )
    vol = LSVDVolume.create(store, "vd", 32 * MiB, DiskImage(4 * MiB), cfg)
    # write temporally ordered but spatially scattered data
    rng = random.Random(7)
    write_order = list(range(N_BLOCKS))
    rng.shuffle(write_order)
    for i, blk in enumerate(write_order):
        vol.write(blk * BLOCK, bytes([i % 251 + 1]) * BLOCK)
    vol.drain()
    # cold caches: everything must come from the backend
    vol.wc.release_through(vol.wc.next_seq)
    vol.rc.clear()
    return store, vol, write_order


def gets(store):
    return store.stats.gets + store.stats.range_gets


def run_pattern(prefetch_bytes, pattern):
    store, vol, write_order = build(prefetch_bytes)
    before = gets(store)
    if pattern == "temporal":
        order = write_order  # revisit in write order
    else:
        order = sorted(write_order)  # address order
    for blk in order:
        vol.read(blk * BLOCK, BLOCK)
    return gets(store) - before


def run_all():
    out = {}
    for prefetch in (BLOCK, 128 * 1024):  # minimum (off) vs default
        for pattern in ("temporal", "spatial"):
            out[(prefetch, pattern)] = run_pattern(prefetch, pattern)
    return out


def test_ablation_temporal_prefetch(once):
    results = once(run_all)

    from repro.analysis import Table

    table = Table(
        "Ablation: temporal read-ahead (backend GETs to read 1024 blocks)",
        ["prefetch", "temporal-recall GETs", "spatial-scan GETs"],
    )
    for prefetch in (BLOCK, 128 * 1024):
        table.add(
            f"{prefetch // 1024}K",
            results[(prefetch, "temporal")],
            results[(prefetch, "spatial")],
        )
    table.show()

    no_pf_temporal = results[(BLOCK, "temporal")]
    pf_temporal = results[(128 * 1024, "temporal")]
    pf_spatial = results[(128 * 1024, "spatial")]
    # prefetch slashes backend reads for temporally local access
    assert pf_temporal < no_pf_temporal / 5
    # and helps spatial scans much less (they fight the log order)
    assert pf_temporal < pf_spatial
