"""Span-tracing smoke: attribution correctness + tracing overhead gates.

``make span-smoke`` (CI uploads the artifact) drives the causal span
trees (:mod:`repro.obs.spans`) through both stacks and gates on:

* **additivity** — on the virtual clock, every completed tree's
  critical-path breakdown must sum to its measured completion latency
  (the boundary sweep charges each elementary interval exactly once, so
  the error bound is float rounding, not model slack).  Checked for the
  pure-logic volume behind a :class:`~repro.obs.TimedStore` and for the
  timed runtime's write/read/barrier/destage trees, and again for the
  p50/p99 decompositions (mean-of-sums == sum-of-means).
* **round-trip** — the slowest trees survive ``to_dict``/``from_dict``
  with byte-identical JSON (the flight-recorder bundle's contract).
* **overhead** — a span-enabled hot write/read loop (no TimedStore, so
  span bookkeeping is a visible fraction) must stay within
  ``OVERHEAD_CEILING`` of the same loop with the recorder disabled;
  measured as paired per-chunk timings on two identical volumes
  (median-of-``TRIALS``) so CPU clock drift cancels out of the ratio.

On any gate failure the recorder's debug bundle is dumped next to the
``BENCH_span.json`` artifact so the offending trees ship with the CI log.

Usage::

    python benchmarks/span_smoke.py [--out-dir DIR] [--quick]
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import time
from pathlib import Path

from repro.core import LSVDConfig, LSVDVolume
from repro.devices.image import DiskImage
from repro.objstore import InMemoryObjectStore
from repro.obs import Registry, TimedStore, write_bench_json
from repro.obs.spans import Span

KiB = 1 << 10
MiB = 1 << 20
GiB = 1 << 30

#: span-enabled hot loop must stay within this fraction of disabled
OVERHEAD_CEILING = 0.10
#: median-of-N paired overhead trials
TRIALS = 5
#: chunks per trial; each chunk is timed back-to-back on both arms
SLICES = 32
#: additivity tolerance: float rounding across one tree's boundary sweep
ADD_TOL = 1e-9


def _tree_error(record) -> float:
    """|sum(stage seconds) - completion latency| for one tree."""
    return abs(sum(record.breakdown.values()) - record.total)


def _check_additive(analyzer) -> tuple[int, int, float]:
    """(trees, violations, worst error) over every completed tree."""
    worst = 0.0
    bad = 0
    records = analyzer.records()
    for record in records:
        err = _tree_error(record)
        worst = max(worst, err)
        if err > ADD_TOL + ADD_TOL * record.total:
            bad += 1
    return len(records), bad, worst


def _check_decompose(analyzer) -> bool:
    """p50/p99 decompositions must be additive for every root name."""
    for name in analyzer.root_names():
        for pct in (50, 99):
            d = analyzer.decompose(pct, name)
            if d["count"] == 0:
                continue
            err = abs(sum(d["stages"].values()) - d["latency_s"])
            if err > ADD_TOL + ADD_TOL * d["latency_s"]:
                return False
    return True


def _check_roundtrip(recorder) -> bool:
    """Slowest trees must survive to_dict/from_dict byte-identically."""
    for root in recorder.slowest(8):
        first = json.dumps(root.to_dict(), sort_keys=True)
        again = json.dumps(Span.from_dict(root.to_dict()).to_dict(), sort_keys=True)
        if first != again:
            return False
    return True


# ---------------------------------------------------------------------------
# correctness: pure-logic volume on the TimedStore virtual clock
# ---------------------------------------------------------------------------

def core_trees(ops: int):
    """Returns (recorder, trees, violations, worst_err) for the core stack."""
    obs = Registry()
    timed = TimedStore(InMemoryObjectStore(), obs)
    obs.trace.clock = timed.now
    obs.spans.clock = timed.now
    config = LSVDConfig(batch_size=256 * KiB, checkpoint_interval=16)
    vol = LSVDVolume.create(
        timed, "spans", 32 * MiB, DiskImage(8 * MiB), config, obs=obs
    )
    window = 256
    state = 1
    offsets = []
    for i in range(ops):
        state = (state * 48271) % 2147483647
        offset = (state % window) * 4096
        offsets.append(offset)
        vol.write(offset, bytes([i % 256]) * 4096)
        if i % 16 == 15:
            vol.flush()
    vol.drain()
    for offset in offsets[: ops // 2]:
        vol.read(offset, 4096)
    vol.close()
    trees, bad, worst = _check_additive(obs.spans.analyzer)
    return obs.spans, trees, bad, worst


# ---------------------------------------------------------------------------
# correctness: timed runtime on the simulated clock
# ---------------------------------------------------------------------------

def runtime_trees():
    """Returns (recorder, trees, violations, worst_err) for the runtime."""
    from repro.cluster import StorageCluster
    from repro.devices.ssd import SSD, SSDSpec
    from repro.runtime import (
        ClientMachine,
        LSVDRuntime,
        SimulatedObjectStore,
        run_fio,
    )
    from repro.sim import Simulator
    from repro.workloads import FioJob

    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = StorageCluster(
        sim, 4, 8, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n)
    )
    backend = SimulatedObjectStore(sim, cluster, machine.network)
    device = LSVDRuntime(sim, machine, backend, 1 * GiB, 4 * GiB, LSVDConfig())
    job = FioJob(rw="randwrite", bs=4096, iodepth=16, size=256 * MiB, seed=1)
    job = job  # fsync-free: destage/barrier trees come from the batcher
    run_fio(sim, device, job, duration=0.3, warmup=0.05)
    trees, bad, worst = _check_additive(device.obs.spans.analyzer)
    return device.obs.spans, trees, bad, worst


# ---------------------------------------------------------------------------
# overhead: span-enabled vs disabled hot loop (wall clock)
# ---------------------------------------------------------------------------

def bench_overhead(quick: bool):
    """(enabled_s, disabled_s, overhead fraction) from paired slices.

    CPU clocks drift on second timescales (turbo, thermal), so timing
    one whole arm after the other confounds drift with tracing cost.
    Instead each trial drives two identical volumes — spans enabled and
    disabled — through the same offset sequence in ``SLICES`` chunks,
    timing each chunk back-to-back on both volumes (order alternating
    per chunk), so drift lands on both arms of every pair.  The trial
    with the median enabled/disabled ratio of ``TRIALS`` is reported.
    """
    size = 64 * MiB
    total = 2 * MiB if quick else 8 * MiB
    n_ios = total // (4 * KiB)
    rng = random.Random(7)
    offsets = [rng.randrange(0, size // (4 * KiB)) * 4 * KiB for _ in range(n_ios)]
    payload = bytes(range(256)) * 16
    step = max(1, n_ios // SLICES)
    chunks = [offsets[i : i + step] for i in range(0, n_ios, step)]

    def make_vol(spans_enabled: bool):
        config = LSVDConfig(batch_size=1 * MiB, checkpoint_interval=1000)
        vol = LSVDVolume.create(
            InMemoryObjectStore(), "ovh", size, DiskImage(16 * MiB), config
        )
        vol.gc_enabled = False
        if not spans_enabled:
            vol.obs.spans.disable()
        return vol

    def timed_phase(vol, chunk, write: bool) -> float:
        t0 = time.perf_counter()
        if write:
            for off in chunk:
                vol.write(off, payload)
        else:
            for off in chunk:
                vol.read(off, 4 * KiB)
        return time.perf_counter() - t0

    def trial():
        vol_e, vol_d = make_vol(True), make_vol(False)
        gc.collect()
        t_e = t_d = 0.0
        for phase_write in (True, False):
            for i, chunk in enumerate(chunks):
                if i % 2 == 0:
                    t_e += timed_phase(vol_e, chunk, phase_write)
                    t_d += timed_phase(vol_d, chunk, phase_write)
                else:
                    t_d += timed_phase(vol_d, chunk, phase_write)
                    t_e += timed_phase(vol_e, chunk, phase_write)
            if phase_write:
                vol_e.flush()
                vol_d.flush()
        return t_e, t_d

    trial()  # warmup, discarded
    results = [trial() for _ in range(TRIALS)]
    results.sort(key=lambda td: td[0] / td[1])
    enabled, disabled = results[len(results) // 2]
    overhead = enabled / disabled - 1.0 if disabled > 0 else 0.0
    return enabled, disabled, overhead


# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default="bench-out")
    parser.add_argument("--ops", type=int, default=600)
    parser.add_argument(
        "--quick", action="store_true", help="smaller hot loop (local sanity)"
    )
    args = parser.parse_args(argv)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    summary = Registry()
    figures = {}

    # overhead first: the correctness suites retain tens of thousands of
    # trees, and a heap full of old-generation objects taxes the span-
    # enabled arm's extra collections, overstating the tracing overhead
    enabled_s, disabled_s, overhead = bench_overhead(args.quick)
    gate_overhead = overhead <= OVERHEAD_CEILING
    print(f"overhead: enabled {enabled_s:.3f}s vs disabled {disabled_s:.3f}s "
          f"-> {overhead * 100:+.1f}% (ceiling {OVERHEAD_CEILING * 100:.0f}%)")

    core_rec, core_n, core_bad, core_err = core_trees(args.ops)
    print(f"core:    {core_n} trees, {core_bad} non-additive "
          f"(worst err {core_err:.2e}s), open roots {core_rec.open_roots}")
    rt_rec, rt_n, rt_bad, rt_err = runtime_trees()
    print(f"runtime: {rt_n} trees, {rt_bad} non-additive "
          f"(worst err {rt_err:.2e}s), open roots {rt_rec.open_roots}")

    gate_core = core_n > 0 and core_bad == 0 and core_rec.open_roots == 0
    gate_runtime = rt_n > 0 and rt_bad == 0
    gate_decompose = _check_decompose(core_rec.analyzer) and _check_decompose(
        rt_rec.analyzer
    )
    gate_roundtrip = _check_roundtrip(core_rec) and _check_roundtrip(rt_rec)

    figures.update(
        {
            "core_trees": core_n,
            "core_nonadditive": core_bad,
            "core_worst_err_s": core_err,
            "runtime_trees": rt_n,
            "runtime_nonadditive": rt_bad,
            "runtime_worst_err_s": rt_err,
            "span_enabled_s": enabled_s,
            "span_disabled_s": disabled_s,
            "span_overhead_frac": overhead,
            "gate_additive_core": bool(gate_core),
            "gate_additive_runtime": bool(gate_runtime),
            "gate_decompose_additive": bool(gate_decompose),
            "gate_roundtrip": bool(gate_roundtrip),
            "gate_overhead_10pct": bool(gate_overhead),
        }
    )
    summary.gauge("span.core_trees").set(core_n)
    summary.gauge("span.runtime_trees").set(rt_n)
    summary.gauge("span.overhead_frac").set(overhead)
    core_rec.publish(summary)

    path = write_bench_json("span", summary, figures=figures, out_dir=out_dir)
    print(f"wrote {path}")

    ok = (
        gate_core
        and gate_runtime
        and gate_decompose
        and gate_roundtrip
        and gate_overhead
    )
    if not ok:
        bundle = out_dir / "flightrec_span_smoke.json"
        (rt_rec if not (gate_runtime and gate_decompose) else core_rec).dump_debug_bundle(
            bundle, reason="span_smoke gate failure"
        )
        print(f"GATE FAILURE — flight bundle dumped to {bundle}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
