"""Lint wall-clock gate: the flow-sensitive analyzer must stay cheap.

``make lint-bench`` (CI uploads the artifact) runs the full invariant
checker — all fourteen rules, including the CFG/dataflow passes — over
every linted tree (``src/repro``, ``benchmarks``, ``examples``) and
writes ``BENCH_lint.json`` with:

* total wall-clock for the combined run, plus per-rule wall-clock from
  single-rule passes (each pass re-parses, so per-rule numbers bound the
  rule's own cost from above);
* the machine-readable diagnostics document (the same JSON the CLI
  emits), so the artifact doubles as a lint report.

The gate fails (exit 1) if the combined run exceeds a deliberately
generous budget — the point is to catch a superlinear regression in the
CFG builder or a non-converging transfer function, not to police noise —
or if any diagnostic is produced.

Usage::

    python benchmarks/lint_bench.py [--out-dir DIR] [--budget SECONDS]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from dataclasses import replace
from typing import List

from repro.lint import LintConfig, run_lint
from repro.lint.reporters import json_document
from repro.lint.rules import ALL_RULES

REPO = pathlib.Path(__file__).resolve().parents[1]
#: every tree the analyzer gates (mirror tests/test_lint_clean.py)
LINTED = [REPO / "src" / "repro", REPO / "benchmarks", REPO / "examples"]

#: generous ceiling for the combined all-rules run.  The tree currently
#: lints in well under a second; 30 s only trips on a superlinear
#: regression (CFG blow-up, worklist that stops converging).
DEFAULT_BUDGET_S = 30.0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default="bench-out", type=pathlib.Path)
    parser.add_argument("--budget", default=DEFAULT_BUDGET_S, type=float)
    args = parser.parse_args(argv)

    config = LintConfig.from_pyproject(REPO / "pyproject.toml")
    paths = [str(p) for p in LINTED]

    t0 = time.perf_counter()
    diagnostics = run_lint(paths, config)
    total_s = time.perf_counter() - t0

    per_rule = {}
    for cls in ALL_RULES:
        single = replace(config, select=(cls.code,))
        t0 = time.perf_counter()
        run_lint(paths, single)
        per_rule[cls.code] = round(time.perf_counter() - t0, 4)

    doc = {
        "bench": "lint",
        "paths": [str(p.relative_to(REPO)) for p in LINTED],
        "rules": len(ALL_RULES),
        "budget_s": args.budget,
        "total_s": round(total_s, 4),
        "per_rule_s": per_rule,
        "report": json_document(diagnostics),
    }
    args.out_dir.mkdir(parents=True, exist_ok=True)
    out = args.out_dir / "BENCH_lint.json"
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    slowest = max(per_rule, key=per_rule.__getitem__)
    print(
        f"lint-bench: {len(ALL_RULES)} rules over {len(paths)} trees in "
        f"{total_s:.3f}s (budget {args.budget:.0f}s); slowest rule "
        f"{slowest} at {per_rule[slowest]:.3f}s -> {out}"
    )

    if diagnostics:
        print(
            f"lint-bench: FAIL: {len(diagnostics)} diagnostic(s); see {out}",
            file=sys.stderr,
        )
        return 1
    if total_s > args.budget:
        print(
            f"lint-bench: FAIL: {total_s:.3f}s exceeds the {args.budget:.0f}s "
            "budget -- the analyzer regressed superlinearly",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
