"""Table 3: block-level behaviour of the Filebench models on ext4.

Paper measurements (writes and bytes between commit barriers; mean write
size after merging consecutive sequential writes):

    fileserver: 12865 writes, 579 MiB, 94 KiB
    oltp:        42.7 writes, 199 KiB, 4.7 KiB
    varmail:      7.6 writes, 131 KiB, 27 KiB

Our generators are calibrated against exactly these numbers.
"""

import itertools

import pytest

from repro.analysis import Table, format_bytes
from repro.workloads import collect_stats, fileserver, oltp, varmail
from repro.workloads.base import take

GiB = 1 << 30
KiB = 1024
MiB = 1 << 20

PAPER = {
    "fileserver": (12865, 579 * MiB, 94 * KiB),
    "oltp": (42.7, 199 * KiB, 4.7 * KiB),
    "varmail": (7.6, 131 * KiB, 27 * KiB),
}


def measure():
    out = {}
    for name, model_fn in (("fileserver", fileserver), ("oltp", oltp), ("varmail", varmail)):
        model = model_fn(2 * GiB)
        n = 250_000 if name == "fileserver" else 150_000
        out[name] = collect_stats(take(model.ops(seed=11), n))
    return out


def test_tab03_filebench_block_stats(once):
    stats = once(measure)

    table = Table(
        "Table 3: Filebench block-level behaviour (measured vs paper)",
        [
            "workload",
            "writes/sync",
            "paper",
            "bytes/sync",
            "paper",
            "mean write*",
            "paper",
        ],
    )
    for name, s in stats.items():
        pw, pb, pm = PAPER[name]
        table.add(
            name,
            f"{s.writes_between_syncs:.1f}",
            f"{pw}",
            format_bytes(s.bytes_between_syncs),
            format_bytes(pb),
            format_bytes(s.mean_write_size),
            format_bytes(pm),
        )
    table.show()

    # sync-heaviness ordering and magnitudes track the paper
    assert stats["varmail"].writes_between_syncs == pytest.approx(7.6, rel=0.4)
    assert stats["oltp"].writes_between_syncs == pytest.approx(42.7, rel=0.4)
    assert stats["fileserver"].writes_between_syncs > 2000
    assert stats["oltp"].mean_write_size == pytest.approx(4.7 * KiB, rel=0.5)
    assert stats["varmail"].mean_write_size == pytest.approx(27 * KiB, rel=0.6)
    assert stats["fileserver"].mean_write_size > 40 * KiB
