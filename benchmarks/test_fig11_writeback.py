"""Figure 11: write-back behaviour after a burst (HDD backend, config 2).

Paper result: a 20 GB burst of 4 KiB random writes.  LSVD writes back
aggressively *during* the burst (avg ~173 MB/s to the backend) and the
backend is synchronized shortly after the client finishes.  bcache pauses
write-back under load and then drains at ~15 MB/s — taking ~25 minutes,
11.5x longer, during which the backend image is inconsistent.
"""

import pytest

from conftest import GiB, MiB, hdd_cluster, make_bcache, make_lsvd
from repro.analysis import Table
from repro.runtime import run_fio
from repro.workloads import FioJob

BURST_BYTES = 96 * MiB  # scaled-down "20 GB" burst
VOLUME = 2 * GiB


def run_lsvd():
    world = make_lsvd(volume=VOLUME, cache=4 * GiB, cluster_fn=hdd_cluster)
    n_writes = BURST_BYTES // 4096
    job = FioJob(rw="randwrite", bs=4096, iodepth=32, size=VOLUME, seed=5)
    stream = job.ops()
    limited = (next(stream) for _ in range(n_writes))
    from repro.runtime.blockdev import drive_ops

    burst = drive_ops(world.sim, world.device, limited, iodepth=32)
    client_done = world.sim.now
    # poll in fine steps until the backend has absorbed everything
    while (
        world.device.dirty_bytes > 0 or world.device.pagemap._batch
    ) and world.sim.now < client_done + 600:
        world.sim.run(until=world.sim.now + 0.25)
    synced = world.sim.now
    return {
        "client_time": client_done,
        "sync_time": synced if world.device.dirty_bytes <= 0 else float("inf"),
        "backend_bytes": world.device.backend_bytes_put,
        "dirty_left": world.device.dirty_bytes,
    }


def run_bcache():
    world = make_bcache(volume=VOLUME, cache=4 * GiB, cluster_fn=hdd_cluster)
    n_writes = BURST_BYTES // 4096
    job = FioJob(rw="randwrite", bs=4096, iodepth=32, size=VOLUME, seed=5)
    stream = job.ops()
    limited = (next(stream) for _ in range(n_writes))
    from repro.runtime.blockdev import drive_ops

    burst = drive_ops(world.sim, world.device, limited, iodepth=32)
    client_done = world.sim.now
    destaged_during_burst = world.device.destaged_bytes
    # now idle: write-back starts; wait until dirty data drains
    last = -1
    while world.device.dirty_bytes > 0 and world.sim.now < client_done + 3600:
        world.sim.run(until=world.sim.now + 5.0)
        if world.device.destaged_bytes == last:
            break
        last = world.device.destaged_bytes
    return {
        "client_time": client_done,
        "sync_time": world.sim.now,
        "destaged_during_burst": destaged_during_burst,
        "destaged_bytes": world.device.destaged_bytes,
        "dirty_left": world.device.dirty_bytes,
    }


def test_fig11_writeback_behaviour(once):
    lsvd, bc = once(lambda: (run_lsvd(), run_bcache()))

    lsvd_drain = lsvd["sync_time"] - lsvd["client_time"]
    bc_drain = bc["sync_time"] - bc["client_time"]
    table = Table(
        f"Figure 11: write-back after a {BURST_BYTES // MiB} MiB 4K random "
        "burst (HDD backend)",
        ["system", "client(s)", "synced(s)", "post-burst drain(s)", "wb MB/s"],
    )
    table.add(
        "LSVD",
        f"{lsvd['client_time']:.1f}",
        f"{lsvd['sync_time']:.1f}",
        f"{lsvd_drain:.1f}",
        f"{lsvd['backend_bytes'] / lsvd['sync_time'] / 1e6:.0f}",
    )
    table.add(
        "bcache+RBD",
        f"{bc['client_time']:.1f}",
        f"{bc['sync_time']:.1f}",
        f"{bc_drain:.1f}",
        f"{bc['destaged_bytes'] / max(bc_drain, 0.1) / 1e6:.1f}",
    )
    table.show()

    # shape: bcache did (almost) no write-back during the burst
    assert bc["destaged_during_burst"] < BURST_BYTES * 0.1
    # LSVD was already mostly synchronized when the client finished
    assert lsvd_drain < lsvd["client_time"] * 2
    # bcache's total drain takes many times longer than LSVD's
    assert bc["sync_time"] > 5 * lsvd["sync_time"]
    # bcache write-back crawls at small-replicated-write speed (~15MB/s
    # in the paper; order-of-magnitude here)
    wb_rate = bc["destaged_bytes"] / max(bc_drain, 0.1) / 1e6
    assert wb_rate < 60
