"""Ablation: erasure coding vs whole-object replication for LSVD's backend.

Paper footnote 5: LSVD uses a 4,2 erasure-coded pool because its large
batched writes get EC's capacity and throughput advantages for free;
RBD must stay on triple replication because EC is hopeless for small
in-place writes.  This ablation quantifies what LSVD would lose by
storing its object stream as three full copies instead.
"""

import pytest

from conftest import GiB, hdd_cluster
from repro.analysis import Table
from repro.cluster import ErasureCodedLayout, ReplicatedObjectLayout
from repro.core import LSVDConfig
from repro.runtime import ClientMachine, LSVDRuntime, SimulatedObjectStore, run_fio
from repro.sim import Simulator
from repro.workloads import FioJob

DURATION = 2.0
WARMUP = 0.5


def run_layout(layout):
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = hdd_cluster(sim)
    backend = SimulatedObjectStore(sim, cluster, machine.network, layout=layout)
    device = LSVDRuntime(
        sim, machine, backend, 2 * GiB, 4 * GiB, LSVDConfig(), name="vd"
    )
    job = FioJob(rw="randwrite", bs=16384, iodepth=32, size=2 * GiB, seed=1)
    result = run_fio(sim, device, job, DURATION, WARMUP)
    sim.run(until=sim.now + 2.0)  # drain
    totals = cluster.totals()
    return {
        "iops": result.iops,
        "backend_bytes": totals.written_bytes,
        "client_bytes": device.client_bytes_written,
        "util": cluster.mean_utilization(),
    }


def test_ablation_ec_vs_replicated_objects(once):
    ec, rep = once(
        lambda: (run_layout(ErasureCodedLayout()), run_layout(ReplicatedObjectLayout()))
    )

    table = Table(
        "Ablation: LSVD backend layout — 4,2 erasure code vs 3x replication",
        ["layout", "client IOPS", "backend GiB written", "byte expansion", "util"],
    )
    for name, r in (("EC 4,2", ec), ("3x replica", rep)):
        table.add(
            name,
            f"{r['iops'] / 1e3:.1f}K",
            f"{r['backend_bytes'] / 2**30:.2f}",
            f"{r['backend_bytes'] / max(r['client_bytes'], 1):.2f}x",
            f"{r['util'] * 100:.0f}%",
        )
    table.show()

    # replication writes ~2x the bytes of the 4,2 code (3.0 vs 1.5)
    ec_expansion = ec["backend_bytes"] / max(ec["client_bytes"], 1)
    rep_expansion = rep["backend_bytes"] / max(rep["client_bytes"], 1)
    assert rep_expansion > 1.7 * ec_expansion
    assert ec_expansion == pytest.approx(1.5, rel=0.25)
    # and loads the backend correspondingly harder
    assert rep["util"] > ec["util"]
