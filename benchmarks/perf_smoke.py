"""Data-plane perf smoke: extent map, volume I/O, and GC repack rates.

``make perf-smoke`` (CI uploads the artifact) measures the fast-path
rework end to end:

* **extent map** — random-update and mixed update/lookup ops/s at 10k and
  100k extents for *both* the chunked map (``repro.core.extent_map``) and
  the seed flat-list baseline it replaced
  (``repro.baselines.flat_extent_map``), so the speedup is benchmarked
  in-repo rather than asserted.  A 1M-extent chunked-only pass is the
  scale sanity floor.
* **volume** — 4 KiB random write and read MB/s through a full
  ``LSVDVolume`` (write cache, batch seal, backend objects, read cache).
* **GC** — repack throughput (bytes relocated per second) for a cleaner
  pass over a heavily-overwritten stream.

Gates (exit 1 on failure):

* chunked map beats the seed flat list by >= 10x on the 100k-extent
  mixed workload;
* the 1M-extent pass (bulk load + 50k mixed ops) finishes inside a
  generous wall-clock bound, so a complexity regression cannot hide
  behind fast hardware.

Usage::

    python benchmarks/perf_smoke.py [--out-dir DIR] [--quick]
"""

from __future__ import annotations

import argparse
import random
import time
from pathlib import Path

from repro.baselines.flat_extent_map import FlatExtentMap
from repro.core import LSVDConfig, LSVDVolume
from repro.core.block_store import BlockStore
from repro.core.extent_map import ExtentMap
from repro.core.gc import GarbageCollector
from repro.devices.image import DiskImage
from repro.obs import Registry, write_bench_json
from repro.objstore import InMemoryObjectStore

KiB = 1 << 10
MiB = 1 << 20

#: extent size (in map units) used by the microbenchmarks
EXT = 8
#: wall-clock ceiling for the 1M-extent pass — generous on purpose: it
#: exists to catch accidental O(n)-per-op regressions, not slow CI boxes
MILLION_BUDGET_S = 120.0
SPEEDUP_FLOOR = 10.0


# ---------------------------------------------------------------------------
# extent-map microbenchmarks
# ---------------------------------------------------------------------------

def _prepopulate(map_cls, n_extents: int):
    """n_extents non-coalescable back-to-back extents via bulk load."""
    entries = [(i * EXT, EXT, i % 64, 0) for i in range(n_extents)]
    return map_cls.from_entries(entries)


def _mixed_ops(emap, n_extents: int, n_ops: int, seed: int) -> float:
    """Timed 70/30 update/lookup workload; returns ops/s."""
    rng = random.Random(seed)
    span = n_extents * EXT
    ops = [
        (rng.random() < 0.7, rng.randrange(0, span - 8 * EXT), rng.randrange(64))
        for _ in range(n_ops)
    ]
    t0 = time.perf_counter()
    for is_update, lba, target in ops:
        if is_update:
            emap.update(lba, EXT, target, 0)
        else:
            emap.lookup(lba, 8 * EXT)
    elapsed = time.perf_counter() - t0
    return n_ops / elapsed


def _update_ops(emap, n_extents: int, n_ops: int, seed: int) -> float:
    """Timed pure random-update workload; returns ops/s."""
    rng = random.Random(seed)
    span = n_extents * EXT
    ops = [
        (rng.randrange(0, span - EXT), rng.randrange(64)) for _ in range(n_ops)
    ]
    t0 = time.perf_counter()
    for lba, target in ops:
        emap.update(lba, EXT, target, 0)
    return n_ops / (time.perf_counter() - t0)


def bench_extent_maps(quick: bool):
    """Returns {(impl, n_extents): {"update_ops": .., "mixed_ops": ..}}."""
    results = {}
    sizes = (10_000, 100_000)
    for n_extents in sizes:
        for impl, map_cls in (("chunked", ExtentMap), ("flat", FlatExtentMap)):
            # the flat list is O(n) per update: cap its op count so the
            # benchmark terminates, and report the extrapolated rate
            if impl == "flat":
                n_ops = 1_000 if n_extents >= 100_000 else 2_000
            else:
                n_ops = 5_000 if quick else 20_000
            update = _update_ops(_prepopulate(map_cls, n_extents), n_extents, n_ops, 1)
            mixed = _mixed_ops(_prepopulate(map_cls, n_extents), n_extents, n_ops, 2)
            results[(impl, n_extents)] = {"update_ops": update, "mixed_ops": mixed}
    return results


def bench_million(quick: bool):
    """1M-extent chunked-only pass: (load_s, mixed ops/s, total_s)."""
    n = 200_000 if quick else 1_000_000
    t0 = time.perf_counter()
    emap = _prepopulate(ExtentMap, n)
    load_s = time.perf_counter() - t0
    ops = _mixed_ops(emap, n, 10_000 if quick else 50_000, 3)
    total_s = time.perf_counter() - t0
    return n, load_s, ops, total_s


# ---------------------------------------------------------------------------
# volume data path
# ---------------------------------------------------------------------------

def bench_volume(quick: bool):
    """4 KiB random write then read MB/s through a full LSVDVolume."""
    size = 64 * MiB
    config = LSVDConfig(batch_size=1 * MiB, checkpoint_interval=1000)
    store = InMemoryObjectStore()
    image = DiskImage(16 * MiB, name="cache")
    vol = LSVDVolume.create(store, "perf", size, image, config)
    vol.gc_enabled = False  # measured separately

    rng = random.Random(4)
    total = 4 * MiB if quick else 16 * MiB
    n_ios = total // (4 * KiB)
    offsets = [rng.randrange(0, size // (4 * KiB)) * 4 * KiB for _ in range(n_ios)]
    payload = bytes(range(256)) * 16  # 4 KiB

    t0 = time.perf_counter()
    for off in offsets:
        vol.write(off, payload)
    vol.flush()
    write_mbps = total / (time.perf_counter() - t0) / 1e6

    t0 = time.perf_counter()
    for off in offsets:
        vol.read(off, 4 * KiB)
    read_mbps = total / (time.perf_counter() - t0) / 1e6
    return write_mbps, read_mbps


# ---------------------------------------------------------------------------
# GC repack
# ---------------------------------------------------------------------------

def bench_gc(quick: bool):
    """Repack throughput over a partially-overwritten region (bytes/s).

    Each overwrite round touches a random 60% of the region, so every
    victim object keeps scattered live extents the cleaner must actually
    copy out — the repack path under measurement.
    """
    store = InMemoryObjectStore()
    config = LSVDConfig(batch_size=256 * KiB, checkpoint_interval=1000)
    bs = BlockStore.create(store, "gcperf", 64 * MiB, config)
    region_blocks = 512 if quick else 2048  # 2 / 8 MiB live region
    rng = random.Random(5)
    blocks = list(range(region_blocks))
    for round_ in range(4):
        victims = blocks if round_ == 0 else rng.sample(
            blocks, int(region_blocks * 0.6)
        )
        for i in victims:
            for sealed in bs.add_write(i * 4096, bytes([round_ + 1]) * 4096):
                bs.commit(sealed)
        for sealed in bs.seal_all():
            bs.commit(sealed)
    bs.write_checkpoint()

    gc = GarbageCollector(bs, bs.config)
    t0 = time.perf_counter()
    rounds = 0
    while gc.needs_gc() and rounds < 100:
        plan = gc.plan()
        if plan is None:
            break
        gc.execute(plan)
        bs.write_checkpoint()
        gc.delete_victims(plan.victims)
        bs.retire_old_checkpoints()
        rounds += 1
    elapsed = time.perf_counter() - t0
    relocated = gc.stats.bytes_relocated
    return relocated / elapsed / 1e6 if elapsed > 0 else 0.0, int(relocated)


# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="bench-out")
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller op counts / 200k instead of 1M extents (local sanity)",
    )
    args = parser.parse_args(argv)

    summary = Registry()
    figures = {}

    print(f"{'extent map':>12}  {'extents':>9}  {'update ops/s':>12}  {'mixed ops/s':>12}")
    maps = bench_extent_maps(args.quick)
    for (impl, n_extents), r in sorted(maps.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        print(f"{impl:>12}  {n_extents:>9,}  {r['update_ops']:>12,.0f}  "
              f"{r['mixed_ops']:>12,.0f}")
        for metric, val in r.items():
            summary.gauge(f"perf.map.{impl}.{n_extents}.{metric}").set(val)
            figures[f"map_{impl}_{n_extents}_{metric}"] = val

    n_million, load_s, million_ops, million_total_s = bench_million(args.quick)
    print(f"{'chunked':>12}  {n_million:>9,}  {'—':>12}  {million_ops:>12,.0f}"
          f"   (bulk load {load_s:.2f}s, total {million_total_s:.2f}s)")
    summary.gauge("perf.map.chunked.million.mixed_ops").set(million_ops)
    summary.gauge("perf.map.chunked.million.total_s").set(million_total_s)
    figures["map_chunked_million_mixed_ops"] = million_ops
    figures["map_chunked_million_total_s"] = million_total_s

    write_mbps, read_mbps = bench_volume(args.quick)
    print(f"\nvolume 4K random: write {write_mbps:.1f} MB/s, read {read_mbps:.1f} MB/s")
    summary.gauge("perf.volume.randwrite_mbps").set(write_mbps)
    summary.gauge("perf.volume.randread_mbps").set(read_mbps)
    figures["volume_randwrite_mbps"] = write_mbps
    figures["volume_randread_mbps"] = read_mbps

    gc_mbps, gc_bytes = bench_gc(args.quick)
    print(f"GC repack: {gc_mbps:.1f} MB/s ({gc_bytes / MiB:.1f} MiB relocated)")
    summary.gauge("perf.gc.repack_mbps").set(gc_mbps)
    figures["gc_repack_mbps"] = gc_mbps

    # -- gates --------------------------------------------------------------
    # the headline acceptance number: >= 10x on 100k-extent random update
    # (pure mutation, where the flat list's O(n) shuffles dominate)
    speedup_update = (
        maps[("chunked", 100_000)]["update_ops"] / maps[("flat", 100_000)]["update_ops"]
    )
    # and the chunked map must also win the realistic mixed workload,
    # where cheap bisect lookups dilute the flat list's mutation cost
    speedup_mixed = (
        maps[("chunked", 100_000)]["mixed_ops"] / maps[("flat", 100_000)]["mixed_ops"]
    )
    figures["speedup_100k_update"] = speedup_update
    figures["speedup_100k_mixed"] = speedup_mixed
    summary.gauge("perf.map.speedup_100k_update").set(speedup_update)
    summary.gauge("perf.map.speedup_100k_mixed").set(speedup_mixed)
    gate_speedup = speedup_update >= SPEEDUP_FLOOR
    gate_mixed = speedup_mixed > 1.0
    gate_million = million_total_s <= MILLION_BUDGET_S
    figures["gate_speedup_10x"] = bool(gate_speedup)
    figures["gate_mixed_beats_flat"] = bool(gate_mixed)
    figures["gate_million_wallclock"] = bool(gate_million)

    Path(args.out_dir).mkdir(parents=True, exist_ok=True)
    path = write_bench_json("perf", summary, figures=figures, out_dir=args.out_dir)
    print(f"\n100k update speedup: {speedup_update:.1f}x (floor {SPEEDUP_FLOOR:.0f}x) "
          f"{'OK' if gate_speedup else 'FAIL'}")
    print(f"100k mixed speedup: {speedup_mixed:.1f}x (floor 1x) "
          f"{'OK' if gate_mixed else 'FAIL'}")
    print(f"1M-extent pass: {million_total_s:.2f}s (budget {MILLION_BUDGET_S:.0f}s) "
          f"{'OK' if gate_million else 'FAIL'}")
    print(f"wrote {path}")
    return 0 if (gate_speedup and gate_mixed and gate_million) else 1


if __name__ == "__main__":
    raise SystemExit(main())
