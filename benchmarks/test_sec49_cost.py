"""Section 4.9: deployability — LSVD on AWS vs provisioned-IOPS EBS.

Paper result: LSVD's peak random-I/O rate on an EC2 instance (local NVMe
cache + S3 backend) approaches EBS's maximum provisioned tier, yet a
50,000-IOPS EBS volume costs over $3,000/month while the S3 objects and
requests behind an equally capable LSVD volume cost a few dollars for
bursty use — because batching collapses thousands of client writes into
each S3 PUT.
"""

import pytest

from repro.analysis import Table
from repro.cloud import ebs_monthly_cost, lsvd_monthly_cost
from repro.cloud.cost import breakeven_duty_cycle


def build_table():
    rows = []
    for duty in (0.001, 0.01, 0.1, 0.5, 1.0):
        rows.append(
            (
                duty,
                lsvd_monthly_cost(size_gb=80, write_iops=50_000, duty_cycle=duty),
            )
        )
    return rows


def test_sec49_cost_comparison(once):
    rows = once(build_table)
    ebs = ebs_monthly_cost(provisioned_iops=50_000, size_gb=80)

    table = Table(
        "Section 4.9: monthly cost of a 50K-IOPS-capable 80 GB volume "
        f"(EBS io1 provisioned: ${ebs:,.0f}/month)",
        ["duty cycle", "LSVD (S3) $/month", "vs EBS"],
    )
    for duty, cost in rows:
        table.add(f"{duty:.1%}", f"${cost:,.2f}", f"{ebs / cost:,.0f}x cheaper")
    table.show()

    # the paper's headline numbers
    assert ebs > 3000
    bursty = dict(rows)[0.01]
    assert bursty < 20  # "a few dollars a month"
    # even at a 100% duty cycle LSVD stays cheaper
    assert dict(rows)[1.0] < ebs
    assert breakeven_duty_cycle(50_000, 80) > 1.0
