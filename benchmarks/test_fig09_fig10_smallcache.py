"""Figures 9 & 10: sustained write throughput with a small (5 GB) cache.

Paper result: with the cache too small to absorb the workload, every
system is bounded by its backend write path.  LSVD keeps writing at
near-local-SSD speed (600+ MB/s) because its destage path ships large
erasure-coded objects; bcache+RBD collapses to small replicated writes
and gains little over uncached RBD.  RBD improves modestly with
sequential access; LSVD is largely insensitive to the pattern.
"""

import pytest

from conftest import GiB, MiB, make_bcache, make_lsvd, make_rbd
from repro.analysis import Table
from repro.runtime import run_fio
from repro.workloads import FioJob

DURATION = 2.0
WARMUP = 0.8  # past the cache-fill transient: steady write-back state
CACHE = 96 * MiB  # scaled-down "5 GB" cache: small vs the write volume
VOLUME = 4 * GiB


def run_cell(system, rw, bs, qd):
    job = FioJob(rw=rw, bs=bs, iodepth=qd, size=VOLUME, seed=3)
    if system == "lsvd":
        world = make_lsvd(volume=VOLUME, cache=CACHE)
        return run_fio(world.sim, world.device, job, DURATION, WARMUP)
    if system == "bcache":
        world = make_bcache(volume=VOLUME, cache=CACHE)
        return run_fio(world.sim, world.device, job, DURATION, WARMUP)
    sim, _m, _c, dev = make_rbd(volume=VOLUME)
    return run_fio(sim, dev, job, DURATION, WARMUP)


def run_grid(rw):
    out = {}
    for bs in (4096, 16384, 65536):
        for system in ("lsvd", "bcache", "rbd"):
            out[(bs, system)] = run_cell(system, rw, bs, qd=32)
    return out


def _show(caption, results):
    table = Table(caption, ["bs", "LSVD MB/s", "bcache+RBD MB/s", "RBD MB/s", "LSVD/bcache"])
    for bs in (4096, 16384, 65536):
        l = results[(bs, "lsvd")]
        b = results[(bs, "bcache")]
        r = results[(bs, "rbd")]
        table.add(
            f"{bs // 1024}K",
            f"{l.mbps:.0f}",
            f"{b.mbps:.0f}",
            f"{r.mbps:.0f}",
            f"{l.mbps / max(b.mbps, 0.1):.1f}x",
        )
    table.show()


def test_fig09_random_writes_small_cache(once):
    results = once(run_grid, "randwrite")
    _show("Figure 9: random writes, small cache, QD=32", results)
    for bs in (4096, 16384, 65536):
        l, b, r = (results[(bs, s)] for s in ("lsvd", "bcache", "rbd"))
        # LSVD sustains multiples of the bcache+RBD rate (paper: 2-8x)
        floor = 1.3 if bs == 4096 else 2.0
        assert l.mbps > floor * b.mbps, bs
        # bcache provides little advantage over bare RBD in steady state:
        # both funnel into the same small replicated backend writes
        assert b.mbps < 3 * max(r.mbps, 0.1) + 30, bs


def test_fig10_sequential_writes_small_cache(once):
    results = once(run_grid, "write")
    _show("Figure 10: sequential writes, small cache, QD=32", results)
    for bs in (16384, 65536):
        l, b = results[(bs, "lsvd")], results[(bs, "bcache")]
        assert l.mbps > 1.5 * b.mbps, bs


def test_fig10_rbd_gains_from_sequential_lsvd_insensitive(once):
    # compared at 64K so per-record header overheads do not skew the
    # LSVD ratio (at 16K the log header is 25% of each record)
    def run_pair():
        rand_l = run_cell("lsvd", "randwrite", 65536, 32)
        seq_l = run_cell("lsvd", "write", 65536, 32)
        rand_r = run_cell("rbd", "randwrite", 65536, 32)
        seq_r = run_cell("rbd", "write", 65536, 32)
        return rand_l, seq_l, rand_r, seq_r

    rand_l, seq_l, rand_r, seq_r = once(run_pair)
    table = Table(
        "Fig 9/10 cross-check: access-pattern sensitivity (64K, QD=32)",
        ["system", "random MB/s", "sequential MB/s", "seq/rand"],
    )
    table.add("LSVD", f"{rand_l.mbps:.0f}", f"{seq_l.mbps:.0f}", f"{seq_l.mbps / max(rand_l.mbps, 0.1):.2f}")
    table.add("RBD", f"{rand_r.mbps:.0f}", f"{seq_r.mbps:.0f}", f"{seq_r.mbps / max(rand_r.mbps, 0.1):.2f}")
    table.show()
    # RBD benefits more from sequential access than LSVD does
    assert seq_r.mbps / max(rand_r.mbps, 0.1) > seq_l.mbps / max(rand_l.mbps, 0.1)
    # LSVD largely insensitive to the pattern
    assert 0.7 < seq_l.mbps / max(rand_l.mbps, 0.1) < 1.4
