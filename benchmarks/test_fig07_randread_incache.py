"""Figure 7: random-read throughput, large cache (100 % cache hits).

Paper result: the unoptimised LSVD read cache is equivalent to bcache at
lower queue depths but falls behind by up to 30 % at high queue depths
(the prototype passes data through the SSD between kernel and user space).
"""

import pytest

from conftest import GiB, make_bcache, make_lsvd
from repro.analysis import Table
from repro.runtime import run_fio
from repro.workloads import FioJob

DURATION = 0.8
WARMUP = 0.2
BLOCK_SIZES = [4096, 16384, 65536]
QUEUE_DEPTHS = [4, 16, 32]


def run_grid():
    results = {}
    for bs in BLOCK_SIZES:
        for qd in QUEUE_DEPTHS:
            job = FioJob(rw="randread", bs=bs, iodepth=qd, size=4 * GiB, seed=1)
            lsvd = make_lsvd(read_hit_rate=1.0)
            r_l = run_fio(lsvd.sim, lsvd.device, job, DURATION, WARMUP)
            bc = make_bcache(read_hit_rate=1.0)
            r_b = run_fio(bc.sim, bc.device, job, DURATION, WARMUP)
            results[(bs, qd)] = (r_l, r_b)
    return results


def test_fig07_random_read_large_cache(once):
    results = once(run_grid)

    table = Table(
        "Figure 7: random read, large cache, 100% hits (LSVD vs bcache+RBD)",
        ["bs", "QD", "LSVD MB/s", "bcache MB/s", "ratio"],
    )
    for (bs, qd), (r_l, r_b) in sorted(results.items()):
        table.add(
            f"{bs // 1024}K",
            qd,
            f"{r_l.mbps:.0f}",
            f"{r_b.mbps:.0f}",
            f"{r_l.iops / max(r_b.iops, 1):.2f}",
        )
    table.show()

    # shape: rough parity at low depth...
    for bs in BLOCK_SIZES:
        r_l, r_b = results[(bs, 4)]
        assert r_l.iops / r_b.iops > 0.8, bs
    # ...but LSVD falls behind by up to ~30% at depth 32 for small reads
    r_l, r_b = results[(4096, 32)]
    assert 0.6 < r_l.iops / r_b.iops < 0.95
    # large reads are bandwidth-bound for both
    r_l, r_b = results[(65536, 32)]
    assert r_l.iops / r_b.iops > 0.85
