"""Pipeline smoke run: group commit vs the serial-barrier baseline.

``make pipeline-smoke`` (CI uploads the artifact) drives an fsync-heavy
fio job through the timed LSVD runtime twice per queue depth — once with
``LSVDParams.group_commit`` (the event-driven commit worker: one device
FLUSH settles a coalesced batch of barriers) and once with the serial
baseline (every barrier gates all writers and pays its own FLUSH) — at
equal durability: both paths issue the same barrier stream, and every
caller settles only after a covering FLUSH (LSVD014, enforced by the
invariant checker and tests/test_group_commit.py).

The acceptance shape: at queue depth >= 4 group commit must spend fewer
device FLUSHes *per committed barrier* than the serial baseline (which
pays exactly one each) without giving up throughput.  Raw FLUSH counts
are not comparable at fixed duration — the unblocked pipeline completes
more work and so issues more barriers — which is why the gate is
normalised per barrier request.  The sweep, the barrier group-size
distribution, and the destage queue-depth stats land in
``BENCH_pipeline.json``.  Like
lint-bench, the run also carries a generous wall-clock budget so a
superlinear regression in the event-driven data plane fails the gate.

Everything is deterministic: same tree, same numbers.

Usage::

    python benchmarks/pipeline_smoke.py [--out-dir DIR] [--duration S]
                                        [--budget SECONDS]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.cluster import StorageCluster
from repro.core import LSVDConfig
from repro.devices.ssd import SSD, SSDSpec
from repro.obs import Registry, write_bench_json
from repro.runtime import ClientMachine, LSVDRuntime, SimulatedObjectStore
from repro.runtime.blockdev import run_fio
from repro.runtime.params import LSVDParams
from repro.sim import Simulator
from repro.workloads import FioJob

MiB = 1 << 20
GiB = 1 << 30

QUEUE_DEPTHS = (1, 4, 16, 32)

#: every write burst ends in an fsync — the barrier-heavy shape (varmail
#: and OLTP redo logs) where commit-path behaviour decides throughput
FSYNC_EVERY = 4

#: generous wall-clock ceiling for the whole sweep (8 timed runs); only
#: trips on a superlinear regression in the pipeline's event handling
DEFAULT_BUDGET_S = 120.0


def ssd_cluster(sim: Simulator) -> StorageCluster:
    return StorageCluster(
        sim, 4, 8, lambda s, n: SSD(s, SSDSpec.sata_consumer(), name=n)
    )


def run_one(iodepth: int, group_commit: bool, duration: float):
    """One measurement; returns (device FLUSHes, MB/s, runtime, machine)."""
    sim = Simulator()
    machine = ClientMachine(sim)
    backend = SimulatedObjectStore(sim, ssd_cluster(sim), machine.network)
    device = LSVDRuntime(
        sim,
        machine,
        backend,
        volume_size=1 * GiB,
        cache_size=4 * GiB,
        config=LSVDConfig(),
        params=LSVDParams(group_commit=group_commit),
        gc_enabled=False,
        name="vd",
    )
    job = FioJob(
        rw="randwrite",
        bs=4096,
        iodepth=iodepth,
        size=1 * GiB,
        fsync_every=FSYNC_EVERY,
    )
    result = run_fio(sim, device, job, duration=duration)
    return machine.ssd.stats.flushes, result.mbps, device, machine


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out-dir", default="bench-out")
    parser.add_argument("--duration", type=float, default=0.4)
    parser.add_argument("--budget", type=float, default=DEFAULT_BUDGET_S)
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    summary = Registry()
    figures = {}
    gate_ok = True
    print(f"{'qd':>4}  {'mode':>6}  {'FLUSHes':>8}  {'flush/bar':>9}  "
          f"{'MB/s':>8}  {'grp mean':>8}  {'grp max':>7}  {'stalls':>6}")
    for qd in QUEUE_DEPTHS:
        per_mode = {}
        for group_commit in (False, True):
            mode = "group" if group_commit else "serial"
            flushes, mbps, device, machine = run_one(
                qd, group_commit, args.duration
            )
            sizes = device.obs.histogram("barrier.group_size")
            grp_mean = sizes.sum / sizes.count if sizes.count else 0.0
            grp_max = sizes.percentile(100) if sizes.count else 0.0
            stalls = int(device.obs.value("destage.space_stalls"))
            requests = max(1, int(device.barrier_requests))
            per_barrier = device.barrier_flushes / requests
            print(f"{qd:>4}  {mode:>6}  {flushes:>8}  {per_barrier:>9.3f}  "
                  f"{mbps:>8.1f}  {grp_mean:>8.2f}  {grp_max:>7.0f}  "
                  f"{stalls:>6}")
            prefix = f"pipeline.{qd}.{mode}"
            summary.gauge(f"{prefix}.device_flushes").set(flushes)
            summary.gauge(f"{prefix}.mbps").set(mbps)
            summary.gauge(f"{prefix}.barrier_requests").set(
                device.barrier_requests
            )
            summary.gauge(f"{prefix}.barrier_flushes").set(
                device.barrier_flushes
            )
            summary.gauge(f"{prefix}.flushes_per_barrier").set(per_barrier)
            summary.gauge(f"{prefix}.group_size_mean").set(grp_mean)
            summary.gauge(f"{prefix}.group_size_max").set(grp_max)
            summary.gauge(f"{prefix}.destage_space_stalls").set(stalls)
            figures[f"flushes_qd{qd}_{mode}"] = int(flushes)
            figures[f"flushes_per_barrier_qd{qd}_{mode}"] = round(
                per_barrier, 4
            )
            figures[f"mbps_qd{qd}_{mode}"] = mbps
            figures[f"group_size_mean_qd{qd}_{mode}"] = grp_mean
            per_mode[mode] = (per_barrier, mbps)

        # the acceptance shape: with concurrency to coalesce, group
        # commit spends fewer FLUSHes per committed barrier (the serial
        # baseline pays exactly 1.0) at no throughput cost
        if qd >= 4:
            s_rate, s_mbps = per_mode["serial"]
            g_rate, g_mbps = per_mode["group"]
            fewer = g_rate < s_rate
            no_slower = g_mbps >= 0.95 * s_mbps
            figures[f"group_fewer_flushes_per_barrier_qd{qd}"] = bool(fewer)
            figures[f"group_no_slower_qd{qd}"] = bool(no_slower)
            gate_ok = gate_ok and fewer and no_slower

    total_s = time.perf_counter() - t0
    figures["group_commit_wins"] = bool(gate_ok)
    figures["budget_s"] = args.budget
    figures["total_s"] = round(total_s, 3)
    Path(args.out_dir).mkdir(parents=True, exist_ok=True)
    path = write_bench_json(
        "pipeline", summary, figures=figures, out_dir=args.out_dir
    )
    print(f"\ngroup commit fewer FLUSHes + no slower at qd>=4: {gate_ok}")
    print(f"wall clock {total_s:.1f}s (budget {args.budget:.0f}s)")
    print(f"wrote {path}")

    if not gate_ok:
        print("pipeline-smoke: FAIL: group commit did not win", file=sys.stderr)
        return 1
    if total_s > args.budget:
        print(
            f"pipeline-smoke: FAIL: {total_s:.1f}s exceeds the "
            f"{args.budget:.0f}s budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
