"""Figures 12-14: backend load, I/O amplification, and write-size mix.

One experiment feeds all three figures, as in the paper (§4.5): 16 KiB
random writes at queue depth 32 across a growing number of virtual disks
on one client machine, against the 62-HDD pool (config 2).

Paper results:
* Fig 12 — LSVD reaches ~50K IOPS with the backend ~10 % busy (limited by
  the single client); RBD tops out around 13K IOPS with the backend ~70 %
  busy: a ~25x efficiency gap.
* Fig 13 — RBD: 6 backend I/Os per client write; LSVD: ~0.25.
* Fig 14 — RBD's device writes are 16-24 KiB; LSVD's cluster around 1 MiB
  (the 4,2-code chunks of its 4-8 MiB objects).
"""

import pytest

from conftest import GiB, MiB, hdd_cluster, make_lsvd, make_rbd
from repro.analysis import Table, format_bytes, size_histogram_table
from repro.cluster import StorageCluster
from repro.core import LSVDConfig
from repro.devices.hdd import HDD, HDDSpec
from repro.runtime import (
    ClientMachine,
    LSVDRuntime,
    RBDRuntime,
    SimulatedObjectStore,
    run_jobs,
)
from repro.sim import Simulator
from repro.workloads import FioJob

DURATION = 2.0
# client and backend counters must cover the same window, so the whole
# run is measured (amplification ratios would otherwise be skewed)
WARMUP = 0.0
VOLUME_COUNTS = [1, 2, 4, 8]
VOLUME = 1 * GiB


def lsvd_load(n_volumes):
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = hdd_cluster(sim)
    backend = SimulatedObjectStore(sim, cluster, machine.network)
    devices = [
        LSVDRuntime(
            sim, machine, backend, VOLUME, 2 * GiB, LSVDConfig(), name=f"vd{i}"
        )
        for i in range(n_volumes)
    ]
    jobs = [
        FioJob(rw="randwrite", bs=16384, iodepth=32, size=VOLUME, seed=i)
        for i in range(n_volumes)
    ]
    results = run_jobs(sim, list(zip(devices, jobs)), DURATION, WARMUP)
    totals = cluster.totals(elapsed=DURATION)
    client_ops = sum(r.ops for r in results)
    return {
        "iops": client_ops / (DURATION - WARMUP),
        "util": totals.mean_utilization,
        "client_ops": client_ops,
        "backend_ops": totals.writes,
        "client_bytes": sum(r.bytes for r in results),
        "backend_bytes": totals.written_bytes,
        "histogram": cluster.write_size_histogram(),
    }


def rbd_load(n_volumes):
    sim = Simulator()
    machine = ClientMachine(sim)
    cluster = hdd_cluster(sim)
    devices = [RBDRuntime(sim, machine, cluster, name=f"rbd{i}") for i in range(n_volumes)]
    jobs = [
        FioJob(rw="randwrite", bs=16384, iodepth=32, size=VOLUME, seed=i)
        for i in range(n_volumes)
    ]
    results = run_jobs(sim, list(zip(devices, jobs)), DURATION, WARMUP)
    totals = cluster.totals(elapsed=DURATION)
    client_ops = sum(r.ops for r in results)
    return {
        "iops": client_ops / (DURATION - WARMUP),
        "util": totals.mean_utilization,
        "client_ops": client_ops,
        "backend_ops": totals.writes,
        "client_bytes": sum(r.bytes for r in results),
        "backend_bytes": totals.written_bytes,
        "histogram": cluster.write_size_histogram(),
    }


def run_sweep():
    return (
        {n: lsvd_load(n) for n in VOLUME_COUNTS},
        {n: rbd_load(n) for n in VOLUME_COUNTS},
    )


@pytest.fixture(scope="module")
def sweep():
    return run_sweep()


def test_fig12_iops_vs_backend_utilization(once, sweep):
    lsvd, rbd = once(lambda: sweep)

    table = Table(
        "Figure 12: client IOPS vs mean backend disk utilisation "
        "(16K random writes, QD32, 62-HDD pool)",
        ["vdisks", "LSVD IOPS", "LSVD util", "RBD IOPS", "RBD util"],
    )
    for n in VOLUME_COUNTS:
        table.add(
            n,
            f"{lsvd[n]['iops'] / 1e3:.1f}K",
            f"{lsvd[n]['util'] * 100:.0f}%",
            f"{rbd[n]['iops'] / 1e3:.1f}K",
            f"{rbd[n]['util'] * 100:.0f}%",
        )
    table.show()

    top = VOLUME_COUNTS[-1]
    # shape: LSVD achieves several times RBD's IOPS
    assert lsvd[top]["iops"] > 2.5 * rbd[top]["iops"]
    # ...while loading the backend far less
    assert lsvd[top]["util"] < 0.35
    assert rbd[top]["util"] > 0.5
    # efficiency gap (IOPS per unit of backend busy-time): paper ~25x
    eff_lsvd = lsvd[top]["iops"] / max(lsvd[top]["util"], 1e-9)
    eff_rbd = rbd[top]["iops"] / max(rbd[top]["util"], 1e-9)
    assert eff_lsvd > 8 * eff_rbd


def test_fig13_io_and_byte_amplification(once, sweep):
    lsvd, rbd = once(lambda: sweep)
    top = VOLUME_COUNTS[-1]

    l, r = lsvd[top], rbd[top]
    l_io_amp = l["backend_ops"] / max(l["client_ops"], 1)
    r_io_amp = r["backend_ops"] / max(r["client_ops"], 1)
    l_byte_amp = l["backend_bytes"] / max(l["client_bytes"], 1)
    r_byte_amp = r["backend_bytes"] / max(r["client_bytes"], 1)

    table = Table(
        "Figure 13: I/O and byte amplification (16K random write load)",
        ["system", "client IOs", "backend IOs", "IO amp", "byte amp"],
    )
    table.add("LSVD", l["client_ops"], l["backend_ops"], f"{l_io_amp:.2f}", f"{l_byte_amp:.2f}")
    table.add("RBD", r["client_ops"], r["backend_ops"], f"{r_io_amp:.2f}", f"{r_byte_amp:.2f}")
    table.show()

    # paper: RBD 6x I/O amplification, LSVD 0.25
    assert r_io_amp == pytest.approx(6.0, rel=0.1)
    assert l_io_amp < 1.0
    # byte amplification: RBD >3x (journal+data x3); LSVD ~1.5x (EC)
    assert r_byte_amp > 3.0
    assert 1.0 < l_byte_amp < 2.5


def test_fig14_backend_write_size_histogram(once, sweep):
    lsvd, rbd = once(lambda: sweep)
    top = VOLUME_COUNTS[-1]
    hist_l, hist_r = lsvd[top]["histogram"], rbd[top]["histogram"]

    table = size_histogram_table(
        "Figure 14: backend bytes written by I/O size (16K random writes)",
        {"RBD": hist_r, "LSVD": hist_l},
    )
    table.show()

    def mass(hist, low=0, high=float("inf")):
        return sum(v for k, v in hist.items() if low <= k < high)

    # RBD: almost all bytes land as 16-32K writes (data + journal entries)
    assert mass(hist_r, 8 * 1024, 64 * 1024) > 0.8 * mass(hist_r)
    # LSVD: the bulk arrives in large (>=512K) chunk writes
    assert mass(hist_l, 512 * 1024) > 0.6 * mass(hist_l)
