"""Ablations of the design choices DESIGN.md calls out.

Not figures from the paper, but the knobs §3 and §6 discuss:

* batch size (8 vs 32 MiB, §3.2) — bigger batches merge more and cut
  backend request counts, at the price of more data at risk;
* GC thresholds (§3.5) — a lower start watermark trades space for
  cleaning traffic;
* greedy vs FIFO victim selection (§3.5 cites Rosenblum's Greedy);
* the log-structured cache itself (§4.2.2) — what commit barriers cost
  when metadata must be persisted separately (bcache) vs not (LSVD).
"""

import random

import pytest

from repro.analysis import Table
from repro.gcsim import GCSimulator
from repro.workloads import TRACE_PRESETS, CloudPhysicsTrace

MiB = 1 << 20
PAGE = 4096


def replay(name="w41", scale=1 / 256, **kw):
    trace = CloudPhysicsTrace(TRACE_PRESETS[name], scale=scale, seed=1)
    sim = GCSimulator(volume_size=trace.volume_size, **kw)
    sim.replay(trace.writes())
    return sim.finish()


def test_ablation_batch_size(once):
    """§3.2: 8 vs 32 MiB batches on an overwrite-heavy trace."""

    def run():
        return {
            size: replay(batch_size=size * MiB)
            for size in (1, 8, 32)
        }

    results = once(run)
    table = Table(
        "Ablation: write batch size (trace w41)",
        ["batch MiB", "merge ratio", "WAF", "objects PUT"],
    )
    for size, rep in sorted(results.items()):
        table.add(size, f"{rep.merge_ratio:.2f}", f"{rep.waf:.2f}", rep.objects_written)
    table.show()

    # larger batches coalesce more overwrites...
    assert results[32].merge_ratio > results[8].merge_ratio > results[1].merge_ratio
    # ...and need fewer backend PUTs
    assert results[32].objects_written < results[1].objects_written


def test_ablation_gc_thresholds(once):
    """§3.5: sweep the GC start watermark on a churn-heavy trace."""

    def run():
        out = {}
        for low in (0.5, 0.7, 0.85):
            out[low] = replay(
                name="w59", batch_size=8 * MiB, gc_low=low, gc_high=min(low + 0.05, 0.95)
            )
        return out

    results = once(run)
    table = Table(
        "Ablation: GC start threshold (trace w59)",
        ["threshold", "WAF", "GC bytes GiB", "final extents"],
    )
    for low, rep in sorted(results.items()):
        table.add(
            f"{low:.0%}", f"{rep.waf:.2f}", f"{rep.gc_bytes / 2**30:.2f}", rep.extent_count
        )
    table.show()

    # a more aggressive (higher) threshold costs more cleaning traffic
    assert results[0.85].gc_bytes >= results[0.5].gc_bytes
    assert results[0.85].waf >= results[0.5].waf


class _FIFOSim(GCSimulator):
    """Victim selection by age instead of utilisation."""

    def _maybe_gc(self):
        if self.utilization() >= self.gc_low:
            return
        while self.utilization() < self.gc_high:
            victims = [
                o
                for o in sorted(self.obj_size)  # oldest first
                if self.obj_size[o] > 0
                and self.obj_live[o] / self.obj_size[o] < self.gc_high
            ][: self.gc_window]
            if not victims:
                break
            self._clean(victims)


def test_ablation_greedy_vs_fifo_victims(once):
    """§3.5: Greedy picks the least-utilised objects; FIFO the oldest."""

    def run():
        trace_g = CloudPhysicsTrace(TRACE_PRESETS["w07"], scale=1 / 256, seed=1)
        greedy = GCSimulator(volume_size=trace_g.volume_size, batch_size=8 * MiB)
        greedy.replay(trace_g.writes())
        trace_f = CloudPhysicsTrace(TRACE_PRESETS["w07"], scale=1 / 256, seed=1)
        fifo = _FIFOSim(volume_size=trace_f.volume_size, batch_size=8 * MiB)
        fifo.replay(trace_f.writes())
        return greedy.finish(), fifo.finish()

    greedy, fifo = once(run)
    table = Table(
        "Ablation: GC victim policy (trace w07)",
        ["policy", "WAF", "GC bytes GiB"],
    )
    table.add("greedy", f"{greedy.waf:.2f}", f"{greedy.gc_bytes / 2**30:.2f}")
    table.add("FIFO", f"{fifo.waf:.2f}", f"{fifo.gc_bytes / 2**30:.2f}")
    table.show()

    # greedy never copies more than FIFO on a skewed-decay workload
    assert greedy.waf <= fifo.waf * 1.05


def test_ablation_log_cache_vs_metadata_commits(once):
    """§4.2.2 in microcosm: barrier cost of the pure log vs bcache-style
    metadata persistence, on the content-accurate models."""
    from repro.baselines import make_bcache_rbd
    from repro.core import LSVDConfig, LSVDVolume
    from repro.devices.image import DiskImage
    from repro.objstore import InMemoryObjectStore

    def run():
        store = InMemoryObjectStore()
        image = DiskImage(4 * MiB)
        cfg = LSVDConfig(batch_size=64 * 1024, checkpoint_interval=32)
        vol = LSVDVolume.create(store, "vd", 16 * MiB, image, cfg)
        cache, _backing, cache_img = make_bcache_rbd("b", 16 * MiB, 4 * MiB)
        rng = random.Random(1)
        lsvd_device_writes = bcache_device_writes = 0
        for i in range(200):
            lba = rng.randrange(0, 1024) * 4096
            before_l = image.writes
            vol.write(lba, b"x" * 4096)
            vol.flush()
            lsvd_device_writes += image.writes - before_l
            before_b = cache_img.writes
            cache.write(lba, b"x" * 4096)
            cache.flush()
            bcache_device_writes += cache_img.writes - before_b
        return lsvd_device_writes, bcache_device_writes

    lsvd_writes, bcache_writes = once(run)
    table = Table(
        "Ablation: device writes for 200 write+fsync pairs",
        ["system", "device writes", "per fsync"],
    )
    table.add("LSVD log cache", lsvd_writes, f"{lsvd_writes / 200:.2f}")
    table.add("bcache (metadata on barrier)", bcache_writes, f"{bcache_writes / 200:.2f}")
    table.show()

    # the log needs no extra metadata writes per barrier
    assert lsvd_writes < bcache_writes
