"""Tests for result-formatting helpers."""

import pytest

from repro.analysis import Table, format_bytes, format_rate, size_histogram_table


def test_format_bytes():
    assert format_bytes(512) == "512B"
    assert format_bytes(4096) == "4.0KiB"
    assert format_bytes(8 << 20) == "8.0MiB"
    assert format_bytes(3 * (1 << 30)) == "3.0GiB"


def test_format_rate():
    assert format_rate(173e6) == "173.0MB/s"


def test_table_renders_fixed_width():
    t = Table("caption", ["a", "bb"])
    t.add(1, "xx")
    t.add(22, "y")
    out = t.render()
    lines = out.splitlines()
    assert lines[0] == "caption"
    assert "a" in lines[2] and "bb" in lines[2]
    assert len(lines) == 6


def test_table_rejects_wrong_arity():
    t = Table("c", ["a"])
    with pytest.raises(ValueError):
        t.add(1, 2)


def test_size_histogram_table_union_of_buckets():
    t = size_histogram_table(
        "hist",
        {"A": {4096: 100, 16384: 200}, "B": {16384: 50, 1 << 20: 75}},
    )
    out = t.render()
    assert "4.0KiB" in out
    assert "1.0MiB" in out
    assert len(t.rows) == 3
