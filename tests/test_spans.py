"""Unit tests for repro.obs.spans: span trees, exact-additive attribution,
bounded consumers, hot-path invariants (lazy sentinels, acyclic trees)."""

import gc

import pytest

from repro.obs import (
    NULL_SPAN,
    CriticalPathAnalyzer,
    Registry,
    SpanRecorder,
)
from repro.obs.spans import SELF_STAGE, attribute


class ManualClock:
    """Virtual clock the test advances by hand."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_step_clock_orders_tree(self):
        rec = SpanRecorder()
        root = rec.root("write")
        child = root.begin("wc_append")
        child.end()
        root.end()
        assert (root.start, child.start, child.stop, root.stop) == (0.0, 1.0, 2.0, 3.0)
        assert root.duration == 3.0
        assert [s.name for s in root.walk()] == ["write", "wc_append"]

    def test_end_is_idempotent(self):
        rec = SpanRecorder()
        root = rec.root("write")
        root.end()
        stop = root.stop
        root.end()
        assert root.stop == stop
        assert rec.completed == 1

    def test_unknown_kind_rejected(self):
        rec = SpanRecorder()
        root = rec.root("write")
        with pytest.raises(ValueError):
            root.begin("stage", kind="data")
        root.end()

    def test_queue_kind_recorded(self):
        rec = SpanRecorder()
        root = rec.root("write")
        q = root.begin("space_wait", kind="queue")
        q.end()
        root.end()
        assert q.kind == "queue"

    def test_end_and_annotate_merge_attrs(self):
        rec = SpanRecorder()
        root = rec.root("write", lba=8)
        root.annotate(qd=4)
        root.end(bytes=4096)
        assert root.attrs == {"lba": 8, "qd": 4, "bytes": 4096}

    def test_open_roots_accounting(self):
        rec = SpanRecorder()
        a, b = rec.root("write"), rec.root("read")
        assert rec.open_roots == 2
        a.end()
        assert rec.open_roots == 1 and rec.completed == 1
        b.end()
        assert rec.open_roots == 0


# ---------------------------------------------------------------------------
# disabled recorder / sampling
# ---------------------------------------------------------------------------


class TestNullPath:
    def test_disabled_recorder_hands_out_the_singleton(self):
        rec = SpanRecorder(enabled=False)
        span = rec.root("write")
        assert span is NULL_SPAN
        assert span.begin("stage") is NULL_SPAN
        span.end()  # no-op
        assert rec.completed == 0 and rec.open_roots == 0
        assert not span.enabled

    def test_head_sampling_is_deterministic(self):
        rec = SpanRecorder(sample_every=2)
        picks = [rec.root("write") is not NULL_SPAN for _ in range(6)]
        assert picks == [False, True] * 3


# ---------------------------------------------------------------------------
# lazy sentinels (hot-path allocation discipline)
# ---------------------------------------------------------------------------


class TestLazySentinels:
    def test_fresh_spans_share_the_empty_sentinels(self):
        rec = SpanRecorder()
        a, b = rec.root("write"), rec.root("write")
        assert a.attrs is b.attrs and a.attrs == {}
        assert a.children is b.children and tuple(a.children) == ()

    def test_mutation_materializes_without_polluting_the_sentinel(self):
        rec = SpanRecorder()
        a = rec.root("write")
        a.annotate(x=1)
        child = a.begin("stage")
        child.end()
        a.end(y=2)
        fresh = rec.root("write")
        assert fresh.attrs == {} and tuple(fresh.children) == ()
        assert a.attrs == {"x": 1, "y": 2}
        assert [c.name for c in a.children] == ["stage"]
        fresh.end()

    def test_end_attrs_on_attrless_span_stay_private(self):
        rec = SpanRecorder()
        a = rec.root("flush")
        a.end(reason="drain")
        b = rec.root("flush")
        assert b.attrs == {}
        b.end()


# ---------------------------------------------------------------------------
# completed trees are acyclic (refcount-reclaimable, no gc pressure)
# ---------------------------------------------------------------------------


class TestCycleBreak:
    def test_completion_severs_recorder_backrefs(self):
        rec = SpanRecorder()
        root = rec.root("read")
        done = root.begin("rc_lookup")
        done.end()
        still_open = root.begin("backend_fetch")
        root.end()
        assert root._recorder is None
        assert done._recorder is None
        # a stage that outlives its root keeps the clock for a late end
        assert still_open._recorder is rec
        still_open.end()
        assert still_open.stop is not None

    def test_evicted_tree_dies_without_the_cyclic_collector(self):
        died = []

        class Canary:
            def __del__(self):
                died.append(True)

        gc.disable()  # refcount reclamation only: a cyclic tree would leak
        try:
            rec = SpanRecorder(flight_capacity=1, analyzer_capacity=1)
            rec.SLOWEST_KEEP = 1
            first = rec.root("write", canary=Canary())
            first.begin("wc_append").end()
            first.end()
            del first
            # longer tree evicts the first from flight, analyzer, slowest
            second = rec.root("write")
            for _ in range(3):
                second.begin("wc_append").end()
            second.end()
            assert died, "evicted tree must be refcount-reclaimable"
        finally:
            gc.enable()


# ---------------------------------------------------------------------------
# attribution
# ---------------------------------------------------------------------------


class TestAttribution:
    def test_breakdown_is_exactly_additive_with_gap(self):
        clock = ManualClock()
        rec = SpanRecorder(clock=clock)
        root = rec.root("write")
        clock.t = 1.0
        a = rec_child = root.begin("wc_append")
        clock.t = 3.0
        rec_child.end()
        # gap [3, 5) belongs to no stage
        clock.t = 5.0
        b = root.begin("backend_put")
        clock.t = 9.0
        b.end()
        clock.t = 10.0
        root.end()
        breakdown = attribute(root)
        assert breakdown == {
            "wc_append": 2.0,
            "backend_put": 4.0,
            SELF_STAGE: 4.0,  # [0,1) + [3,5) + [9,10)
        }
        assert sum(breakdown.values()) == root.duration
        assert a.duration == 2.0

    def test_deepest_span_wins_overlap(self):
        clock = ManualClock()
        rec = SpanRecorder(clock=clock)
        root = rec.root("write")
        outer = root.begin("batch_seal")
        clock.t = 1.0
        inner = outer.begin("backend_put")
        clock.t = 4.0
        inner.end()
        clock.t = 5.0
        outer.end()
        root.end()
        breakdown = attribute(root)
        assert breakdown == {"batch_seal": 2.0, "backend_put": 3.0}
        assert sum(breakdown.values()) == root.duration

    def test_zero_duration_and_open_children_are_excluded(self):
        clock = ManualClock()
        rec = SpanRecorder(clock=clock)
        root = rec.root("read")
        root.begin("rc_lookup").end()  # zero-duration
        root.begin("backend_fetch")  # never ended
        clock.t = 2.0
        root.end()
        assert attribute(root) == {SELF_STAGE: 2.0}

    def test_open_root_cannot_be_attributed(self):
        rec = SpanRecorder()
        root = rec.root("write")
        with pytest.raises(ValueError):
            attribute(root)
        root.end()


# ---------------------------------------------------------------------------
# bounded consumers
# ---------------------------------------------------------------------------


class TestBoundedConsumers:
    def finish_tree(self, rec, n_children=1):
        root = rec.root("write")
        for _ in range(n_children):
            root.begin("wc_append").end()
        root.end()
        return root

    def test_analyzer_window_evicts_and_counts_drops(self):
        rec = SpanRecorder(analyzer_capacity=2)
        for _ in range(5):
            self.finish_tree(rec)
        assert len(rec.analyzer) == 2
        assert rec.analyzer.dropped == 3
        assert rec.completed == 5

    def test_flight_ring_keeps_newest(self):
        rec = SpanRecorder(flight_capacity=2)
        trees = [self.finish_tree(rec) for _ in range(4)]
        assert rec.flight.trees() == trees[-2:]
        assert rec.flight.dropped == 2

    def test_slowest_ranked_by_duration(self):
        rec = SpanRecorder()
        short = self.finish_tree(rec, n_children=1)
        long = self.finish_tree(rec, n_children=5)
        mid = self.finish_tree(rec, n_children=3)
        assert rec.slowest(2) == [long, mid]
        assert rec.slowest(10)[-1] is short

    def test_decompose_stages_sum_to_reported_latency(self):
        rec = SpanRecorder()
        for n in (1, 2, 4):
            self.finish_tree(rec, n_children=n)
        decomp = rec.analyzer.decompose(99, name="write")
        assert decomp["count"] == 3 and decomp["tail_count"] == 1
        assert sum(decomp["stages"].values()) == pytest.approx(decomp["latency_s"])

    def test_stage_totals_report_kind_and_tree_count(self):
        rec = SpanRecorder()
        self.finish_tree(rec)
        self.finish_tree(rec)
        totals = rec.analyzer.stage_totals()
        kind, count, total = totals["wc_append"]
        assert kind == "service" and count == 2 and total > 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            CriticalPathAnalyzer(capacity=0)


# ---------------------------------------------------------------------------
# SLO + publish
# ---------------------------------------------------------------------------


class TestSloAndPublish:
    def test_breach_counts_and_invokes_hook(self):
        clock = ManualClock()
        rec = SpanRecorder(clock=clock, slo_s=1.0)
        seen = []
        rec.on_breach = seen.append
        fast = rec.root("write")
        clock.t = 0.5
        fast.end()
        slow = rec.root("write")
        clock.t = 2.5
        slow.end()
        assert rec.slo_breaches == 1
        assert seen == [slow]

    def test_publish_mirrors_aggregates_into_registry(self):
        obs = Registry()
        rec = obs.spans
        root = rec.root("write")
        root.begin("wc_append").end()
        root.end()
        rec.root("read")  # left open
        rec.publish(obs)
        assert obs.value("span.trees") == 1
        assert obs.value("span.open_roots") == 1
        assert obs.value("span.slo_breaches") == 0
        assert obs.value("span.stage.wc_append_s") > 0
